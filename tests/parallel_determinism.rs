//! Serial-equivalence safety net for the parallel sweep layer.
//!
//! Every experiment fans its sweep points out through
//! [`zeiot_bench::SweepRunner`]; these tests pin the contract that makes
//! that safe: the merged [`ExperimentReport`] serialized as JSON is
//! **byte-identical** between `--threads 1` and `--threads 4` at a fixed
//! seed, for every experiment, and the threaded
//! `balanced_correspondence` local search returns exactly the serial
//! assignment.

use zeiot_bench::experiments::{
    e10_serving, e11_slo, e12_quant, e1_temperature, e2_motion, e3_mac, e4_train, e5_counting,
    e6_csi, e7_link, e8_energy, e9_faults,
};
use zeiot_bench::SweepRunner;
use zeiot_core::rng::SeedRng;
use zeiot_microdeep::{Assignment, CnnConfig};
use zeiot_net::Topology;
use zeiot_obs::trace::traces_to_jsonl;

/// Asserts byte-identical JSON between a serial and a 4-thread run.
fn assert_thread_invariant(name: &str, serial: &str, parallel: &str) {
    assert_eq!(
        serial, parallel,
        "{name}: report JSON differs between --threads 1 and --threads 4"
    );
}

#[test]
fn e1_report_is_thread_invariant() {
    let params = e1_temperature::Params::reduced();
    let serial = e1_temperature::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e1_temperature::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E1", &serial, &parallel);
}

#[test]
fn e2_report_is_thread_invariant() {
    let params = e2_motion::Params::reduced();
    let serial = e2_motion::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e2_motion::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E2", &serial, &parallel);
}

#[test]
fn e3_report_is_thread_invariant() {
    let params = e3_mac::Params::reduced();
    let serial = e3_mac::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e3_mac::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E3", &serial, &parallel);
}

#[test]
fn e4_report_is_thread_invariant() {
    let params = e4_train::Params::reduced();
    let serial = e4_train::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e4_train::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E4", &serial, &parallel);
}

#[test]
fn e5_report_is_thread_invariant() {
    let params = e5_counting::Params::reduced();
    let serial = e5_counting::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e5_counting::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E5", &serial, &parallel);
}

#[test]
fn e6_report_is_thread_invariant() {
    let params = e6_csi::Params::reduced();
    let serial = e6_csi::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e6_csi::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E6", &serial, &parallel);
}

#[test]
fn e7_report_is_thread_invariant() {
    let params = e7_link::Params::reduced();
    let serial = e7_link::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e7_link::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E7", &serial, &parallel);
}

#[test]
fn e8_report_is_thread_invariant() {
    let params = e8_energy::Params::reduced();
    let serial = e8_energy::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e8_energy::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E8", &serial, &parallel);
}

/// E9 crosses fault plans with recovery policies; its loss decisions are
/// pure hashes of the message coordinates, so neither accuracy curves
/// nor fault counters may move with the thread count.
#[test]
fn e9_report_is_thread_invariant() {
    let params = e9_faults::Params::reduced();
    let serial = e9_faults::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e9_faults::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E9", &serial, &parallel);
}

/// E9's exported per-point fault counters must also be thread-invariant
/// (they feed the JSONL export).
#[test]
fn e9_exported_snapshot_is_thread_invariant() {
    let params = e9_faults::Params::reduced();
    let serial = e9_faults::run_with(&params, &SweepRunner::serial()).export_snapshot();
    let parallel = e9_faults::run_with(&params, &SweepRunner::new(4)).export_snapshot();
    assert_eq!(serial, parallel);
}

/// E10 simulates a full multi-tenant serving layer per sweep point —
/// virtual-time queues, EDF dispatch, micro-batching, degraded-mode
/// fabrics. Each point is a serial simulation, so the merged report must
/// not move with the thread count.
#[test]
fn e10_report_is_thread_invariant() {
    let params = e10_serving::Params::reduced();
    let serial = e10_serving::run_with(&params, &SweepRunner::serial()).to_json();
    let parallel = e10_serving::run_with(&params, &SweepRunner::new(4)).to_json();
    assert_thread_invariant("E10", &serial, &parallel);
}

/// E10's exported per-point serve/fault metrics must also be
/// thread-invariant (they feed the JSONL export).
#[test]
fn e10_exported_snapshot_is_thread_invariant() {
    let params = e10_serving::Params::reduced();
    let serial = e10_serving::run_with(&params, &SweepRunner::serial()).export_snapshot();
    let parallel = e10_serving::run_with(&params, &SweepRunner::new(4)).export_snapshot();
    assert_eq!(serial, parallel);
}

/// E11 adds causal tracing, windowed SLO evaluation, and attribution
/// histograms on top of the serving layer. The trace sampler is a pure
/// hash of `(seed, trace id)` and the export order is `(point, tenant,
/// seq)`, so both the report **and the trace JSONL bytes** must be
/// identical at every thread count.
#[test]
fn e11_report_and_trace_jsonl_are_thread_invariant() {
    let params = e11_slo::Params::reduced();
    let (serial_report, serial_traces) = e11_slo::run_with_traces(&params, &SweepRunner::serial());
    let (parallel_report, parallel_traces) =
        e11_slo::run_with_traces(&params, &SweepRunner::new(4));
    assert_thread_invariant("E11", &serial_report.to_json(), &parallel_report.to_json());
    assert_eq!(
        traces_to_jsonl(&serial_traces),
        traces_to_jsonl(&parallel_traces),
        "E11: trace JSONL differs between --threads 1 and --threads 4"
    );
    assert!(!serial_traces.is_empty(), "E11 must sample some traces");
}

/// E11's exported snapshot carries the `trace.attr.*` histograms and
/// the `slo.breaches` counters; it feeds the JSONL export, so it must
/// not move with the thread count either.
#[test]
fn e11_exported_snapshot_is_thread_invariant() {
    let params = e11_slo::Params::reduced();
    let serial = e11_slo::run_with(&params, &SweepRunner::serial()).export_snapshot();
    let parallel = e11_slo::run_with(&params, &SweepRunner::new(4)).export_snapshot();
    assert_eq!(serial, parallel);
}

/// E12 serves the same workload in f32 and int8. The integer path's
/// accumulation is exact (reassociation-free by construction), so the
/// quantized points have no excuse at all: report bytes and trace JSONL
/// bytes must match at every thread count.
#[test]
fn e12_report_and_trace_jsonl_are_thread_invariant() {
    let params = e12_quant::Params::reduced();
    let (serial_report, serial_traces) =
        e12_quant::run_with_traces(&params, &SweepRunner::serial());
    let (parallel_report, parallel_traces) =
        e12_quant::run_with_traces(&params, &SweepRunner::new(4));
    assert_thread_invariant("E12", &serial_report.to_json(), &parallel_report.to_json());
    assert_eq!(
        traces_to_jsonl(&serial_traces),
        traces_to_jsonl(&parallel_traces),
        "E12: trace JSONL differs between --threads 1 and --threads 4"
    );
    assert!(!serial_traces.is_empty(), "E12 must sample some traces");
}

/// E12's exported snapshot carries the `quant.*` counters next to the
/// serving metrics; the merged per-point snapshot must not move with
/// the thread count either.
#[test]
fn e12_exported_snapshot_is_thread_invariant() {
    let params = e12_quant::Params::reduced();
    let serial = e12_quant::run_with(&params, &SweepRunner::serial()).export_snapshot();
    let parallel = e12_quant::run_with(&params, &SweepRunner::new(4)).export_snapshot();
    assert_eq!(serial, parallel);
}

/// E8's merged per-point metrics — not just the report rows — must also
/// be identical across thread counts (exported snapshots feed JSONL).
#[test]
fn e8_exported_snapshot_is_thread_invariant() {
    let params = e8_energy::Params::reduced();
    let serial = e8_energy::run_with(&params, &SweepRunner::serial()).export_snapshot();
    let parallel = e8_energy::run_with(&params, &SweepRunner::new(4)).export_snapshot();
    assert_eq!(serial, parallel);
}

/// An uneven thread count (3) exercises the work-stealing index counter
/// with a worker count that does not divide the point count.
#[test]
fn e8_report_is_invariant_at_odd_thread_counts() {
    let params = e8_energy::Params::reduced();
    let serial = e8_energy::run_with(&params, &SweepRunner::serial()).to_json();
    for threads in [2usize, 3, 8] {
        let parallel = e8_energy::run_with(&params, &SweepRunner::new(threads)).to_json();
        assert_thread_invariant("E8", &serial, &parallel);
    }
}

/// The threaded local search must return exactly the serial assignment:
/// candidate scoring is side-effect free and selection uses a total
/// order, so the accepted-move sequence cannot depend on thread count.
#[test]
fn balanced_correspondence_is_thread_invariant() {
    let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).expect("config");
    let graph = config.unit_graph().expect("graph");
    for seed in 0..10u64 {
        let mut rng = SeedRng::new(seed);
        let n = 8 + (seed as usize) * 2;
        let topo = Topology::random(n, 12.0, 12.0, 5.0, &mut rng).expect("topology");
        let serial = Assignment::balanced_correspondence(&graph, &topo);
        for threads in [2usize, 4, 0] {
            let parallel = Assignment::balanced_correspondence_threaded(&graph, &topo, threads);
            assert_eq!(
                serial, parallel,
                "assignment differs at seed {seed}, threads {threads}"
            );
        }
    }
}
