//! Integration: §V resilience — node failures, unit re-homing, and the
//! accuracy/cost consequences across the whole stack.
//!
//! Pins the behavior of the deprecated static pass (now a wrapper over
//! `microdeep::replace`); the runtime engine has its own suite in
//! `crates/microdeep/src/replace.rs` and E13.
#![allow(deprecated)]

use zeiot::core::id::NodeId;
use zeiot::core::rng::SeedRng;
use zeiot::data::gait::GaitGenerator;
use zeiot::microdeep::resilience::reassign_after_failures;
use zeiot::microdeep::{Assignment, CnnConfig, CostModel, DistributedCnn, WeightUpdate};
use zeiot::net::routing::RoutingTable;
use zeiot::net::Topology;

fn setup() -> (CnnConfig, Topology, Assignment) {
    let config = CnnConfig::new(10, 8, 8, 4, 3, 2, 16, 2).unwrap();
    let topo = Topology::grid(8, 8, 0.5, 0.75).unwrap();
    let graph = config.unit_graph().unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    (config, topo, assignment)
}

#[test]
fn recovery_keeps_the_network_functional_after_failures() {
    let (config, topo, assignment) = setup();
    let graph = config.unit_graph().unwrap();
    // Kill 10% of nodes scattered across the mesh.
    let failed: Vec<NodeId> = [3u32, 17, 29, 41, 55, 62].map(NodeId::new).to_vec();
    let (repaired, report) = reassign_after_failures(&graph, &topo, &assignment, &failed);
    assert!(report.fully_recovered(), "{report:?}");

    // The degraded mesh still routes between all surviving nodes.
    let degraded = topo.without_nodes(&failed);
    let routes = RoutingTable::shortest_paths(&degraded);
    for a in topo.node_ids().filter(|n| !failed.contains(n)) {
        for b in topo.node_ids().filter(|n| !failed.contains(n)) {
            assert!(
                routes.hop_distance(a, b).is_some(),
                "survivors {a}→{b} disconnected"
            );
        }
    }

    // And the repaired assignment's traffic is finite and bounded.
    let cost = CostModel::new(&degraded);
    let ledger = cost.forward_cost(&graph, &repaired);
    assert!(ledger.total_cost() > 0);
    for f in &failed {
        // Failed nodes host nothing, but cost accounting may still route
        // around them — verify they transmit nothing as hosts.
        let hosted: usize = (1..graph.layer_count())
            .map(|l| {
                (0..graph.units_in_layer(l))
                    .filter(|&u| repaired.host_of(l, u) == *f)
                    .count()
            })
            .sum();
        assert_eq!(hosted, 0);
    }
}

#[test]
fn trained_model_survives_reassignment() {
    // Train, kill a node, re-home its units: the per-unit weights move
    // with their units, so accuracy is unchanged (the model is the same
    // function; only placement changed).
    let (config, topo, assignment) = setup();
    let graph = config.unit_graph().unwrap();
    let mut rng = SeedRng::new(13);
    let data = GaitGenerator::paper_array()
        .unwrap()
        .generate(150, 3, &mut rng);
    let (train, test) = data.split_at(120);

    let mut net = DistributedCnn::new(config, assignment.clone(), WeightUpdate::PerUnit, &mut rng);
    for _ in 0..6 {
        net.train_epoch(train, 0.04, 16, &mut rng);
    }
    let acc_before = net.accuracy(test);

    let (repaired, _) = reassign_after_failures(&graph, &topo, &assignment, &[NodeId::new(20)]);
    // Placement is metadata for cost purposes; the function is identical.
    let cost = CostModel::new(&topo);
    let before = cost.forward_cost(&graph, &assignment).max_cost();
    let after = cost.forward_cost(&graph, &repaired).max_cost();
    assert!(acc_before > 0.7);
    // Peak cost may rise (fewer hosts) but stays the same order.
    assert!(after < before * 4, "before={before} after={after}");
}

#[test]
fn progressive_failures_degrade_gracefully() {
    let (config, topo, assignment) = setup();
    let graph = config.unit_graph().unwrap();
    let mut peak_costs = Vec::new();
    for kill in [0usize, 4, 8, 16] {
        let failed: Vec<NodeId> = (0..kill as u32).map(|i| NodeId::new(i * 3 + 1)).collect();
        let (repaired, report) = reassign_after_failures(&graph, &topo, &assignment, &failed);
        assert!(report.fully_recovered(), "kill={kill}: {report:?}");
        let degraded = topo.without_nodes(&failed);
        let cost = CostModel::new(&degraded);
        peak_costs.push(cost.forward_cost(&graph, &repaired).max_cost());
    }
    // Peak cost grows as survivors absorb more units, but never explodes
    // past the centralized ceiling.
    let central = CostModel::new(&topo)
        .forward_cost(&graph, &Assignment::centralized(&graph, &topo))
        .max_cost();
    assert!(peak_costs[3] >= peak_costs[0]);
    assert!(
        peak_costs[3] < central,
        "{peak_costs:?} vs central {central}"
    );
}
