//! Integration: the three wireless-sensing estimators against their
//! synthetic scenes, end to end.

use zeiot::core::geometry::Point2;
use zeiot::core::rng::SeedRng;
use zeiot::data::csi::{CsiGenerator, CsiPattern};
use zeiot::data::train::TrainSceneGenerator;
use zeiot::net::rssi::RssiSampler;
use zeiot::net::Topology;
use zeiot::sensing::counting::{CountingFeatures, PeopleCounter};
use zeiot::sensing::csi::CsiLocalizer;
use zeiot::sensing::train::{CongestionEstimator, LabelledScene, TrainObservation};

fn to_labelled(scene: &zeiot::data::train::TrainScene) -> LabelledScene {
    LabelledScene {
        observation: TrainObservation {
            cars: scene.cars(),
            reference_car: scene.reference_car.clone(),
            user_to_reference: scene.user_to_reference.clone(),
            user_to_user: scene.user_to_user.clone(),
        },
        user_car: scene.user_car.clone(),
        congestion: scene.congestion.iter().map(|c| c.index()).collect(),
    }
}

#[test]
fn train_estimator_generalizes_across_rides() {
    let generator = TrainSceneGenerator::paper_train().unwrap();
    let mut rng = SeedRng::new(8);
    let train: Vec<LabelledScene> = (0..25)
        .map(|_| to_labelled(&generator.scene(&mut rng)))
        .collect();
    let estimator = CongestionEstimator::fit(&train).unwrap();

    let mut pos_ok = 0usize;
    let mut pos_all = 0usize;
    let mut lvl_ok = 0usize;
    let mut lvl_all = 0usize;
    for _ in 0..8 {
        let scene = to_labelled(&generator.scene(&mut rng));
        let positions = estimator.estimate_positions(&scene.observation);
        for (p, &t) in positions.iter().zip(&scene.user_car) {
            pos_ok += usize::from(p.car == t);
            pos_all += 1;
        }
        let congestion = estimator.estimate_congestion(&scene.observation, &positions, true);
        for (e, t) in congestion.iter().zip(&scene.congestion) {
            lvl_ok += usize::from(e == t);
            lvl_all += 1;
        }
    }
    let pos_acc = pos_ok as f64 / pos_all as f64;
    let lvl_acc = lvl_ok as f64 / lvl_all as f64;
    assert!(pos_acc > 0.7, "positioning {pos_acc}");
    assert!(lvl_acc > 0.6, "congestion {lvl_acc}");
}

#[test]
fn people_counter_tracks_occupancy_from_the_mesh() {
    let topo = Topology::grid(4, 4, 3.0, 4.5).unwrap();
    let sampler = RssiSampler::ieee802154(topo)
        .unwrap()
        .with_noise_sigma(1.0)
        .unwrap();
    let mut rng = SeedRng::new(9);

    let round = |count: usize, rng: &mut SeedRng| {
        let people: Vec<Point2> = (0..count)
            .map(|_| Point2::new(rng.uniform_range(0.0, 9.0), rng.uniform_range(0.0, 9.0)))
            .collect();
        let inter = sampler.inter_node_rssi(&people, rng);
        let surrounding = sampler.surrounding_rssi(&people, 0.9, rng);
        CountingFeatures::extract(&inter, &surrounding).unwrap()
    };

    let mut training = Vec::new();
    for count in 0..=6usize {
        for _ in 0..25 {
            training.push((round(count, &mut rng), count));
        }
    }
    let counter = PeopleCounter::fit(&training).unwrap();

    let mut exact = 0;
    let mut within2 = 0;
    let n = 70;
    for i in 0..n {
        let truth = i % 7;
        let est = counter.predict(&round(truth, &mut rng));
        exact += usize::from(est == truth);
        within2 += usize::from(est.abs_diff(truth) <= 2);
    }
    assert!(exact as f64 / n as f64 > 0.4, "exact={exact}/{n}");
    assert!(within2 as f64 / n as f64 > 0.9, "within2={within2}/{n}");
}

#[test]
fn csi_localizer_best_pattern_beats_worst() {
    let gen = CsiGenerator::new(11).unwrap();
    let mut rng = SeedRng::new(10);
    let acc_of = |pattern: CsiPattern, rng: &mut SeedRng| {
        let (train, test) = gen.split(pattern, 20, 8, rng);
        let pairs = |v: Vec<zeiot::data::csi::CsiSample>| {
            v.into_iter()
                .map(|s| (s.features, s.position))
                .collect::<Vec<_>>()
        };
        CsiLocalizer::fit(&pairs(train), 5)
            .unwrap()
            .evaluate(&pairs(test))
            .accuracy()
    };
    let all = CsiPattern::all();
    let best = acc_of(all[4], &mut rng); // walking + divergent
    let worst = acc_of(all[0], &mut rng); // stationary + aligned
    assert!(best > 0.85, "best={best}");
    assert!(best > worst, "best={best} worst={worst}");
}

#[test]
fn estimators_are_deterministic_given_seeds() {
    let generator = TrainSceneGenerator::paper_train().unwrap();
    let run = || {
        let mut rng = SeedRng::new(12);
        let train: Vec<LabelledScene> = (0..10)
            .map(|_| to_labelled(&generator.scene(&mut rng)))
            .collect();
        let estimator = CongestionEstimator::fit(&train).unwrap();
        let scene = to_labelled(&generator.scene(&mut rng));
        estimator
            .estimate_positions(&scene.observation)
            .iter()
            .map(|p| p.car)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
