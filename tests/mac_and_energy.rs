//! Integration: backscatter PHY + registry + MAC + energy model working
//! together — a device must be admissible, reachable and energetically
//! viable for its reports to arrive.

use zeiot::backscatter::mac::{simulate, MacConfig, MacMode};
use zeiot::backscatter::phy::BackscatterLink;
use zeiot::backscatter::registry::{CycleRegistry, Registration};
use zeiot::core::id::DeviceId;
use zeiot::core::rng::SeedRng;
use zeiot::core::time::SimDuration;
use zeiot::core::units::{Joule, Watt};
use zeiot::energy::capacitor::Capacitor;
use zeiot::energy::consumer::{DeviceState, PowerProfile};
use zeiot::energy::harvester::ConstantSource;
use zeiot::energy::intermittent::{IntermittentDevice, Task};

#[test]
fn admitted_devices_deliver_under_the_scheduled_mac() {
    // Admission control and the simulator agree: a registry-full load
    // still delivers with high probability under scheduling.
    let mut registry = CycleRegistry::new(250e3, 0.10).unwrap();
    let prototype =
        Registration::new(DeviceId::new(0), SimDuration::from_millis(500), 256).unwrap();
    let capacity = registry.capacity_for(&prototype);
    assert!(capacity >= 10, "capacity={capacity}");
    let mut devices = Vec::new();
    for i in 0..capacity as u32 {
        let reg = Registration::new(DeviceId::new(i), SimDuration::from_millis(500), 256).unwrap();
        registry.register(reg).unwrap();
        devices.push(reg);
    }

    let config = MacConfig {
        devices,
        ..MacConfig::default_with_devices(1).unwrap()
    };
    let mut rng = SeedRng::new(4);
    let report = simulate(
        &config,
        MacMode::Scheduled,
        SimDuration::from_secs(20),
        &mut rng,
    );
    // Delivery approaches the configured link quality (0.9).
    assert!(
        report.backscatter_delivery_ratio() > 0.8,
        "delivery={}",
        report.backscatter_delivery_ratio()
    );
    assert!(report.wlan_delivery_ratio() > 0.95);
}

#[test]
fn energy_budget_supports_the_registered_cycle() {
    // A tag reporting every 500 ms: one report costs ~10 nJ of
    // backscatter plus sensing/compute; a 20 µW harvest sustains it.
    let tag = PowerProfile::backscatter_tag().unwrap();
    let report = tag.tx_energy(DeviceState::Backscatter, 256, 250e3);
    let sense = tag.energy(DeviceState::Sense, SimDuration::from_millis(5));
    let per_cycle = Joule::new(report.value() + sense.value());
    let harvest_per_cycle = Watt::new(20e-6).energy_over(SimDuration::from_millis(500));
    assert!(
        harvest_per_cycle.value() > 10.0 * per_cycle.value(),
        "harvest {} vs cost {}",
        harvest_per_cycle.value(),
        per_cycle.value()
    );

    // The intermittent device confirms it: near-full duty cycle.
    let mut device = IntermittentDevice::new(
        ConstantSource::new(Watt::new(20e-6)).unwrap(),
        Capacitor::new(100e-6, 2.4, 1.8, 3.0).unwrap(),
        tag,
        SimDuration::from_millis(10),
    )
    .unwrap();
    let task = Task::new(
        u64::MAX / 2,
        10,
        Joule::from_microjoules(0.2),
        Joule::from_microjoules(0.05),
    )
    .unwrap();
    let mut rng = SeedRng::new(5);
    let outcome = device.run(&task, SimDuration::from_secs(30), &mut rng);
    assert!(outcome.duty_cycle > 0.5, "duty={}", outcome.duty_cycle);
}

#[test]
fn link_quality_and_mac_success_are_consistent() {
    // Derive the link success from the PHY at a concrete geometry and
    // feed it to the MAC: the simulated delivery tracks it.
    let link = BackscatterLink::zigbee_testbed().unwrap();
    let success = link.packet_success(1.0, 8.0, 9.0);
    assert!(success > 0.9);

    let mut config = MacConfig::default_with_devices(10).unwrap();
    config.bs_packet_success = success;
    let mut rng = SeedRng::new(6);
    let report = simulate(
        &config,
        MacMode::Scheduled,
        SimDuration::from_secs(30),
        &mut rng,
    );
    assert!(
        (report.backscatter_delivery_ratio() - success).abs() < 0.05,
        "mac {} vs phy {}",
        report.backscatter_delivery_ratio(),
        success
    );
}

#[test]
fn naive_coexistence_collapses_under_load_scheduled_does_not() {
    let config = MacConfig::default_with_devices(60).unwrap();
    let mut rng = SeedRng::new(7);
    let sched = simulate(
        &config,
        MacMode::Scheduled,
        SimDuration::from_secs(20),
        &mut rng,
    );
    let mut rng = SeedRng::new(7);
    let naive = simulate(
        &config,
        MacMode::Naive,
        SimDuration::from_secs(20),
        &mut rng,
    );
    assert!(sched.backscatter_delivery_ratio() > naive.backscatter_delivery_ratio() + 0.2);
    assert!(sched.wlan_delivery_ratio() > naive.wlan_delivery_ratio() + 0.1);
}
