//! End-to-end checks of the observability layer through the facade:
//! instrumented counters against the static cost model, observation
//! transparency, the engine probe, and the JSONL export round trip.

use zeiot::backscatter::mac::{simulate, simulate_observed, MacConfig, MacMode};
use zeiot::core::id::NodeId;
use zeiot::core::rng::SeedRng;
use zeiot::core::time::{SimDuration, SimTime};
use zeiot::microdeep::{Assignment, CnnConfig, CostModel, TrafficInstrument};
use zeiot::net::Topology;
use zeiot::obs::{from_jsonl, to_jsonl, write_jsonl, EngineProbe, Label, Recorder};
use zeiot::sim::{Context, Engine, World};

/// The satellite cross-check: the dynamic per-node radio counters the
/// instrument records during a pass must equal, node for node, what the
/// paper's static cost model predicts. The two implementations count
/// independently (the instrument walks dependency edges and route hops
/// itself), so agreement validates both.
#[test]
fn instrumented_traffic_matches_the_static_cost_model() {
    let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).unwrap();
    let graph = config.unit_graph().unwrap();
    let topo = Topology::grid(4, 4, 2.0, 3.0).unwrap();
    let cost = CostModel::new(&topo);
    let instrument = TrafficInstrument::new(&topo);

    for assignment in [
        Assignment::centralized(&graph, &topo),
        Assignment::balanced_correspondence(&graph, &topo),
    ] {
        let mut rec = Recorder::new();
        instrument.record_forward(&graph, &assignment, &mut rec);
        let ledger = cost.forward_cost(&graph, &assignment);
        for i in 0..topo.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(
                rec.counter_value("microdeep.tx_messages", &Label::node(node)),
                ledger.tx(node),
                "tx mismatch at {node}"
            );
            assert_eq!(
                rec.counter_value("microdeep.rx_messages", &Label::node(node)),
                ledger.rx(node),
                "rx mismatch at {node}"
            );
        }
    }
}

/// Observing a simulation must not change it: the observed MAC run
/// returns a report identical to the unobserved run with the same seed.
#[test]
fn observation_is_transparent_to_the_mac_simulation() {
    let config = MacConfig::default_with_devices(12).unwrap();
    let duration = SimDuration::from_secs(10);
    for mode in [MacMode::Scheduled, MacMode::Naive] {
        let plain = simulate(&config, mode, duration, &mut SeedRng::new(9));
        let mut rec = Recorder::new();
        let observed = simulate_observed(&config, mode, duration, &mut SeedRng::new(9), &mut rec);
        assert_eq!(plain, observed, "{mode:?} diverged under observation");
    }
}

struct Relay {
    hops: u32,
}

impl World for Relay {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Context<'_, u32>, event: u32) {
        if event < self.hops {
            ctx.schedule_in(SimDuration::from_millis(5), event + 1);
        }
    }
}

/// The engine probe's counters agree with the engine's own accounting.
#[test]
fn engine_probe_agrees_with_the_engine() {
    let mut engine = Engine::with_observer(Relay { hops: 6 }, EngineProbe::<u32>::new());
    engine.schedule_at(SimTime::ZERO, 0);
    let dispatched = engine.run();
    let snap = engine.observer().recorder().snapshot();
    assert_eq!(snap.counter_total("engine.events_dispatched"), dispatched);
    assert_eq!(snap.counter_total("engine.events_scheduled"), dispatched);
}

/// A merged multi-subsystem snapshot survives the JSONL file round trip.
#[test]
fn jsonl_export_round_trips_through_a_file() {
    let config = MacConfig::default_with_devices(8).unwrap();
    let mut rec = Recorder::new();
    simulate_observed(
        &config,
        MacMode::Scheduled,
        SimDuration::from_secs(10),
        &mut SeedRng::new(3),
        &mut rec,
    );
    let snap = rec.snapshot();
    assert!(!snap.counters.is_empty());

    let path =
        std::env::temp_dir().join(format!("zeiot-observability-{}.jsonl", std::process::id()));
    write_jsonl(&path, &snap).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let read_back = from_jsonl(&text).unwrap();
    assert_eq!(read_back, from_jsonl(&to_jsonl(&snap)).unwrap());
    assert_eq!(
        read_back.len(),
        text.lines().filter(|l| !l.trim().is_empty()).count()
    );
}
