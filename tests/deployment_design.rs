//! Integration: the §III.B design-support flow — floor plan in,
//! obstacle-aware topology, collection plan, and a MicroDeep assignment
//! over the same deployment.

use zeiot::core::geometry::Point2;
use zeiot::core::id::NodeId;
use zeiot::core::time::SimDuration;
use zeiot::microdeep::{Assignment, CnnConfig, CostModel};
use zeiot::net::Topology;
use zeiot::plan::planner::{Planner, Requirements};
use zeiot::rf::obstacle::ObstacleMap;

fn office_topology() -> Topology {
    let plan = ObstacleMap::four_rooms(20.0, 20.0);
    let mut positions = Vec::new();
    for row in 0..5 {
        for col in 0..5 {
            positions.push(Point2::new(2.0 + col as f64 * 3.9, 2.0 + row as f64 * 3.9));
        }
    }
    Topology::from_positions_with_obstacles(positions, 6.0, &plan, 3.0).unwrap()
}

#[test]
fn obstacle_aware_office_supports_a_collection_plan() {
    let topo = office_topology();
    assert!(topo.is_connected());
    let planner = Planner::new(&topo, NodeId::new(0)).unwrap();
    let req = Requirements {
        cycle: SimDuration::from_secs(1),
        payload_bits: 256,
        bit_rate_bps: 250e3,
        channels: 2,
    };
    let plan = planner.plan(&req).unwrap();
    assert!(plan.feasible, "round={:?}", plan.round_duration);
    assert!(plan.uncovered.is_empty());
    // Walls lengthen routes: the obstacle-aware tree is at least as deep
    // as the free-space tree over the same node positions.
    let open = Topology::from_positions_with_obstacles(
        topo.positions().to_vec(),
        6.0,
        &ObstacleMap::empty(),
        3.0,
    )
    .unwrap();
    let open_plan = Planner::new(&open, NodeId::new(0))
        .unwrap()
        .plan(&req)
        .unwrap();
    assert!(plan.tree.height() >= open_plan.tree.height());
    assert!(plan.schedule.length() >= open_plan.schedule.length());
}

#[test]
fn microdeep_assignment_works_over_the_obstacle_topology() {
    // The same office mesh can host a CNN whose sensing grid matches the
    // 5×5 deployment.
    let topo = office_topology();
    let config = CnnConfig::new(1, 5, 5, 3, 2, 2, 8, 2).unwrap();
    let graph = config.unit_graph().unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    let cap = graph.total_units().div_ceil(topo.len());
    assert!(assignment.is_balanced(cap));
    let cost = CostModel::new(&topo);
    let central = Assignment::centralized(&graph, &topo);
    assert!(
        cost.forward_cost(&graph, &assignment).max_cost()
            < cost.forward_cost(&graph, &central).max_cost()
    );
}

#[test]
fn planner_recovers_when_a_room_is_lost() {
    // Kill the top-right room's nodes (power cut): replanning covers the
    // survivors through the remaining doors.
    let topo = office_topology();
    let planner = Planner::new(&topo, NodeId::new(0)).unwrap();
    let req = Requirements {
        cycle: SimDuration::from_secs(2),
        payload_bits: 256,
        bit_rate_bps: 250e3,
        channels: 1,
    };
    // Nodes in x>10, y>10 quadrant: cols 3-4, rows 3-4 → indices.
    let failed: Vec<NodeId> = topo
        .node_ids()
        .filter(|n| {
            let p = topo.position(*n);
            p.x > 10.0 && p.y > 10.0
        })
        .collect();
    assert!(!failed.is_empty());
    let plan = planner.replan_after_failures(&req, &failed).unwrap();
    assert!(plan.uncovered.is_empty(), "uncovered: {:?}", plan.uncovered);
    assert!(plan.feasible);
}
