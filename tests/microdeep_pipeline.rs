//! Integration: the full MicroDeep pipeline across `zeiot-data`,
//! `zeiot-nn`, `zeiot-net` and `zeiot-microdeep`, at reduced scale.

use zeiot::core::rng::SeedRng;
use zeiot::data::gait::GaitGenerator;
use zeiot::data::temperature::TemperatureFieldGenerator;
use zeiot::microdeep::{Assignment, CnnConfig, CostModel, DistributedCnn, WeightUpdate};
use zeiot::net::Topology;

#[test]
fn temperature_pipeline_learns_and_saves_traffic() {
    let mut rng = SeedRng::new(1);
    let generator = TemperatureFieldGenerator::paper_lounge().unwrap();
    let mut data = generator.generate(300, &mut rng);
    TemperatureFieldGenerator::normalize(&mut data);
    let (train, test) = data.split_at(240);

    let config = CnnConfig::new(1, 17, 25, 4, 4, 2, 32, 2).unwrap();
    let graph = config.unit_graph().unwrap();
    let topo = Topology::grid(10, 5, 5.0, 7.6).unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    let mut net = DistributedCnn::new(config, assignment.clone(), WeightUpdate::PerUnit, &mut rng);
    let first_loss = net.train_epoch(train, 0.05, 16, &mut rng);
    let mut last_loss = first_loss;
    for _ in 0..6 {
        last_loss = net.train_epoch(train, 0.05, 16, &mut rng);
    }
    assert!(last_loss < first_loss, "loss did not decrease");
    assert!(net.accuracy(test) > 0.75);

    let cost = CostModel::new(&topo);
    let central = Assignment::centralized(&graph, &topo);
    let ratio = cost
        .peak_cost_ratio(&graph, &assignment, &central)
        .expect("centralized baseline has traffic");
    assert!(ratio < 0.5, "peak ratio {ratio}");
}

#[test]
fn all_three_update_modes_run_on_the_same_assignment() {
    let mut rng = SeedRng::new(2);
    let generator = GaitGenerator::paper_array().unwrap();
    let data = generator.generate(200, 3, &mut rng);
    let (train, test) = data.split_at(160);

    let config = CnnConfig::new(10, 8, 8, 4, 3, 2, 16, 2).unwrap();
    let graph = config.unit_graph().unwrap();
    let topo = Topology::grid(8, 8, 0.5, 0.75).unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    for update in [
        WeightUpdate::Synchronized,
        WeightUpdate::Independent,
        WeightUpdate::PerUnit,
    ] {
        let mut net = DistributedCnn::new(config, assignment.clone(), update, &mut rng);
        for _ in 0..12 {
            net.train_epoch(train, 0.05, 16, &mut rng);
        }
        let acc = net.accuracy(test);
        assert!(acc > 0.7, "{update:?}: acc={acc}");
    }
}

#[test]
fn assignment_strategies_order_by_peak_cost() {
    let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).unwrap();
    let graph = config.unit_graph().unwrap();
    let topo = Topology::grid(4, 4, 2.0, 3.0).unwrap();
    let cost = CostModel::new(&topo);

    let central = cost
        .forward_cost(&graph, &Assignment::centralized(&graph, &topo))
        .max_cost();
    let balanced = cost
        .forward_cost(&graph, &Assignment::balanced_correspondence(&graph, &topo))
        .max_cost();
    // The headline ordering of the paper.
    assert!(balanced < central, "balanced={balanced} central={central}");
    // Total traffic conservation sanity: some traffic exists everywhere.
    assert!(balanced > 0);
}

#[test]
fn synchronized_distributed_matches_centralized_numerics() {
    // With identical seeds the distributed forward pass must agree with
    // the centralized network built from the same config (the layers are
    // mathematically the same graph).
    let mut rng_a = SeedRng::new(3);
    let mut rng_b = SeedRng::new(3);
    let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
    let graph = config.unit_graph().unwrap();
    let topo = Topology::grid(3, 3, 2.0, 3.0).unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    let mut central = config.build_centralized(&mut rng_a);
    let mut distributed =
        DistributedCnn::new(config, assignment, WeightUpdate::Synchronized, &mut rng_b);

    // Same RNG consumption order gives identical initial weights; verify
    // on a probe input.
    let probe = zeiot::nn::tensor::Tensor::uniform(vec![1, 8, 8], 1.0, &mut SeedRng::new(9));
    let out_c = central.forward(&probe);
    let out_d = distributed.forward(&probe);
    for (a, b) in out_c.data().iter().zip(out_d.data()) {
        assert!((a - b).abs() < 1e-4, "centralized {a} vs distributed {b}");
    }
}
