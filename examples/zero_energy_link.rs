//! Zero-energy link planning — §I and §IV.A brought together.
//!
//! For a candidate tag deployment this example answers the questions a
//! system designer would ask: how far can the tag be read, how fast, how
//! much energy does one report cost, how long must the tag harvest
//! between reports, and will the facility Wi-Fi tolerate the traffic.
//!
//! Run with: `cargo run --release --example zero_energy_link`

use zeiot::backscatter::phy::BackscatterLink;
use zeiot::backscatter::registry::{CycleRegistry, Registration};
use zeiot::core::id::DeviceId;
use zeiot::core::rng::SeedRng;
use zeiot::core::time::SimDuration;
use zeiot::core::units::Watt;
use zeiot::energy::capacitor::Capacitor;
use zeiot::energy::consumer::{DeviceState, PowerProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeedRng::new(1);
    println!("— zero-energy link planner —\n");

    // Link budget: how far can the paper's ZigBee-backscatter tag reach?
    let link = BackscatterLink::zigbee_testbed()?;
    for target in [0.99, 0.9, 0.5] {
        let range = link
            .max_range_m(1.0, target, 500.0)
            .map(|r| format!("{r:.0} m"))
            .unwrap_or_else(|| "unreachable".to_owned());
        println!("range at {:>2.0}% packet success: {range}", target * 100.0);
    }
    let goodput = link.goodput_bps(1.0, 10.0, 11.0);
    println!("goodput at 10 m: {:.0} kbit/s", goodput / 1e3);

    // Energy per report: 32-byte packet at 250 kbit/s.
    let tag = PowerProfile::backscatter_tag()?;
    let report_energy = tag.tx_energy(DeviceState::Backscatter, 32 * 8, 250e3);
    println!(
        "one 32-byte report costs {:.1} nJ (vs {:.1} µJ on an active radio)",
        report_energy.value() * 1e9,
        PowerProfile::active_802154_node()?
            .tx_energy(DeviceState::ActiveRadio, 32 * 8, 250e3)
            .value()
            * 1e6
    );

    // Harvest time between reports on a 10 µW budget.
    let mut cap = Capacitor::new(47e-6, 2.4, 1.8, 3.0)?;
    let harvest = Watt::new(10e-6);
    let mut seconds = 0.0;
    while !cap.is_on() {
        cap.charge(harvest, SimDuration::from_millis(100));
        seconds += 0.1;
    }
    println!("cold start on 10 µW harvest: {seconds:.1} s to first report");

    // Channel admission: how many such tags fit in 10 % of the band?
    let mut registry = CycleRegistry::new(250e3, 0.10)?;
    let prototype = Registration::new(DeviceId::new(0), SimDuration::from_millis(500), 32 * 8)?;
    let capacity = registry.capacity_for(&prototype);
    println!("admission: {capacity} tags at one 32-byte report per 500 ms fit in 10% of the band");
    for i in 0..capacity.min(100) as u32 {
        registry.register(Registration::new(
            DeviceId::new(i),
            SimDuration::from_millis(500),
            32 * 8,
        )?)?;
    }
    println!(
        "registered {} tags, band occupation {:.1}%",
        registry.len(),
        registry.total_occupation() * 100.0
    );

    // A stochastic reality check on the 10 m link.
    let delivered = (0..1000)
        .filter(|_| link.try_deliver(1.0, 10.0, 11.0, &mut rng))
        .count();
    println!("monte-carlo delivery at 10 m: {}/1000 packets", delivered);
    Ok(())
}
