//! Train-car congestion estimation — the paper's §IV.B system
//! (ref \[65\]) end to end, with the reliability-weighting ablation.
//!
//! Calibrates likelihood functions on generated commuter-train scenes,
//! then estimates car-level positions and three-level congestion for a
//! fresh ride, comparing weighted and unweighted voting.
//!
//! Run with: `cargo run --release --example train_congestion`

use zeiot::core::rng::SeedRng;
use zeiot::data::train::{CongestionLevel, TrainSceneGenerator};
use zeiot::nn::eval::ConfusionMatrix;
use zeiot::sensing::train::{CongestionEstimator, LabelledScene, TrainObservation};

fn to_labelled(scene: &zeiot::data::train::TrainScene) -> LabelledScene {
    LabelledScene {
        observation: TrainObservation {
            cars: scene.cars(),
            reference_car: scene.reference_car.clone(),
            user_to_reference: scene.user_to_reference.clone(),
            user_to_user: scene.user_to_user.clone(),
        },
        user_car: scene.user_car.clone(),
        congestion: scene.congestion.iter().map(|c| c.index()).collect(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeedRng::new(14);
    let generator = TrainSceneGenerator::paper_train()?;

    // Calibration rides.
    let training: Vec<LabelledScene> = (0..50)
        .map(|_| to_labelled(&generator.scene(&mut rng)))
        .collect();
    let estimator = CongestionEstimator::fit(&training)?;
    println!("calibrated on {} rides\n", training.len());

    // A fresh rush-hour ride: crowded middle cars.
    let rush_hour = [
        CongestionLevel::Low,
        CongestionLevel::Medium,
        CongestionLevel::High,
        CongestionLevel::High,
        CongestionLevel::Medium,
        CongestionLevel::Low,
    ];
    let scene = generator.scene_with_congestion(&rush_hour, &mut rng);
    let labelled = to_labelled(&scene);
    println!(
        "ride: {} participating phones across {} cars",
        labelled.observation.users(),
        labelled.observation.cars
    );

    // Positioning.
    let positions = estimator.estimate_positions(&labelled.observation);
    let correct = positions
        .iter()
        .zip(&labelled.user_car)
        .filter(|(p, &t)| p.car == t)
        .count();
    println!(
        "positioning: {}/{} users assigned to the right car",
        correct,
        positions.len()
    );

    // Congestion, weighted vs unweighted voting.
    let names = ["low", "medium", "high"];
    let mut cm = ConfusionMatrix::new(3);
    for weighted in [true, false] {
        let estimate = estimator.estimate_congestion(&labelled.observation, &positions, weighted);
        let label = if weighted { "weighted" } else { "unweighted" };
        print!("congestion ({label}):");
        for (car, level) in estimate.iter().enumerate() {
            let truth = labelled.congestion[car];
            if weighted {
                cm.record(truth, *level);
            }
            let mark = if *level == truth { "" } else { "*" };
            print!(" car{car}={}{mark}", names[*level]);
        }
        println!();
    }
    println!(
        "\nweighted-vote accuracy on this ride: {:.0}% (macro-F1 {:.2})",
        cm.accuracy() * 100.0,
        cm.macro_f1().unwrap_or(0.0)
    );
    Ok(())
}
