//! Smart-building sensing — the paper's scenarios (vi) air-conditioning
//! management and §IV.B wireless sensing, on one floor.
//!
//! Three estimators run on the same simulated floor:
//!
//! 1. discomfort detection from the distributed temperature CNN (E1);
//! 2. occupancy counting from the already-deployed 802.15.4 mesh (E5);
//! 3. device-free localization of a person from Wi-Fi CSI (E6).
//!
//! Run with: `cargo run --release --example smart_building`

use zeiot::core::geometry::Point2;
use zeiot::core::rng::SeedRng;
use zeiot::data::csi::{CsiGenerator, CsiPattern};
use zeiot::data::temperature::TemperatureFieldGenerator;
use zeiot::microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
use zeiot::net::rssi::RssiSampler;
use zeiot::net::Topology;
use zeiot::sensing::counting::{CountingFeatures, PeopleCounter};
use zeiot::sensing::csi::CsiLocalizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeedRng::new(99);
    println!("— smart-building pipeline —\n");

    // 1. Comfort: MicroDeep discomfort detection over the lounge.
    let generator = TemperatureFieldGenerator::paper_lounge()?;
    let mut data = generator.generate(600, &mut rng);
    TemperatureFieldGenerator::normalize(&mut data);
    let (train, test) = data.split_at(480);
    let config = CnnConfig::new(1, 17, 25, 4, 4, 2, 32, 2)?;
    let graph = config.unit_graph()?;
    let topo = Topology::grid(10, 5, 5.0, 7.6)?;
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    let mut net = DistributedCnn::new(config, assignment, WeightUpdate::PerUnit, &mut rng);
    for _ in 0..8 {
        net.train_epoch(train, 0.05, 16, &mut rng);
    }
    println!(
        "comfort: discomfort detection accuracy {:.1}% on 50 zero-maintenance sensors",
        net.accuracy(test) * 100.0
    );

    // 2. Occupancy: count people in the meeting room from RSSI.
    let lab = Topology::grid(4, 4, 3.0, 4.5)?;
    let sampler = RssiSampler::ieee802154(lab)?.with_noise_sigma(1.2)?;
    let mut training = Vec::new();
    for count in 0..=8usize {
        for _ in 0..25 {
            let people: Vec<Point2> = (0..count)
                .map(|_| Point2::new(rng.uniform_range(0.0, 9.0), rng.uniform_range(0.0, 9.0)))
                .collect();
            let inter = sampler.inter_node_rssi(&people, &mut rng);
            let surrounding = sampler.surrounding_rssi(&people, 0.9, &mut rng);
            if let Some(f) = CountingFeatures::extract(&inter, &surrounding) {
                training.push((f, count));
            }
        }
    }
    let counter = PeopleCounter::fit(&training)?;
    // A meeting of five walks in:
    let meeting: Vec<Point2> = (0..5)
        .map(|_| Point2::new(rng.uniform_range(2.0, 7.0), rng.uniform_range(2.0, 7.0)))
        .collect();
    let inter = sampler.inter_node_rssi(&meeting, &mut rng);
    let surrounding = sampler.surrounding_rssi(&meeting, 0.9, &mut rng);
    let estimate = CountingFeatures::extract(&inter, &surrounding)
        .map(|f| counter.predict(&f))
        .unwrap_or(0);
    println!("occupancy: 5 people entered, estimator says {estimate}");

    // 3. Localization: where is the occupant, from CSI feedback alone?
    let csi = CsiGenerator::new(5)?;
    let pattern = CsiPattern::all()[4]; // walking, divergent antennas
    let (train_csi, test_csi) = csi.split(pattern, 30, 10, &mut rng);
    let to_pairs = |samples: Vec<zeiot::data::csi::CsiSample>| {
        samples
            .into_iter()
            .map(|s| (s.features, s.position))
            .collect::<Vec<_>>()
    };
    let localizer = CsiLocalizer::fit(&to_pairs(train_csi), 5)?;
    let cm = localizer.evaluate(&to_pairs(test_csi));
    println!(
        "localization: {:.1}% over 7 positions (device-free, from CSI feedback)",
        cm.accuracy() * 100.0
    );
    Ok(())
}
