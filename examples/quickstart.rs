//! Quickstart: the MicroDeep pipeline in ~80 lines.
//!
//! Builds the paper's motion-experiment CNN, spreads its units over an
//! 8×8 sensor mesh with the load-equalizing heuristic, trains it with
//! communication-free per-unit updates on synthetic IR gait data, and
//! prints the accuracy and communication profile against the
//! centralized baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use zeiot::core::rng::SeedRng;
use zeiot::data::gait::GaitGenerator;
use zeiot::microdeep::{Assignment, CnnConfig, CostModel, DistributedCnn, WeightUpdate};
use zeiot::net::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeedRng::new(7);

    // 1. Synthetic data: IR gait/fall windows from the 8×8 film-sensor
    //    array (10 frames = 2 s @ 5 fps, as in the paper).
    let generator = GaitGenerator::paper_array()?;
    let data = generator.generate(400, 5, &mut rng);
    let (train, test) = data.split_at(320);
    println!(
        "dataset: {} train / {} test windows",
        train.len(),
        test.len()
    );

    // 2. The canonical MicroDeep CNN: conv → pool → dense → dense.
    let config = CnnConfig::new(10, 8, 8, 4, 3, 2, 16, 2)?;
    let graph = config.unit_graph()?;
    println!(
        "CNN: {} units, {} dependency edges",
        graph.total_units(),
        graph.edge_count()
    );

    // 3. The sensor mesh: one node per IR sensor.
    let topo = Topology::grid(8, 8, 0.5, 0.75)?;

    // 4. Assign units to nodes: centralized baseline vs the paper's
    //    load-equalizing heuristic.
    let central = Assignment::centralized(&graph, &topo);
    let balanced = Assignment::balanced_correspondence(&graph, &topo);
    let cost = CostModel::new(&topo);
    let c_central = cost.forward_cost(&graph, &central);
    let c_balanced = cost.forward_cost(&graph, &balanced);
    println!(
        "max per-node communication cost: centralized {} → MicroDeep {} ({}% of peak)",
        c_central.max_cost(),
        c_balanced.max_cost(),
        (100 * c_balanced.max_cost()) / c_central.max_cost()
    );

    // 5. Train the distributed CNN with communication-free per-unit
    //    weight updates.
    let mut net = DistributedCnn::new(config, balanced, WeightUpdate::PerUnit, &mut rng);
    for epoch in 1..=10 {
        let loss = net.train_epoch(train, 0.04, 16, &mut rng);
        if epoch % 2 == 0 {
            println!("epoch {epoch:2}: loss {loss:.4}");
        }
    }

    // 6. Evaluate.
    let accuracy = net.accuracy(test);
    println!("fall-detection accuracy: {:.1}%", accuracy * 100.0);
    Ok(())
}
