//! Perimeter watch — the paper's scenario (iii): "grasping the movement
//! trajectory of people and detecting intrusion of wild animals".
//!
//! A fence-mounted IR film-sensor array streams 12-frame windows; the
//! blob tracker recovers each crossing's trajectory, speed and height,
//! and classifies empty / human / animal.
//!
//! Run with: `cargo run --release --example perimeter_watch`

use zeiot::core::rng::SeedRng;
use zeiot::data::intruder::{IntruderClass, IntruderGenerator};
use zeiot::nn::eval::ConfusionMatrix;
use zeiot::sensing::trajectory::BlobTracker;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeedRng::new(44);
    let generator = IntruderGenerator::perimeter_array()?;
    let tracker = BlobTracker::perimeter()?;

    // A night of windows.
    let windows = generator.generate(300, &mut rng);
    let mut cm = ConfusionMatrix::new(3);
    let mut human_speeds = Vec::new();
    let mut animal_speeds = Vec::new();
    for sample in &windows {
        let verdict = tracker.classify(&sample.window);
        cm.record(sample.class.label(), verdict.label());
        if let Some(speed) = tracker.track(&sample.window).speed() {
            match sample.class {
                IntruderClass::Human => human_speeds.push(speed),
                IntruderClass::Animal => animal_speeds.push(speed),
                IntruderClass::Empty => {}
            }
        }
    }

    println!("classified {} windows", windows.len());
    println!("{cm}");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "mean crossing speed: humans {:.2} cells/frame, animals {:.2} cells/frame",
        mean(&human_speeds),
        mean(&animal_speeds)
    );

    // One annotated crossing in detail.
    let sample = generator.sample(IntruderClass::Animal, &mut rng);
    let trajectory = tracker.track(&sample.window);
    println!("\none animal crossing, frame by frame:");
    for (f, det) in trajectory.detections.iter().enumerate() {
        match det {
            Some(d) => println!(
                "  frame {f:2}: x={:.1} height={:.0} cells mass={:.1}",
                d.x, d.height, d.mass
            ),
            None => println!("  frame {f:2}: —"),
        }
    }
    println!(
        "direction: {}, speed {:.2} cells/frame",
        match trajectory.direction() {
            Some(d) if d > 0.0 => "left→right",
            Some(_) => "right→left",
            None => "unknown",
        },
        trajectory.speed().unwrap_or(0.0)
    );
    Ok(())
}
