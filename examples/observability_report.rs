//! One snapshot across three subsystems, then a console report.
//!
//! Runs an instrumented slice of each subsystem the observability layer
//! covers — a distributed-CNN training pass (per-node radio counters,
//! replica drift), the coexistence MAC (grants, collisions, dummy
//! carriers), and an intermittent energy-harvesting device (capacitor
//! voltage, power cycles). Each subsystem records into its own
//! [`zeiot::obs::Recorder`] (they run on independent simulation clocks,
//! so their traces must not share one buffer); the snapshots are merged
//! and the per-subsystem highlights printed, followed by the full
//! summary.
//!
//! Run with: `cargo run --release --example observability_report`

use zeiot::backscatter::mac::{simulate_observed, MacConfig, MacMode};
use zeiot::core::rng::SeedRng;
use zeiot::core::time::SimDuration;
use zeiot::core::units::{Joule, Watt};
use zeiot::data::gait::GaitGenerator;
use zeiot::energy::capacitor::Capacitor;
use zeiot::energy::consumer::PowerProfile;
use zeiot::energy::harvester::ConstantSource;
use zeiot::energy::intermittent::{IntermittentDevice, Task};
use zeiot::microdeep::{Assignment, CnnConfig, DistributedCnn, TrafficInstrument, WeightUpdate};
use zeiot::net::Topology;
use zeiot::obs::{Label, Recorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeedRng::new(42);

    // ── MicroDeep: distributed CNN on a 4×4 mesh ─────────────────────
    let mut md_rec = Recorder::new();
    let config = CnnConfig::new(10, 8, 8, 4, 3, 2, 16, 2)?;
    let graph = config.unit_graph()?;
    let topo = Topology::grid(4, 4, 2.0, 3.0)?;
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    // Radio-level view: what each node's radio does in one training step.
    let instrument = TrafficInstrument::new(&topo);
    instrument.record_training_step(&graph, &assignment, &mut md_rec);
    instrument.record_assignment_cost(&graph, &assignment, topo.len(), &mut md_rec);

    // Learning-level view: loss and replica drift of an observed epoch.
    let generator = GaitGenerator::paper_array()?;
    let data = generator.generate(80, 5, &mut rng);
    let mut net = DistributedCnn::new(config, assignment, WeightUpdate::PerUnit, &mut rng);
    net.train_epoch_observed(&data, 0.04, 16, &mut rng, &mut md_rec);

    // ── Backscatter MAC: 20 devices, scheduled and naive ─────────────
    let mut mac_rec = Recorder::new();
    let mac_config = MacConfig::default_with_devices(20)?;
    let duration = SimDuration::from_secs(20);
    simulate_observed(
        &mac_config,
        MacMode::Scheduled,
        duration,
        &mut SeedRng::new(1),
        &mut mac_rec,
    );
    simulate_observed(
        &mac_config,
        MacMode::Naive,
        duration,
        &mut SeedRng::new(1),
        &mut mac_rec,
    );

    // ── Energy: an intermittent tag at 20 µW harvest ─────────────────
    let mut energy_rec = Recorder::new();
    let mut device = IntermittentDevice::new(
        ConstantSource::new(Watt::new(20e-6))?,
        Capacitor::new(100e-6, 2.4, 1.8, 3.0)?,
        PowerProfile::backscatter_tag()?,
        SimDuration::from_millis(10),
    )?;
    let task = Task::new(
        1_000_000,
        10,
        Joule::from_microjoules(1.0),
        Joule::from_microjoules(5.0),
    )?;
    device.run_observed(
        &task,
        SimDuration::from_secs(60),
        &mut rng,
        &mut energy_rec,
        Label::part("tag-0"),
    );

    // ── Per-subsystem highlights ─────────────────────────────────────
    let mut snap = md_rec.snapshot();
    snap.merge(mac_rec.snapshot());
    snap.merge(energy_rec.snapshot());

    println!("-- microdeep (one training step, {} nodes) --", topo.len());
    for name in ["microdeep.tx_messages", "microdeep.rx_messages"] {
        let max = snap.counter_max(name).expect("instrumented");
        let mean = snap.counter_mean(name).expect("instrumented");
        println!(
            "{name}: max {} at {}, mean {mean:.1} per node",
            max.value, max.label
        );
    }

    println!("-- mac ({} devices, {duration} each mode) --", 20);
    println!(
        "grants {} | collisions {} | dummy frames {} | samples dropped {}",
        snap.counter_total("mac.grants"),
        snap.counter_total("mac.collisions"),
        snap.counter_total("mac.dummy_frames"),
        snap.counter_total("mac.samples_dropped"),
    );

    println!("-- energy (20 µW harvest, 60 s) --");
    let (v_min, v_mean, v_max) = snap
        .series_value_stats("energy.capacitor_v")
        .expect("voltage sampled");
    println!("capacitor: min {v_min:.2} V, mean {v_mean:.2} V, max {v_max:.2} V");
    println!(
        "power cycles {} | brownouts {} | checkpoints {}",
        snap.counter_total("energy.power_cycles"),
        snap.counter_total("energy.brownouts"),
        snap.counter_total("energy.checkpoints"),
    );

    // ── Everything the recorders saw ─────────────────────────────────
    println!();
    println!("{snap}");
    Ok(())
}
