//! Multi-tenant inference serving on a shared sensor mesh.
//!
//! Three context-recognition applications — motion classification,
//! door-event detection and HVAC occupancy — share one 3×3 zero-energy
//! mesh. Each is a `zeiot-serve` tenant with its own request stream and
//! latency contract; the serving layer schedules them over sharded EDF
//! queues with micro-batching and bounded admission. The second half
//! pulls the mesh's radio down to 5 % packet loss and shows the
//! degradation ladder keeping every tenant answered.
//!
//! Run with: `cargo run --release --example serving_demo`

use zeiot::core::rng::SeedRng;
use zeiot::core::time::SimDuration;
use zeiot::fault::{DegradeMode, FaultPlan, RecoveryPolicy};
use zeiot::microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
use zeiot::net::Topology;
use zeiot::nn::tensor::Tensor;
use zeiot::serve::{ArrivalProcess, DegradedServing, ServeConfig, Server, Tenant, TenantSpec};

/// Synthetic two-class 8×8 frames: class 0 lights the top-left quadrant,
/// class 1 the bottom-right.
fn samples(n: usize, rng: &mut SeedRng) -> Vec<(Tensor, usize)> {
    (0..n)
        .map(|i| {
            let class = i % 2;
            let mut img = Tensor::zeros(vec![1, 8, 8]);
            for y in 0..4 {
                for x in 0..4 {
                    let (yy, xx) = if class == 0 { (y, x) } else { (y + 4, x + 4) };
                    img.set(&[0, yy, xx], 1.0 + rng.normal_with(0.0, 0.1) as f32);
                }
            }
            (img, class)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("— multi-tenant serving on a shared mesh —\n");

    // One CNN geometry deployed per tenant over the same 3×3 mesh.
    let topo = Topology::grid(3, 3, 2.0, 3.0)?;
    let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2)?;
    let graph = config.unit_graph()?;
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    let mut data_rng = SeedRng::new(7);
    let train = samples(80, &mut data_rng);
    let pool = samples(16, &mut data_rng);

    let mut tenants = Vec::new();
    let mix = [
        ("motion", ArrivalProcess::poisson(8.0)),
        (
            "doors",
            ArrivalProcess::periodic(SimDuration::from_millis(150)),
        ),
        (
            "hvac",
            ArrivalProcess::bursts(
                3,
                SimDuration::from_millis(5),
                SimDuration::from_millis(400),
            ),
        ),
    ];
    for (name, arrivals) in mix {
        let mut rng = SeedRng::new(11);
        let mut net = DistributedCnn::new(
            config,
            assignment.clone(),
            WeightUpdate::Independent,
            &mut rng,
        );
        let mut train_rng = SeedRng::new(13);
        for _ in 0..10 {
            net.train_epoch(&train, 0.08, 8, &mut train_rng);
        }
        let spec = TenantSpec::new(name, arrivals, SimDuration::from_millis(400));
        tenants.push(Tenant::new(spec, net, pool.clone())?);
    }

    // 1. Healthy mesh: two shards, micro-batches of four.
    let serve_config = ServeConfig::new(2, 4, 16, SimDuration::from_millis(40))?
        .with_batch_overhead(SimDuration::from_millis(10));
    let mut server = Server::new(serve_config, topo.clone(), tenants)?;
    let outcome = server.run(42, SimDuration::from_secs(10), None);
    println!("healthy mesh, 10 s of offered load:");
    print!("{}", outcome.report);

    // 2. The same tenant mix served through a 5 %-loss fabric with
    //    zero-fill degradation: every request still gets an answer.
    let mut tenants = Vec::new();
    for (name, arrivals) in mix {
        let mut rng = SeedRng::new(11);
        let mut net = DistributedCnn::new(
            config,
            assignment.clone(),
            WeightUpdate::Independent,
            &mut rng,
        );
        let mut train_rng = SeedRng::new(13);
        for _ in 0..10 {
            net.train_epoch(&train, 0.08, 8, &mut train_rng);
        }
        let spec = TenantSpec::new(name, arrivals, SimDuration::from_millis(400));
        tenants.push(Tenant::new(spec, net, pool.clone())?);
    }
    let mut degraded_server =
        Server::new(serve_config, topo, tenants)?.with_degraded(DegradedServing {
            plan: FaultPlan::uniform(9, 0.05)?,
            policy: RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            pass_period: SimDuration::from_millis(100),
            stale_cache: true,
            replace: None,
        });
    let outcome = degraded_server.run(42, SimDuration::from_secs(10), None);
    println!("\nsame mesh at 5% packet loss (zero-fill degradation):");
    print!("{}", outcome.report);
    let total = outcome.report.total();
    println!(
        "\ndegradation ladder: {} served ({} degraded, {} stale), {} failed — accuracy {:.0}%",
        total.served,
        total.degraded,
        total.stale,
        total.failed,
        total.accuracy() * 100.0
    );
    Ok(())
}
