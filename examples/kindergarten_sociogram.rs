//! Kindergarten sociogram — the paper's scenario (iv) end to end.
//!
//! RFID tags on children's clothes, area-limited Wi-Fi base stations on
//! the play equipment and classrooms; each station logs the tag IDs it
//! sees per collection round. From one simulated day of logs the
//! sociogram estimator recovers the friendship groups and flags isolated
//! children.
//!
//! Run with: `cargo run --release --example kindergarten_sociogram`

use zeiot::core::rng::SeedRng;
use zeiot::data::playground::PlaygroundGenerator;
use zeiot::sensing::sociogram::{Sighting, SociogramBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeedRng::new(31);

    // One kindergarten day: 5 friend groups, 6 areas, 60 collection
    // rounds.
    let generator = PlaygroundGenerator::new(5, 5, 6, 60)?;
    let day = generator.day(&mut rng);
    println!(
        "day: {} children, {} areas, {} rounds, {} tag sightings",
        day.children(),
        day.areas,
        day.slots,
        day.records.len()
    );

    // Feed the base-station logs to the estimator.
    let sightings: Vec<Sighting> = day
        .records
        .iter()
        .map(|r| Sighting {
            slot: r.slot,
            area: r.area,
            child: r.child,
        })
        .collect();
    let sociogram = SociogramBuilder::new(2.0)?.build(&sightings)?;

    println!("\nestimated friend groups:");
    for group in sociogram.groups() {
        println!("  {group:?}");
    }
    println!("estimated isolated children: {:?}", sociogram.isolated());

    println!("\nground-truth groups (≥2 members):");
    for group in day.groups.iter().filter(|g| g.len() >= 2) {
        println!("  {group:?}");
    }
    println!("ground-truth isolated: {:?}", day.isolated);

    let rand = sociogram.rand_index(&day.groups);
    println!("\npairwise agreement (Rand index): {rand:.3}");

    // The isolation signal the paper cares about: how many truly
    // isolated children did we catch?
    let caught = day
        .isolated
        .iter()
        .filter(|c| sociogram.isolated().contains(c))
        .count();
    println!(
        "isolated children detected: {caught}/{}",
        day.isolated.len()
    );
    Ok(())
}
