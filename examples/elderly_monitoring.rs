//! Elderly monitoring at a care facility — the paper's motivating
//! scenario (i): zero-energy fall detection end to end.
//!
//! The pipeline chains four subsystems:
//!
//! 1. an energy-harvesting device model decides how often each IR node
//!    can even afford to sense and backscatter;
//! 2. the coexistence MAC carries the sensor readings over the
//!    facility's existing Wi-Fi without disturbing it;
//! 3. MicroDeep runs the fall-detection CNN on the sensor mesh itself;
//! 4. a node failure is injected and the assignment repaired (§V
//!    resilience).
//!
//! Run with: `cargo run --release --example elderly_monitoring`

use zeiot::backscatter::mac::{simulate, MacConfig, MacMode};
use zeiot::core::id::NodeId;
use zeiot::core::rng::SeedRng;
use zeiot::core::time::SimDuration;
use zeiot::core::units::{Joule, Watt};
use zeiot::data::gait::GaitGenerator;
use zeiot::energy::capacitor::Capacitor;
use zeiot::energy::consumer::PowerProfile;
use zeiot::energy::harvester::ConstantSource;
use zeiot::energy::intermittent::{IntermittentDevice, Task};
use zeiot::microdeep::replace::plan_incremental;
use zeiot::microdeep::{Assignment, CnnConfig, CostModel, DistributedCnn, WeightUpdate};
use zeiot::net::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeedRng::new(2026);
    println!("— elderly-monitoring pipeline —\n");

    // 1. Energy: can a corridor node live on the facility's LED
    //    lighting (a small, steady photovoltaic yield)?
    let mut device = IntermittentDevice::new(
        ConstantSource::new(Watt::new(60e-6))?,
        Capacitor::new(220e-6, 2.4, 1.8, 3.0)?,
        PowerProfile::backscatter_tag()?,
        SimDuration::from_millis(10),
    )?;
    let workload = Task::new(
        u64::MAX / 2,
        10,
        Joule::from_microjoules(0.5),
        Joule::from_microjoules(0.4),
    )?;
    let outcome = device.run(&workload, SimDuration::from_secs(120), &mut rng);
    println!(
        "energy: duty cycle {:.0}% under corridor lighting ({} brownouts in 2 min)",
        outcome.duty_cycle * 100.0,
        outcome.brownouts
    );

    // 2. Communication: 30 sensor tags on the facility Wi-Fi.
    let mac = MacConfig::default_with_devices(30)?;
    let report = simulate(
        &mac,
        MacMode::Scheduled,
        SimDuration::from_secs(30),
        &mut rng,
    );
    println!(
        "mac: backscatter delivery {:.1}%, Wi-Fi delivery {:.1}%, dummy overhead {:.2}%",
        report.backscatter_delivery_ratio() * 100.0,
        report.wlan_delivery_ratio() * 100.0,
        report.dummy_overhead() * 100.0
    );

    // 3. Recognition: MicroDeep fall detection on the corridor array.
    let generator = GaitGenerator::paper_array()?;
    let data = generator.generate(400, 5, &mut rng);
    let (train, test) = data.split_at(320);
    let config = CnnConfig::new(10, 8, 8, 4, 3, 2, 16, 2)?;
    let graph = config.unit_graph()?;
    let topo = Topology::grid(8, 8, 0.5, 0.75)?;
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    let mut net = DistributedCnn::new(config, assignment.clone(), WeightUpdate::PerUnit, &mut rng);
    for _ in 0..10 {
        net.train_epoch(train, 0.04, 16, &mut rng);
    }
    println!(
        "recognition: fall-detection accuracy {:.1}%",
        net.accuracy(test) * 100.0
    );

    // 4. Resilience: two nodes die; re-home their units.
    let failed = vec![NodeId::new(27), NodeId::new(36)];
    let (repaired, outcome) = plan_incremental(&graph, &topo, &assignment, &failed, usize::MAX);
    let cost = CostModel::new(&topo);
    let before = cost.forward_cost(&graph, &assignment).max_cost();
    let after = cost.forward_cost(&graph, &repaired).max_cost();
    println!(
        "resilience: {} units re-homed after {} node failures (fully recovered: {}), \
         peak cost {} → {}",
        outcome.migrations.len(),
        failed.len(),
        outcome.stranded == 0,
        before,
        after
    );
    Ok(())
}
