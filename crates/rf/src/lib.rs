//! # zeiot-rf
//!
//! RF propagation substrate for the `zeiot` workspace.
//!
//! The paper's systems all ride on 2.4 GHz radio behaviour: ambient
//! backscatter links (double path loss), Bluetooth RSSI attenuated by human
//! bodies, 802.15.4 inter-node RSSI, 802.11 CSI. None of the original
//! hardware is available, so this crate provides the physically grounded
//! models the rest of the workspace simulates against:
//!
//! - [`pathloss`] — free-space, log-distance and two-ray ground models;
//! - `shadowing` is folded into [`fading`] — log-normal large-scale
//!   shadowing plus Rayleigh/Rician small-scale fading draws;
//! - [`noise`] — thermal noise floor and SNR;
//! - [`ber`] — modulation BER curves and packet error rates;
//! - [`link`] — end-to-end link budgets composing the above;
//! - [`body`] — human-body shadowing for crowd/congestion sensing;
//! - [`obstacle`] — floor plans of attenuating walls (paper §III.B's
//!   "obstacle information" input to deployment design).
//!
//! # Example: a 2.4 GHz link budget
//!
//! ```
//! # fn main() -> Result<(), zeiot_core::ConfigError> {
//! use zeiot_rf::link::LinkBudget;
//! use zeiot_rf::pathloss::LogDistance;
//! use zeiot_core::units::{Dbm, Hertz};
//!
//! let budget = LinkBudget::builder()
//!     .tx_power(Dbm::new(0.0))
//!     .frequency(Hertz::from_ghz(2.4))
//!     .path_loss(LogDistance::indoor_2_4ghz()?)
//!     .build()?;
//! let rx = budget.received_power(10.0);
//! assert!(rx.value() < -50.0 && rx.value() > -90.0);
//! # Ok(())
//! # }
//! ```

pub mod ber;
pub mod body;
pub mod fading;
pub mod link;
pub mod noise;
pub mod obstacle;
pub mod pathloss;

pub use ber::{Modulation, PacketErrorModel};
pub use body::BodyShadowing;
pub use fading::{Fading, LogNormalShadowing, RayleighFading, RicianFading};
pub use link::{BackscatterBudget, LinkBudget};
pub use noise::NoiseModel;
pub use obstacle::{ObstacleMap, Wall};
pub use pathloss::{FreeSpace, LogDistance, PathLoss, TwoRayGround};
