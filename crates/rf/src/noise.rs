//! Thermal noise and SNR.
//!
//! The noise floor bounds every link in the workspace: `N = kTB·NF`. At
//! room temperature this is the familiar −174 dBm/Hz density.

use zeiot_core::error::{require_non_negative, require_positive, Result};
use zeiot_core::units::{Dbm, Decibel, Hertz};

/// Boltzmann noise density at 290 K in dBm/Hz.
pub const THERMAL_NOISE_DENSITY_DBM_HZ: f64 = -173.98;

/// A receiver noise model: thermal floor over a bandwidth plus a noise
/// figure.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::noise::NoiseModel;
/// use zeiot_core::units::{Dbm, Hertz};
///
/// // A 2 MHz 802.15.4 receiver with a 7 dB noise figure.
/// let noise = NoiseModel::new(Hertz::from_mhz(2.0), 7.0)?;
/// assert!((noise.floor().value() - (-103.97)).abs() < 0.1);
///
/// let snr = noise.snr(Dbm::new(-90.0));
/// assert!((snr.value() - 13.97).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    bandwidth: Hertz,
    noise_figure_db: f64,
}

impl NoiseModel {
    /// Creates a noise model for a receiver of the given bandwidth and
    /// noise figure.
    ///
    /// # Errors
    ///
    /// Returns an error if `bandwidth` is not strictly positive or the
    /// noise figure is negative.
    pub fn new(bandwidth: Hertz, noise_figure_db: f64) -> Result<Self> {
        require_positive("bandwidth", bandwidth.value())?;
        let noise_figure_db = require_non_negative("noise_figure_db", noise_figure_db)?;
        Ok(Self {
            bandwidth,
            noise_figure_db,
        })
    }

    /// An IEEE 802.15.4 (2 MHz channel, 7 dB NF) receiver profile.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`NoiseModel::new`].
    pub fn ieee802154() -> Result<Self> {
        Self::new(Hertz::from_mhz(2.0), 7.0)
    }

    /// An IEEE 802.11 (20 MHz channel, 6 dB NF) receiver profile.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`NoiseModel::new`].
    pub fn ieee80211_20mhz() -> Result<Self> {
        Self::new(Hertz::from_mhz(20.0), 6.0)
    }

    /// The receiver bandwidth.
    pub fn bandwidth(&self) -> Hertz {
        self.bandwidth
    }

    /// The receiver noise figure in dB.
    pub fn noise_figure_db(&self) -> f64 {
        self.noise_figure_db
    }

    /// The total noise floor: `kTB + NF`.
    pub fn floor(&self) -> Dbm {
        Dbm::new(
            THERMAL_NOISE_DENSITY_DBM_HZ
                + 10.0 * self.bandwidth.value().log10()
                + self.noise_figure_db,
        )
    }

    /// Signal-to-noise ratio for a received power.
    pub fn snr(&self, received: Dbm) -> Decibel {
        received - self.floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_at_1hz_is_thermal_density_plus_nf() {
        let n = NoiseModel::new(Hertz::new(1.0), 0.0).unwrap();
        assert!((n.floor().value() - THERMAL_NOISE_DENSITY_DBM_HZ).abs() < 1e-9);
    }

    #[test]
    fn wider_bandwidth_raises_floor() {
        let narrow = NoiseModel::new(Hertz::from_mhz(2.0), 6.0).unwrap();
        let wide = NoiseModel::new(Hertz::from_mhz(20.0), 6.0).unwrap();
        let delta = wide.floor().value() - narrow.floor().value();
        assert!((delta - 10.0).abs() < 1e-9);
    }

    #[test]
    fn profiles_have_expected_floors() {
        let zig = NoiseModel::ieee802154().unwrap();
        assert!((zig.floor().value() - (-103.96)).abs() < 0.1);
        let wifi = NoiseModel::ieee80211_20mhz().unwrap();
        assert!((wifi.floor().value() - (-94.96)).abs() < 0.1);
    }

    #[test]
    fn snr_is_signal_minus_floor() {
        let n = NoiseModel::ieee802154().unwrap();
        let snr = n.snr(Dbm::new(-80.0));
        assert!((snr.value() - (n.floor().value().abs() - 80.0)).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(NoiseModel::new(Hertz::new(0.0), 6.0).is_err());
        assert!(NoiseModel::new(Hertz::from_mhz(2.0), -1.0).is_err());
    }
}
