//! Large-scale shadowing and small-scale fading.
//!
//! Shadowing models slow, position-dependent deviations from the mean path
//! loss (walls, furniture); fading models fast multipath fluctuations —
//! exactly the "radio waves fluctuation" the paper proposes to sense
//! (§III.C). All draws take an explicit RNG for determinism.

use zeiot_core::error::{require_non_negative, require_positive, Result};
use zeiot_core::rng::SeedRng;
use zeiot_core::units::Decibel;

/// A stochastic channel gain component, drawn per transmission.
///
/// Positive values are (rare) constructive gains; negative values are
/// fades.
pub trait Fading {
    /// Draws one gain realization in dB.
    fn draw(&self, rng: &mut SeedRng) -> Decibel;

    /// The mean gain in dB of this component (0 for a well-normalized
    /// model).
    fn mean_db(&self) -> f64;
}

/// Log-normal shadowing: a zero-mean Gaussian in the dB domain.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::fading::{Fading, LogNormalShadowing};
/// use zeiot_core::rng::SeedRng;
///
/// let sh = LogNormalShadowing::new(4.0)?;
/// let mut rng = SeedRng::new(1);
/// let g = sh.draw(&mut rng);
/// assert!(g.value().abs() < 40.0); // within 10 sigma
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalShadowing {
    sigma_db: f64,
}

impl LogNormalShadowing {
    /// Creates a shadowing model with standard deviation `sigma_db`.
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma_db` is negative or not finite.
    pub fn new(sigma_db: f64) -> Result<Self> {
        let sigma_db = require_non_negative("sigma_db", sigma_db)?;
        Ok(Self { sigma_db })
    }

    /// The dB standard deviation.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// A deterministic per-link realization: the same `(link_key, seed)`
    /// always yields the same shadowing value, modelling shadowing as a
    /// property of the static environment rather than of time.
    pub fn sample_for_link(&self, link_key: u64, seed: u64) -> Decibel {
        let mut rng = SeedRng::with_stream(seed, link_key);
        Decibel::new(rng.normal_with(0.0, self.sigma_db))
    }
}

impl Fading for LogNormalShadowing {
    fn draw(&self, rng: &mut SeedRng) -> Decibel {
        Decibel::new(rng.normal_with(0.0, self.sigma_db))
    }

    fn mean_db(&self) -> f64 {
        0.0
    }
}

/// Rayleigh fading: the power gain is exponential with unit mean (the
/// non-line-of-sight multipath case).
///
/// # Example
///
/// ```
/// use zeiot_rf::fading::{Fading, RayleighFading};
/// use zeiot_core::rng::SeedRng;
///
/// let fad = RayleighFading::new();
/// let mut rng = SeedRng::new(2);
/// // Mean linear power gain over many draws is ~1 (0 dB).
/// let n = 20_000;
/// let mean: f64 = (0..n)
///     .map(|_| fad.draw(&mut rng).to_linear())
///     .sum::<f64>() / n as f64;
/// assert!((mean - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RayleighFading;

impl RayleighFading {
    /// Creates a unit-mean Rayleigh fading model.
    pub fn new() -> Self {
        Self
    }
}

impl Fading for RayleighFading {
    fn draw(&self, rng: &mut SeedRng) -> Decibel {
        // Power gain ~ Exp(1); envelope is Rayleigh.
        let g = rng.exponential(1.0);
        Decibel::from_linear(g.max(1e-12))
    }

    fn mean_db(&self) -> f64 {
        // E[10 log10 X], X~Exp(1) = -10·γ/ln10 ≈ -2.507 dB.
        -2.506_78
    }
}

/// Rician fading with factor `K` (line-of-sight power over scattered
/// power). `K → 0` degenerates to Rayleigh; large `K` approaches a
/// deterministic channel.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::fading::{Fading, RicianFading};
/// use zeiot_core::rng::SeedRng;
///
/// let strong_los = RicianFading::new(20.0)?;
/// let mut rng = SeedRng::new(3);
/// // With K = 20 the channel barely fluctuates.
/// let g = strong_los.draw(&mut rng);
/// assert!(g.value().abs() < 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RicianFading {
    k_factor: f64,
}

impl RicianFading {
    /// Creates a Rician model with linear K-factor `k_factor`.
    ///
    /// # Errors
    ///
    /// Returns an error if `k_factor` is negative or not finite.
    pub fn new(k_factor: f64) -> Result<Self> {
        let k_factor = require_non_negative("k_factor", k_factor)?;
        Ok(Self { k_factor })
    }

    /// The linear K-factor.
    pub fn k_factor(&self) -> f64 {
        self.k_factor
    }
}

impl Fading for RicianFading {
    fn draw(&self, rng: &mut SeedRng) -> Decibel {
        let k = self.k_factor;
        // Complex Gaussian with LOS offset, normalized to unit mean power:
        // h = sqrt(K/(K+1)) + sqrt(1/(K+1)) * CN(0,1).
        let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
        let los = (k / (k + 1.0)).sqrt();
        let re = los + sigma * rng.normal();
        let im = sigma * rng.normal();
        let power = re * re + im * im;
        Decibel::from_linear(power.max(1e-12))
    }

    fn mean_db(&self) -> f64 {
        0.0
    }
}

/// A time-correlated fading process: first-order Gauss–Markov evolution of
/// the dB gain, used when the channel is sampled repeatedly (e.g. RSSI
/// streams for wireless sensing).
///
/// `x[t+1] = ρ·x[t] + sqrt(1−ρ²)·σ·w`, `w ~ N(0,1)`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::fading::CorrelatedFading;
/// use zeiot_core::rng::SeedRng;
///
/// let mut chan = CorrelatedFading::new(0.95, 3.0)?;
/// let mut rng = SeedRng::new(4);
/// let a = chan.step(&mut rng).value();
/// let b = chan.step(&mut rng).value();
/// // Highly correlated: successive samples are close.
/// assert!((a - b).abs() < 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedFading {
    rho: f64,
    sigma_db: f64,
    state_db: f64,
}

impl CorrelatedFading {
    /// Creates a correlated fading process with one-step correlation `rho`
    /// (in `[0, 1)`) and stationary standard deviation `sigma_db`.
    ///
    /// # Errors
    ///
    /// Returns an error if `rho` is outside `[0, 1)` or `sigma_db` is not
    /// strictly positive.
    pub fn new(rho: f64, sigma_db: f64) -> Result<Self> {
        let rho = zeiot_core::error::require_in_range("rho", rho, 0.0, 1.0)?;
        if rho >= 1.0 {
            return Err(zeiot_core::error::ConfigError::new(
                "rho",
                "must be strictly below 1",
            ));
        }
        let sigma_db = require_positive("sigma_db", sigma_db)?;
        Ok(Self {
            rho,
            sigma_db,
            state_db: 0.0,
        })
    }

    /// Advances the process one sample and returns the new gain.
    pub fn step(&mut self, rng: &mut SeedRng) -> Decibel {
        let innovation = (1.0 - self.rho * self.rho).sqrt() * self.sigma_db;
        self.state_db = self.rho * self.state_db + rng.normal_with(0.0, innovation);
        Decibel::new(self.state_db)
    }

    /// The current gain without advancing.
    pub fn current(&self) -> Decibel {
        Decibel::new(self.state_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadowing_mean_and_sigma() {
        let sh = LogNormalShadowing::new(6.0).unwrap();
        let mut rng = SeedRng::new(10);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sh.draw(&mut rng).value()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.1, "sigma={}", var.sqrt());
    }

    #[test]
    fn shadowing_per_link_is_deterministic() {
        let sh = LogNormalShadowing::new(4.0).unwrap();
        let a = sh.sample_for_link(0xBEEF, 42);
        let b = sh.sample_for_link(0xBEEF, 42);
        let c = sh.sample_for_link(0xBEF0, 42);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shadowing_rejects_negative_sigma() {
        assert!(LogNormalShadowing::new(-1.0).is_err());
        assert!(LogNormalShadowing::new(0.0).is_ok());
    }

    #[test]
    fn rayleigh_power_is_unit_mean() {
        let fad = RayleighFading::new();
        let mut rng = SeedRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| fad.draw(&mut rng).to_linear()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn rayleigh_db_mean_matches_theory() {
        let fad = RayleighFading::new();
        let mut rng = SeedRng::new(12);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| fad.draw(&mut rng).value()).sum::<f64>() / n as f64;
        assert!((mean - fad.mean_db()).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn rician_k0_behaves_like_rayleigh() {
        let ric = RicianFading::new(0.0).unwrap();
        let mut rng = SeedRng::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| ric.draw(&mut rng).to_linear()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn rician_variance_shrinks_with_k() {
        let mut rng = SeedRng::new(14);
        let var_of = |k: f64, rng: &mut SeedRng| {
            let ric = RicianFading::new(k).unwrap();
            let n = 20_000;
            let samples: Vec<f64> = (0..n).map(|_| ric.draw(rng).to_linear()).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64
        };
        let v_low = var_of(0.5, &mut rng);
        let v_high = var_of(50.0, &mut rng);
        assert!(v_high < v_low / 5.0, "v_low={v_low} v_high={v_high}");
    }

    #[test]
    fn correlated_fading_stationary_sigma() {
        let mut chan = CorrelatedFading::new(0.9, 4.0).unwrap();
        let mut rng = SeedRng::new(15);
        // Burn in, then measure.
        for _ in 0..1_000 {
            chan.step(&mut rng);
        }
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| chan.step(&mut rng).value()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.15, "mean={mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.15, "sigma={}", var.sqrt());
    }

    #[test]
    fn correlated_fading_successive_correlation() {
        let mut chan = CorrelatedFading::new(0.95, 3.0).unwrap();
        let mut rng = SeedRng::new(16);
        for _ in 0..100 {
            chan.step(&mut rng);
        }
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| chan.step(&mut rng).value()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cov = samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        let rho = cov / var;
        assert!((rho - 0.95).abs() < 0.01, "rho={rho}");
    }

    #[test]
    fn correlated_fading_rejects_invalid_rho() {
        assert!(CorrelatedFading::new(1.0, 3.0).is_err());
        assert!(CorrelatedFading::new(-0.1, 3.0).is_err());
        assert!(CorrelatedFading::new(0.99, 3.0).is_ok());
    }
}
