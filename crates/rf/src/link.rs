//! End-to-end link budgets.
//!
//! [`LinkBudget`] composes transmit power, antenna gains and a path-loss
//! model for a conventional (actively transmitting) link. A backscatter
//! link is fundamentally different — the tag does not generate a carrier,
//! it reflects one — so its budget ([`BackscatterBudget`]) suffers *two*
//! propagation legs (exciter → tag, tag → receiver) plus a reflection /
//! modulation loss at the tag. This double path loss is why backscatter
//! range is so much shorter than active radio at the same exciter power,
//! and why the paper's §IV.A testbed places the carrier source close to
//! the tags.

use crate::noise::NoiseModel;
use crate::pathloss::PathLoss;
use zeiot_core::error::{require_non_negative, ConfigError, Result};
use zeiot_core::units::{Dbm, Decibel, Hertz};

/// A conventional active-radio link budget.
///
/// Build with [`LinkBudget::builder`]. See the crate-level example.
#[derive(Debug, Clone)]
pub struct LinkBudget<P> {
    tx_power: Dbm,
    tx_gain: Decibel,
    rx_gain: Decibel,
    frequency: Hertz,
    path_loss: P,
}

impl<P: PathLoss> LinkBudget<P> {
    /// Starts building a link budget.
    pub fn builder() -> LinkBudgetBuilder<P> {
        LinkBudgetBuilder::new()
    }

    /// The configured transmit power.
    pub fn tx_power(&self) -> Dbm {
        self.tx_power
    }

    /// The carrier frequency.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// The underlying path-loss model.
    pub fn path_loss_model(&self) -> &P {
        &self.path_loss
    }

    /// Mean received power over `distance_m` metres (no fading).
    pub fn received_power(&self, distance_m: f64) -> Dbm {
        self.tx_power + self.tx_gain + self.rx_gain - self.path_loss.loss(distance_m)
    }

    /// Mean received power with an additional stochastic gain (shadowing
    /// and/or fading realization) applied.
    pub fn received_power_with_gain(&self, distance_m: f64, gain: Decibel) -> Dbm {
        self.received_power(distance_m) + gain
    }

    /// Mean SNR at `distance_m` against a noise model.
    pub fn snr(&self, distance_m: f64, noise: &NoiseModel) -> Decibel {
        noise.snr(self.received_power(distance_m))
    }

    /// The greatest distance at which the mean received power stays at or
    /// above `sensitivity`, found by bisection up to `max_distance_m`.
    /// Returns `None` if even the reference distance cannot meet it.
    pub fn max_range_m(&self, sensitivity: Dbm, max_distance_m: f64) -> Option<f64> {
        let ref_d = self.path_loss.reference_distance_m();
        if self.received_power(ref_d) < sensitivity {
            return None;
        }
        if self.received_power(max_distance_m) >= sensitivity {
            return Some(max_distance_m);
        }
        let (mut lo, mut hi) = (ref_d, max_distance_m);
        for _ in 0..100 {
            let mid = (lo + hi) / 2.0;
            if self.received_power(mid) >= sensitivity {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

/// Builder for [`LinkBudget`].
#[derive(Debug, Clone)]
pub struct LinkBudgetBuilder<P> {
    tx_power: Option<Dbm>,
    tx_gain: Decibel,
    rx_gain: Decibel,
    frequency: Option<Hertz>,
    path_loss: Option<P>,
}

impl<P: PathLoss> LinkBudgetBuilder<P> {
    fn new() -> Self {
        Self {
            tx_power: None,
            tx_gain: Decibel::new(0.0),
            rx_gain: Decibel::new(0.0),
            frequency: None,
            path_loss: None,
        }
    }

    /// Sets the transmit power (required).
    pub fn tx_power(mut self, power: Dbm) -> Self {
        self.tx_power = Some(power);
        self
    }

    /// Sets the transmitter antenna gain (default 0 dBi).
    pub fn tx_gain(mut self, gain: Decibel) -> Self {
        self.tx_gain = gain;
        self
    }

    /// Sets the receiver antenna gain (default 0 dBi).
    pub fn rx_gain(mut self, gain: Decibel) -> Self {
        self.rx_gain = gain;
        self
    }

    /// Sets the carrier frequency (required).
    pub fn frequency(mut self, frequency: Hertz) -> Self {
        self.frequency = Some(frequency);
        self
    }

    /// Sets the path-loss model (required).
    pub fn path_loss(mut self, model: P) -> Self {
        self.path_loss = Some(model);
        self
    }

    /// Finishes the budget.
    ///
    /// # Errors
    ///
    /// Returns an error if transmit power, frequency or path-loss model is
    /// missing, or the frequency is not positive.
    pub fn build(self) -> Result<LinkBudget<P>> {
        let tx_power = self
            .tx_power
            .ok_or_else(|| ConfigError::new("tx_power", "is required"))?;
        let frequency = self
            .frequency
            .ok_or_else(|| ConfigError::new("frequency", "is required"))?;
        if frequency.value() <= 0.0 {
            return Err(ConfigError::new("frequency", "must be positive"));
        }
        let path_loss = self
            .path_loss
            .ok_or_else(|| ConfigError::new("path_loss", "is required"))?;
        Ok(LinkBudget {
            tx_power,
            tx_gain: self.tx_gain,
            rx_gain: self.rx_gain,
            frequency,
            path_loss,
        })
    }
}

/// A backscatter link budget: exciter → tag → receiver.
///
/// The received backscattered power is
/// `P_rx = P_exciter − L(d_exciter→tag) − L_tag − L(d_tag→rx)` where
/// `L_tag` bundles reflection efficiency and modulation loss (≈ 6–12 dB
/// for a simple RF-switch tag).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::link::BackscatterBudget;
/// use zeiot_rf::pathloss::LogDistance;
/// use zeiot_core::units::{Dbm, Decibel};
///
/// let bb = BackscatterBudget::new(
///     Dbm::new(20.0),                      // Wi-Fi AP exciter
///     LogDistance::open_hall_2_4ghz()?,
///     Decibel::new(8.0),                   // tag reflection loss
/// )?;
/// // Tag 2 m from the exciter, receiver 5 m from the tag.
/// let rx = bb.received_power(2.0, 5.0);
/// assert!(rx.value() < -40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BackscatterBudget<P> {
    exciter_power: Dbm,
    path_loss: P,
    tag_loss: Decibel,
}

impl<P: PathLoss> BackscatterBudget<P> {
    /// Creates a backscatter budget.
    ///
    /// # Errors
    ///
    /// Returns an error if `tag_loss` is negative (a passive tag cannot
    /// amplify).
    pub fn new(exciter_power: Dbm, path_loss: P, tag_loss: Decibel) -> Result<Self> {
        require_non_negative("tag_loss", tag_loss.value())?;
        Ok(Self {
            exciter_power,
            path_loss,
            tag_loss,
        })
    }

    /// The exciter transmit power.
    pub fn exciter_power(&self) -> Dbm {
        self.exciter_power
    }

    /// The tag reflection/modulation loss.
    pub fn tag_loss(&self) -> Decibel {
        self.tag_loss
    }

    /// Power arriving at the tag (relevant for RF energy harvesting).
    pub fn power_at_tag(&self, exciter_to_tag_m: f64) -> Dbm {
        self.exciter_power - self.path_loss.loss(exciter_to_tag_m)
    }

    /// Backscattered power arriving at the receiver.
    pub fn received_power(&self, exciter_to_tag_m: f64, tag_to_rx_m: f64) -> Dbm {
        self.power_at_tag(exciter_to_tag_m) - self.tag_loss - self.path_loss.loss(tag_to_rx_m)
    }

    /// The self-interference the receiver sees directly from the exciter
    /// (the dominant interferer a backscatter receiver must reject,
    /// motivating the full-duplex cancellation in paper §IV.A).
    pub fn direct_interference(&self, exciter_to_rx_m: f64) -> Dbm {
        self.exciter_power - self.path_loss.loss(exciter_to_rx_m)
    }

    /// SINR of the backscatter signal after the receiver cancels
    /// `cancellation` dB of the direct exciter leakage.
    pub fn sinr_after_cancellation(
        &self,
        exciter_to_tag_m: f64,
        tag_to_rx_m: f64,
        exciter_to_rx_m: f64,
        cancellation: Decibel,
        noise: &NoiseModel,
    ) -> Decibel {
        let signal = self.received_power(exciter_to_tag_m, tag_to_rx_m);
        let residual = self.direct_interference(exciter_to_rx_m) - cancellation;
        let snr = noise.snr(signal);
        let inr = noise.snr(residual);
        crate::ber::sinr(snr, inr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::{FreeSpace, LogDistance};

    fn budget() -> LinkBudget<LogDistance> {
        LinkBudget::builder()
            .tx_power(Dbm::new(0.0))
            .frequency(Hertz::from_ghz(2.4))
            .path_loss(LogDistance::indoor_2_4ghz().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_mandatory_fields() {
        let missing_power: Result<LinkBudget<LogDistance>> = LinkBudget::builder()
            .frequency(Hertz::from_ghz(2.4))
            .path_loss(LogDistance::indoor_2_4ghz().unwrap())
            .build();
        assert!(missing_power.is_err());

        let missing_freq: Result<LinkBudget<LogDistance>> = LinkBudget::builder()
            .tx_power(Dbm::new(0.0))
            .path_loss(LogDistance::indoor_2_4ghz().unwrap())
            .build();
        assert!(missing_freq.is_err());

        let missing_pl: Result<LinkBudget<LogDistance>> = LinkBudget::builder()
            .tx_power(Dbm::new(0.0))
            .frequency(Hertz::from_ghz(2.4))
            .build();
        assert!(missing_pl.is_err());
    }

    #[test]
    fn received_power_decreases_with_distance() {
        let b = budget();
        assert!(b.received_power(1.0) > b.received_power(10.0));
        assert!(b.received_power(10.0) > b.received_power(100.0));
    }

    #[test]
    fn antenna_gains_add_up() {
        let base = budget();
        let boosted = LinkBudget::builder()
            .tx_power(Dbm::new(0.0))
            .tx_gain(Decibel::new(3.0))
            .rx_gain(Decibel::new(2.0))
            .frequency(Hertz::from_ghz(2.4))
            .path_loss(LogDistance::indoor_2_4ghz().unwrap())
            .build()
            .unwrap();
        let delta = boosted.received_power(10.0).value() - base.received_power(10.0).value();
        assert!((delta - 5.0).abs() < 1e-9);
    }

    #[test]
    fn snr_consistent_with_noise_model() {
        let b = budget();
        let n = NoiseModel::ieee802154().unwrap();
        let snr = b.snr(5.0, &n);
        let manual = b.received_power(5.0) - n.floor();
        assert!((snr.value() - manual.value()).abs() < 1e-9);
    }

    #[test]
    fn max_range_is_consistent() {
        let b = budget();
        let sens = Dbm::new(-85.0);
        let range = b.max_range_m(sens, 1_000.0).unwrap();
        assert!(b.received_power(range).value() >= sens.value() - 0.01);
        assert!(b.received_power(range * 1.1).value() < sens.value());
    }

    #[test]
    fn max_range_none_when_unreachable() {
        let weak = LinkBudget::builder()
            .tx_power(Dbm::new(-100.0))
            .frequency(Hertz::from_ghz(2.4))
            .path_loss(LogDistance::indoor_2_4ghz().unwrap())
            .build()
            .unwrap();
        assert!(weak.max_range_m(Dbm::new(-85.0), 1_000.0).is_none());
    }

    #[test]
    fn backscatter_suffers_double_path_loss() {
        let pl = FreeSpace::new(Hertz::from_ghz(2.4));
        let active = LinkBudget::builder()
            .tx_power(Dbm::new(20.0))
            .frequency(Hertz::from_ghz(2.4))
            .path_loss(pl)
            .build()
            .unwrap();
        let bb = BackscatterBudget::new(Dbm::new(20.0), pl, Decibel::new(0.0)).unwrap();
        // Same total 10 m "distance": active direct vs 5 m + 5 m reflected.
        let direct = active.received_power(10.0);
        let reflected = bb.received_power(5.0, 5.0);
        assert!(
            reflected.value() < direct.value() - 20.0,
            "double path loss should cost dearly: direct={direct}, reflected={reflected}"
        );
    }

    #[test]
    fn backscatter_rejects_negative_tag_loss() {
        let pl = FreeSpace::new(Hertz::from_ghz(2.4));
        assert!(BackscatterBudget::new(Dbm::new(20.0), pl, Decibel::new(-1.0)).is_err());
    }

    #[test]
    fn cancellation_improves_sinr() {
        let pl = LogDistance::open_hall_2_4ghz().unwrap();
        let bb = BackscatterBudget::new(Dbm::new(20.0), pl, Decibel::new(8.0)).unwrap();
        let noise = NoiseModel::ieee80211_20mhz().unwrap();
        let weak = bb.sinr_after_cancellation(2.0, 5.0, 6.0, Decibel::new(20.0), &noise);
        let strong = bb.sinr_after_cancellation(2.0, 5.0, 6.0, Decibel::new(80.0), &noise);
        assert!(strong.value() > weak.value() + 10.0);
    }

    #[test]
    fn power_at_tag_supports_harvesting_analysis() {
        let pl = FreeSpace::new(Hertz::from_ghz(2.4));
        let bb = BackscatterBudget::new(Dbm::new(30.0), pl, Decibel::new(8.0)).unwrap();
        // 1 m from a 1 W exciter the tag sees about -10 dBm.
        let at_tag = bb.power_at_tag(1.0);
        assert!((at_tag.value() - (30.0 - 40.05)).abs() < 0.1);
    }
}
