//! Large-scale path-loss models.
//!
//! All models map a transmitter–receiver distance (metres) to an attenuation
//! in [`Decibel`]. Distances below each model's reference distance are
//! clamped to it — path-loss formulas are not meaningful in the reactive
//! near field, and clamping keeps attenuation monotone and finite.

use zeiot_core::error::{require_positive, Result};
use zeiot_core::units::{Decibel, Hertz};

/// A large-scale path-loss model: attenuation as a function of distance.
///
/// Implementations must be monotone non-decreasing in distance at and
/// beyond their reference distance (property-tested in this module).
pub trait PathLoss {
    /// Attenuation over `distance_m` metres.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `distance_m` is negative or NaN.
    fn loss(&self, distance_m: f64) -> Decibel;

    /// The reference distance in metres below which `loss` is clamped.
    fn reference_distance_m(&self) -> f64 {
        1.0
    }
}

/// Free-space (Friis) path loss.
///
/// `L(d) = 20 log10(d) + 20 log10(f) − 147.55 dB`.
///
/// # Example
///
/// ```
/// use zeiot_rf::pathloss::{FreeSpace, PathLoss};
/// use zeiot_core::units::Hertz;
///
/// let fs = FreeSpace::new(Hertz::from_ghz(2.4));
/// // 2.4 GHz at 1 m is almost exactly 40 dB.
/// assert!((fs.loss(1.0).value() - 40.05).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreeSpace {
    frequency: Hertz,
}

impl FreeSpace {
    /// Creates a free-space model at carrier frequency `frequency`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn new(frequency: Hertz) -> Self {
        assert!(frequency.value() > 0.0, "frequency must be positive");
        Self { frequency }
    }

    /// The carrier frequency.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }
}

impl PathLoss for FreeSpace {
    fn loss(&self, distance_m: f64) -> Decibel {
        assert!(
            distance_m.is_finite() && distance_m >= 0.0,
            "distance must be finite and non-negative, got {distance_m}"
        );
        let d = distance_m.max(self.reference_distance_m());
        let f = self.frequency.value();
        Decibel::new(20.0 * d.log10() + 20.0 * f.log10() - 147.55)
    }
}

/// Log-distance path loss: free-space up to a reference distance, then a
/// configurable exponent.
///
/// `L(d) = L(d0) + 10 n log10(d / d0)`.
///
/// The exponent `n` is ≈2 in free space, 2.7–4 indoors with obstructions.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::pathloss::{LogDistance, PathLoss};
///
/// let model = LogDistance::indoor_2_4ghz()?;
/// assert!(model.loss(10.0) > model.loss(5.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    reference_loss_db: f64,
    reference_distance_m: f64,
    exponent: f64,
}

impl LogDistance {
    /// Creates a log-distance model.
    ///
    /// # Errors
    ///
    /// Returns an error if `reference_distance_m` or `exponent` is not
    /// strictly positive, or `reference_loss_db` is not finite.
    pub fn new(reference_loss_db: f64, reference_distance_m: f64, exponent: f64) -> Result<Self> {
        let reference_loss_db =
            zeiot_core::error::require_finite("reference_loss_db", reference_loss_db)?;
        let reference_distance_m = require_positive("reference_distance_m", reference_distance_m)?;
        let exponent = require_positive("exponent", exponent)?;
        Ok(Self {
            reference_loss_db,
            reference_distance_m,
            exponent,
        })
    }

    /// A typical 2.4 GHz indoor profile: 40 dB at 1 m, exponent 3.0
    /// (furnished office with people).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`LogDistance::new`].
    pub fn indoor_2_4ghz() -> Result<Self> {
        Self::new(40.05, 1.0, 3.0)
    }

    /// A 2.4 GHz open-hall profile: 40 dB at 1 m, exponent 2.2 (the
    /// tens-of-metres Wi-Fi backscatter setting from paper §I).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`LogDistance::new`].
    pub fn open_hall_2_4ghz() -> Result<Self> {
        Self::new(40.05, 1.0, 2.2)
    }

    /// The path-loss exponent `n`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl PathLoss for LogDistance {
    fn loss(&self, distance_m: f64) -> Decibel {
        assert!(
            distance_m.is_finite() && distance_m >= 0.0,
            "distance must be finite and non-negative, got {distance_m}"
        );
        let d = distance_m.max(self.reference_distance_m);
        Decibel::new(
            self.reference_loss_db + 10.0 * self.exponent * (d / self.reference_distance_m).log10(),
        )
    }

    fn reference_distance_m(&self) -> f64 {
        self.reference_distance_m
    }
}

/// Two-ray ground-reflection model: free-space up to the crossover
/// distance, `40 log10(d) − 20 log10(ht·hr)` beyond it.
///
/// Captures the steeper (n = 4) roll-off of long outdoor links, relevant to
/// the paper's outdoor scenarios (wild-animal intrusion, sloping lands).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::pathloss::{TwoRayGround, PathLoss};
/// use zeiot_core::units::Hertz;
///
/// let model = TwoRayGround::new(Hertz::from_ghz(2.4), 1.5, 1.5)?;
/// // Beyond the crossover the slope is 40 dB/decade.
/// let l1 = model.loss(1_000.0).value();
/// let l2 = model.loss(10_000.0).value();
/// assert!((l2 - l1 - 40.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoRayGround {
    free_space: FreeSpace,
    tx_height_m: f64,
    rx_height_m: f64,
    crossover_m: f64,
}

impl TwoRayGround {
    /// Creates a two-ray model with antenna heights in metres.
    ///
    /// # Errors
    ///
    /// Returns an error if either height is not strictly positive.
    pub fn new(frequency: Hertz, tx_height_m: f64, rx_height_m: f64) -> Result<Self> {
        let tx_height_m = require_positive("tx_height_m", tx_height_m)?;
        let rx_height_m = require_positive("rx_height_m", rx_height_m)?;
        let wavelength = frequency.wavelength_m();
        // Standard crossover: 4 π ht hr / λ.
        let crossover_m = 4.0 * std::f64::consts::PI * tx_height_m * rx_height_m / wavelength;
        Ok(Self {
            free_space: FreeSpace::new(frequency),
            tx_height_m,
            rx_height_m,
            crossover_m,
        })
    }

    /// The crossover distance where the model switches from free-space to
    /// fourth-power roll-off.
    pub fn crossover_m(&self) -> f64 {
        self.crossover_m
    }
}

impl PathLoss for TwoRayGround {
    fn loss(&self, distance_m: f64) -> Decibel {
        assert!(
            distance_m.is_finite() && distance_m >= 0.0,
            "distance must be finite and non-negative, got {distance_m}"
        );
        let d = distance_m.max(self.reference_distance_m());
        if d <= self.crossover_m {
            // Continuity at the crossover is guaranteed by construction of
            // the two-ray formula; use free space below.
            self.free_space.loss(d)
        } else {
            let base = self.free_space.loss(self.crossover_m).value();
            // 40 dB/decade beyond the crossover, anchored for continuity.
            Decibel::new(base + 40.0 * (d / self.crossover_m).log10())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_matches_friis_at_known_points() {
        let fs = FreeSpace::new(Hertz::from_ghz(2.4));
        // Friis at 2.4 GHz: 40.05 dB at 1 m, +20 dB per decade.
        assert!((fs.loss(1.0).value() - 40.05).abs() < 0.05);
        assert!((fs.loss(10.0).value() - 60.05).abs() < 0.05);
        assert!((fs.loss(100.0).value() - 80.05).abs() < 0.05);
    }

    #[test]
    fn free_space_clamps_below_reference() {
        let fs = FreeSpace::new(Hertz::from_ghz(2.4));
        assert_eq!(fs.loss(0.0), fs.loss(1.0));
        assert_eq!(fs.loss(0.5), fs.loss(1.0));
    }

    #[test]
    fn log_distance_slope_matches_exponent() {
        let m = LogDistance::new(40.0, 1.0, 3.0).unwrap();
        let per_decade = m.loss(100.0).value() - m.loss(10.0).value();
        assert!((per_decade - 30.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_rejects_bad_parameters() {
        assert!(LogDistance::new(f64::NAN, 1.0, 2.0).is_err());
        assert!(LogDistance::new(40.0, 0.0, 2.0).is_err());
        assert!(LogDistance::new(40.0, 1.0, -2.0).is_err());
    }

    #[test]
    fn two_ray_continuous_at_crossover() {
        let m = TwoRayGround::new(Hertz::from_ghz(2.4), 1.5, 1.5).unwrap();
        let d = m.crossover_m();
        let below = m.loss(d * 0.999).value();
        let above = m.loss(d * 1.001).value();
        assert!((below - above).abs() < 0.1, "below={below} above={above}");
    }

    #[test]
    fn two_ray_steeper_than_free_space_far_out() {
        let f = Hertz::from_ghz(2.4);
        let two_ray = TwoRayGround::new(f, 1.5, 1.5).unwrap();
        let fs = FreeSpace::new(f);
        let d = two_ray.crossover_m() * 100.0;
        assert!(two_ray.loss(d).value() > fs.loss(d).value());
    }

    #[test]
    fn models_are_monotone_in_distance() {
        let models: Vec<Box<dyn PathLoss>> = vec![
            Box::new(FreeSpace::new(Hertz::from_ghz(2.4))),
            Box::new(LogDistance::indoor_2_4ghz().unwrap()),
            Box::new(TwoRayGround::new(Hertz::from_ghz(2.4), 1.5, 1.5).unwrap()),
        ];
        for m in &models {
            let mut prev = f64::NEG_INFINITY;
            for i in 0..400 {
                let d = 0.5 + i as f64 * 2.5;
                let l = m.loss(d).value();
                assert!(l >= prev - 1e-9, "non-monotone at d={d}");
                prev = l;
            }
        }
    }

    #[test]
    #[should_panic]
    fn negative_distance_panics() {
        let fs = FreeSpace::new(Hertz::from_ghz(2.4));
        let _ = fs.loss(-1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn log_distance_monotone(
            d1 in 0.1f64..1_000.0,
            d2 in 0.1f64..1_000.0,
            n in 1.5f64..5.0,
        ) {
            let m = LogDistance::new(40.0, 1.0, n).unwrap();
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(m.loss(lo).value() <= m.loss(hi).value() + 1e-9);
        }

        #[test]
        fn free_space_loss_is_finite(d in 0.0f64..1.0e6) {
            let fs = FreeSpace::new(Hertz::from_ghz(2.4));
            prop_assert!(fs.loss(d).value().is_finite());
        }

        #[test]
        fn two_ray_never_below_free_space_beyond_crossover(d in 1.0f64..1.0e5) {
            let f = Hertz::from_ghz(2.4);
            let tr = TwoRayGround::new(f, 1.5, 1.5).unwrap();
            let fs = FreeSpace::new(f);
            if d > tr.crossover_m() {
                prop_assert!(tr.loss(d).value() >= fs.loss(d).value() - 0.1);
            }
        }
    }
}
