//! Bit- and packet-error models per modulation.
//!
//! The MAC experiments (E3) and link-range experiments (E7) need the
//! mapping SNR → BER → PER for the modulations the paper's systems use:
//! 802.15.4 O-QPSK with DSSS spreading gain, 802.11b DSSS, 802.11g OFDM
//! BPSK/QPSK, and the non-coherent OOK that simple backscatter tags
//! implement by switching antenna impedance.

use zeiot_core::error::{require_nonzero_usize, require_positive, Result};
use zeiot_core::units::Decibel;

/// Complementary error function (Abramowitz & Stegun 7.1.26, max abs error
/// 1.5e-7) — `std` does not expose `erfc`.
pub fn erfc(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x_abs * x_abs).exp();
    1.0 - sign * erf
}

/// The Gaussian Q-function `Q(x) = erfc(x/√2)/2`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Modulation schemes used across the paper's systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Coherent BPSK (802.11g OFDM lowest rate, per-subcarrier).
    Bpsk,
    /// Coherent QPSK.
    Qpsk,
    /// IEEE 802.15.4 O-QPSK with direct-sequence spreading (2 Mchip/s,
    /// 250 kbit/s): QPSK BER evaluated at SNR boosted by the ~9 dB
    /// spreading gain. The paper (§IV.A) picks 802.15.4 for backscatter
    /// exactly because of this gain.
    OqpskDsss802154,
    /// Non-coherent on-off keying, the modulation a minimal backscatter
    /// tag realizes by toggling its RF switch.
    NonCoherentOok,
}

impl Modulation {
    /// Bit error probability at the given SNR (per-bit, AWGN).
    pub fn ber(&self, snr: Decibel) -> f64 {
        let gamma = snr.to_linear();
        let ber = match self {
            Modulation::Bpsk => q_function((2.0 * gamma).sqrt()),
            Modulation::Qpsk => q_function(gamma.sqrt()),
            Modulation::OqpskDsss802154 => {
                // 8x chip spreading ≈ 9 dB processing gain.
                let spread = gamma * 8.0;
                q_function(spread.sqrt())
            }
            Modulation::NonCoherentOok => 0.5 * (-gamma / 2.0).exp(),
        };
        ber.clamp(0.0, 0.5)
    }

    /// Nominal data rate in bits per second, used for airtime accounting.
    pub fn bit_rate_bps(&self) -> f64 {
        match self {
            Modulation::Bpsk => 6.0e6,
            Modulation::Qpsk => 12.0e6,
            Modulation::OqpskDsss802154 => 250.0e3,
            Modulation::NonCoherentOok => 50.0e3,
        }
    }
}

/// Maps BER to packet error rate for a packet of `payload_bits` assuming
/// independent bit errors (standard for AWGN-level analysis).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::ber::{Modulation, PacketErrorModel};
/// use zeiot_core::units::Decibel;
///
/// let model = PacketErrorModel::new(Modulation::OqpskDsss802154, 1024)?;
/// let good = model.per(Decibel::new(10.0));
/// let bad = model.per(Decibel::new(-5.0));
/// assert!(good < 0.01);
/// assert!(bad > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketErrorModel {
    modulation: Modulation,
    payload_bits: usize,
}

impl PacketErrorModel {
    /// Creates a PER model for packets of `payload_bits` bits.
    ///
    /// # Errors
    ///
    /// Returns an error if `payload_bits` is zero.
    pub fn new(modulation: Modulation, payload_bits: usize) -> Result<Self> {
        let payload_bits = require_nonzero_usize("payload_bits", payload_bits)?;
        Ok(Self {
            modulation,
            payload_bits,
        })
    }

    /// The modulation this model assumes.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// The packet length in bits.
    pub fn payload_bits(&self) -> usize {
        self.payload_bits
    }

    /// Packet error rate at the given SNR.
    pub fn per(&self, snr: Decibel) -> f64 {
        let ber = self.modulation.ber(snr);
        1.0 - (1.0 - ber).powi(self.payload_bits as i32)
    }

    /// Expected number of transmissions until success under independent
    /// retries (geometric mean `1/(1-PER)`); `f64::INFINITY` if the link
    /// cannot succeed.
    pub fn expected_transmissions(&self, snr: Decibel) -> f64 {
        let per = self.per(snr);
        if per >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - per)
        }
    }

    /// Airtime of one packet at the modulation's nominal bit rate, in
    /// seconds.
    pub fn airtime_secs(&self) -> f64 {
        self.payload_bits as f64 / self.modulation.bit_rate_bps()
    }
}

/// Effective SNR degradation caused by interference: adds the interferer
/// power to the noise (SINR). Inputs are linear ratios relative to the
/// same noise floor.
///
/// # Panics
///
/// Panics if `snr_db` or `inr_db` values are not finite.
pub fn sinr(snr_db: Decibel, interference_to_noise_db: Decibel) -> Decibel {
    let s = snr_db.to_linear();
    let i = interference_to_noise_db.to_linear();
    assert!(s.is_finite() && i.is_finite(), "non-finite SINR inputs");
    Decibel::from_linear((s / (1.0 + i)).max(1e-12))
}

/// Required SNR (dB) for a target packet success rate; solved by bisection.
///
/// # Panics
///
/// Panics if `target_success` is not in `(0, 1)`.
pub fn required_snr(model: &PacketErrorModel, target_success: f64) -> Decibel {
    assert!(
        target_success > 0.0 && target_success < 1.0,
        "target_success must be in (0,1), got {target_success}"
    );
    let mut lo = -30.0;
    let mut hi = 60.0;
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        let success = 1.0 - model.per(Decibel::new(mid));
        if success < target_success {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Decibel::new(hi)
}

/// A convenience wrapper exposing `require_positive` semantics for
/// externally computed SNR thresholds used in link planning.
///
/// # Errors
///
/// Returns an error if `snr_db` is not strictly positive.
pub fn validated_snr_threshold(snr_db: f64) -> Result<Decibel> {
    let v = require_positive("snr_db", snr_db)?;
    Ok(Decibel::new(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-9);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-5);
        assert!((q_function(3.0) - 0.001_349_9).abs() < 1e-6);
    }

    #[test]
    fn bpsk_ber_at_reference_points() {
        // BPSK: BER = Q(sqrt(2γ)). At Eb/N0 = 9.6 dB, BER ≈ 1e-5.
        let ber = Modulation::Bpsk.ber(Decibel::new(9.6));
        assert!(ber < 2e-5 && ber > 2e-6, "ber={ber}");
    }

    #[test]
    fn dsss_outperforms_plain_qpsk() {
        for snr in [-5.0, 0.0, 5.0] {
            let d = Decibel::new(snr);
            assert!(Modulation::OqpskDsss802154.ber(d) < Modulation::Qpsk.ber(d));
        }
    }

    #[test]
    fn ook_is_worst_at_moderate_snr() {
        let d = Decibel::new(8.0);
        let ook = Modulation::NonCoherentOok.ber(d);
        let bpsk = Modulation::Bpsk.ber(d);
        assert!(ook > bpsk);
    }

    #[test]
    fn ber_is_monotone_decreasing_in_snr() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::OqpskDsss802154,
            Modulation::NonCoherentOok,
        ] {
            let mut prev = 1.0;
            for snr_db in -20..30 {
                let ber = m.ber(Decibel::new(snr_db as f64));
                assert!(ber <= prev + 1e-12, "{m:?} at {snr_db}");
                prev = ber;
            }
        }
    }

    #[test]
    fn per_increases_with_packet_length() {
        let short = PacketErrorModel::new(Modulation::Qpsk, 128).unwrap();
        let long = PacketErrorModel::new(Modulation::Qpsk, 8_192).unwrap();
        let snr = Decibel::new(8.0);
        assert!(long.per(snr) > short.per(snr));
    }

    #[test]
    fn per_bounds() {
        let m = PacketErrorModel::new(Modulation::Bpsk, 1_000).unwrap();
        assert!(m.per(Decibel::new(30.0)) < 1e-9);
        assert!(m.per(Decibel::new(-20.0)) > 0.999);
    }

    #[test]
    fn expected_transmissions_at_high_snr_is_one() {
        let m = PacketErrorModel::new(Modulation::OqpskDsss802154, 1_024).unwrap();
        let n = m.expected_transmissions(Decibel::new(20.0));
        assert!((n - 1.0).abs() < 1e-6);
    }

    #[test]
    fn airtime_matches_rate() {
        let m = PacketErrorModel::new(Modulation::OqpskDsss802154, 250_000).unwrap();
        assert!((m.airtime_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sinr_reduces_effective_snr() {
        let clean = sinr(Decibel::new(20.0), Decibel::new(-30.0));
        let jammed = sinr(Decibel::new(20.0), Decibel::new(20.0));
        assert!((clean.value() - 20.0).abs() < 0.01);
        assert!(jammed.value() < 0.1);
    }

    #[test]
    fn required_snr_achieves_target() {
        let m = PacketErrorModel::new(Modulation::Qpsk, 1_024).unwrap();
        let snr = required_snr(&m, 0.99);
        let success = 1.0 - m.per(snr);
        assert!((0.99..0.9999).contains(&success), "success={success}");
    }

    #[test]
    fn zero_length_packets_rejected() {
        assert!(PacketErrorModel::new(Modulation::Bpsk, 0).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ber_in_valid_range(snr in -40.0f64..40.0) {
            for m in [
                Modulation::Bpsk,
                Modulation::Qpsk,
                Modulation::OqpskDsss802154,
                Modulation::NonCoherentOok,
            ] {
                let ber = m.ber(Decibel::new(snr));
                prop_assert!((0.0..=0.5).contains(&ber));
            }
        }

        #[test]
        fn per_monotone_in_snr(
            s1 in -20.0f64..30.0,
            s2 in -20.0f64..30.0,
            bits in 1usize..10_000,
        ) {
            let m = PacketErrorModel::new(Modulation::Qpsk, bits).unwrap();
            let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(m.per(Decibel::new(hi)) <= m.per(Decibel::new(lo)) + 1e-12);
        }

        #[test]
        fn erfc_complements(x in -4.0f64..4.0) {
            // erfc(x) + erfc(-x) = 2.
            prop_assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-6);
        }
    }
}
