//! Obstacle-aware propagation.
//!
//! Paper §III.B asks for design support driven by "(a) the 3D map and
//! obstacle information of a target IoT device network". This module
//! provides the obstacle part: a floor plan of attenuating wall segments,
//! and the extra path loss a link suffers for each wall it crosses —
//! composable with any [`crate::pathloss::PathLoss`] model.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{require_non_negative, Result};
use zeiot_core::geometry::Point2;
use zeiot_core::units::Decibel;

/// One attenuating wall segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// One endpoint.
    pub a: Point2,
    /// The other endpoint.
    pub b: Point2,
    /// Attenuation when a link crosses this wall (dB). Typical 2.4 GHz
    /// values: drywall ≈ 3 dB, brick ≈ 8 dB, concrete ≈ 12–15 dB.
    pub attenuation_db: f64,
}

impl Wall {
    /// Creates a wall.
    ///
    /// # Errors
    ///
    /// Returns an error if the attenuation is negative.
    pub fn new(a: Point2, b: Point2, attenuation_db: f64) -> Result<Self> {
        require_non_negative("attenuation_db", attenuation_db)?;
        Ok(Self {
            a,
            b,
            attenuation_db,
        })
    }
}

/// A floor plan of walls.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::obstacle::{ObstacleMap, Wall};
/// use zeiot_core::geometry::Point2;
///
/// // One concrete wall across the middle of the room.
/// let map = ObstacleMap::new(vec![Wall::new(
///     Point2::new(5.0, 0.0),
///     Point2::new(5.0, 10.0),
///     12.0,
/// )?]);
/// let left = Point2::new(1.0, 5.0);
/// let right = Point2::new(9.0, 5.0);
/// assert_eq!(map.attenuation(left, right).value(), 12.0);
/// let same_side = Point2::new(3.0, 2.0);
/// assert_eq!(map.attenuation(left, same_side).value(), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ObstacleMap {
    walls: Vec<Wall>,
}

impl ObstacleMap {
    /// Creates a map from wall segments.
    pub fn new(walls: Vec<Wall>) -> Self {
        Self { walls }
    }

    /// An empty (obstacle-free) map.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of walls.
    pub fn len(&self) -> usize {
        self.walls.len()
    }

    /// Whether the map has no walls.
    pub fn is_empty(&self) -> bool {
        self.walls.is_empty()
    }

    /// The walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Adds a wall.
    pub fn push(&mut self, wall: Wall) {
        self.walls.push(wall);
    }

    /// Walls crossed by the open segment `p1`–`p2`.
    pub fn crossings(&self, p1: Point2, p2: Point2) -> usize {
        self.walls
            .iter()
            .filter(|w| segments_intersect(p1, p2, w.a, w.b))
            .count()
    }

    /// Total obstacle attenuation along the `p1`–`p2` link.
    pub fn attenuation(&self, p1: Point2, p2: Point2) -> Decibel {
        let total: f64 = self
            .walls
            .iter()
            .filter(|w| segments_intersect(p1, p2, w.a, w.b))
            .map(|w| w.attenuation_db)
            .sum();
        Decibel::new(total)
    }

    /// A standard four-room office floor plan spanning `width × height`
    /// metres: a cross of interior drywall (4 dB) with door gaps in the
    /// middle of each wing.
    pub fn four_rooms(width_m: f64, height_m: f64) -> Self {
        assert!(
            width_m > 0.0 && height_m > 0.0,
            "dimensions must be positive"
        );
        let (cx, cy) = (width_m / 2.0, height_m / 2.0);
        let door = 1.0; // 1 m door gap
        let att = 4.0;
        let wall = |a: Point2, b: Point2| Wall {
            a,
            b,
            attenuation_db: att,
        };
        Self::new(vec![
            // Vertical wall, split by a door at the lower-middle.
            wall(Point2::new(cx, 0.0), Point2::new(cx, cy / 2.0 - door / 2.0)),
            wall(Point2::new(cx, cy / 2.0 + door / 2.0), Point2::new(cx, cy)),
            wall(
                Point2::new(cx, cy),
                Point2::new(cx, cy + cy / 2.0 - door / 2.0),
            ),
            wall(
                Point2::new(cx, cy + cy / 2.0 + door / 2.0),
                Point2::new(cx, height_m),
            ),
            // Horizontal wall, split likewise.
            wall(Point2::new(0.0, cy), Point2::new(cx / 2.0 - door / 2.0, cy)),
            wall(Point2::new(cx / 2.0 + door / 2.0, cy), Point2::new(cx, cy)),
            wall(
                Point2::new(cx, cy),
                Point2::new(cx + cx / 2.0 - door / 2.0, cy),
            ),
            wall(
                Point2::new(cx + cx / 2.0 + door / 2.0, cy),
                Point2::new(width_m, cy),
            ),
        ])
    }
}

/// Proper segment intersection (shared endpoints and collinear touching
/// count as crossing — a link grazing a wall still passes through it).
fn segments_intersect(p1: Point2, p2: Point2, q1: Point2, q2: Point2) -> bool {
    fn orient(a: Point2, b: Point2, c: Point2) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }
    fn on_segment(a: Point2, b: Point2, p: Point2) -> bool {
        p.x >= a.x.min(b.x) - 1e-12
            && p.x <= a.x.max(b.x) + 1e-12
            && p.y >= a.y.min(b.y) - 1e-12
            && p.y <= a.y.max(b.y) + 1e-12
    }
    let d1 = orient(q1, q2, p1);
    let d2 = orient(q1, q2, p2);
    let d3 = orient(p1, p2, q1);
    let d4 = orient(p1, p2, q2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1.abs() < 1e-12 && on_segment(q1, q2, p1))
        || (d2.abs() < 1e-12 && on_segment(q1, q2, p2))
        || (d3.abs() < 1e-12 && on_segment(p1, p2, q1))
        || (d4.abs() < 1e-12 && on_segment(p1, p2, q2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall_x5() -> Wall {
        Wall::new(Point2::new(5.0, 0.0), Point2::new(5.0, 10.0), 10.0).unwrap()
    }

    #[test]
    fn crossing_detection() {
        let map = ObstacleMap::new(vec![wall_x5()]);
        // Crosses.
        assert_eq!(
            map.crossings(Point2::new(0.0, 5.0), Point2::new(10.0, 5.0)),
            1
        );
        // Parallel, same side.
        assert_eq!(
            map.crossings(Point2::new(0.0, 1.0), Point2::new(4.0, 9.0)),
            0
        );
        // Beyond the wall's extent.
        assert_eq!(
            map.crossings(Point2::new(0.0, 12.0), Point2::new(10.0, 12.0)),
            0
        );
    }

    #[test]
    fn attenuation_sums_over_walls() {
        let map = ObstacleMap::new(vec![
            wall_x5(),
            Wall::new(Point2::new(7.0, 0.0), Point2::new(7.0, 10.0), 4.0).unwrap(),
        ]);
        let a = Point2::new(0.0, 5.0);
        let b = Point2::new(10.0, 5.0);
        assert_eq!(map.attenuation(a, b).value(), 14.0);
        let c = Point2::new(6.0, 5.0);
        assert_eq!(map.attenuation(a, c).value(), 10.0);
    }

    #[test]
    fn touching_endpoint_counts_as_crossing() {
        let map = ObstacleMap::new(vec![wall_x5()]);
        // Link endpoint exactly on the wall.
        assert_eq!(
            map.crossings(Point2::new(5.0, 5.0), Point2::new(9.0, 5.0)),
            1
        );
    }

    #[test]
    fn four_rooms_plan_behaves() {
        let map = ObstacleMap::four_rooms(20.0, 20.0);
        assert_eq!(map.len(), 8);
        // Diagonal across rooms crosses both wings of the cross.
        let tl = Point2::new(2.0, 18.0);
        let br = Point2::new(18.0, 2.0);
        assert!(map.crossings(tl, br) >= 2);
        // Through a door: the vertical wall's lower door is at y = 5.
        let left = Point2::new(8.0, 5.0);
        let right = Point2::new(12.0, 5.0);
        assert_eq!(map.crossings(left, right), 0);
    }

    #[test]
    fn empty_map_is_transparent() {
        let map = ObstacleMap::empty();
        assert!(map.is_empty());
        assert_eq!(
            map.attenuation(Point2::new(0.0, 0.0), Point2::new(100.0, 100.0))
                .value(),
            0.0
        );
    }

    #[test]
    fn negative_attenuation_rejected() {
        assert!(Wall::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), -1.0).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn crossings_symmetric(
            x1 in -10.0f64..20.0, y1 in -10.0f64..20.0,
            x2 in -10.0f64..20.0, y2 in -10.0f64..20.0,
        ) {
            let map = ObstacleMap::four_rooms(10.0, 10.0);
            let a = Point2::new(x1, y1);
            let b = Point2::new(x2, y2);
            prop_assert_eq!(map.crossings(a, b), map.crossings(b, a));
        }

        #[test]
        fn attenuation_non_negative(
            x1 in -10.0f64..20.0, y1 in -10.0f64..20.0,
            x2 in -10.0f64..20.0, y2 in -10.0f64..20.0,
        ) {
            let map = ObstacleMap::four_rooms(10.0, 10.0);
            let v = map.attenuation(Point2::new(x1, y1), Point2::new(x2, y2)).value();
            prop_assert!(v >= 0.0);
        }
    }
}
