//! Human-body shadowing.
//!
//! The paper's wireless-sensing systems (§IV.B) all exploit the same
//! physical fact: a human body crossing or standing near a 2.4 GHz link
//! attenuates it by several dB. This module models that attenuation as a
//! function of how many bodies obstruct the first Fresnel zone of a link,
//! with diminishing marginal attenuation (bodies behind bodies shadow less)
//! — matching the saturation observed in crowd-RSSI measurement campaigns.

use zeiot_core::error::{require_non_negative, require_positive, Result};
use zeiot_core::geometry::Point2;
use zeiot_core::units::Decibel;

/// Attenuation model for human bodies obstructing a radio link.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::body::BodyShadowing;
/// use zeiot_core::geometry::Point2;
///
/// let model = BodyShadowing::default_2_4ghz()?;
/// let tx = Point2::new(0.0, 0.0);
/// let rx = Point2::new(10.0, 0.0);
/// // One person standing right on the line of sight.
/// let people = vec![Point2::new(5.0, 0.1)];
/// let loss = model.attenuation(tx, rx, &people);
/// assert!(loss.value() > 1.0);
/// // Nobody near the link: negligible loss.
/// let empty: Vec<Point2> = vec![];
/// assert!(model.attenuation(tx, rx, &empty).value() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyShadowing {
    per_body_db: f64,
    saturation_db: f64,
    obstruction_radius_m: f64,
}

impl BodyShadowing {
    /// Creates a body-shadowing model.
    ///
    /// * `per_body_db` — attenuation contributed by the first obstructing
    ///   body;
    /// * `saturation_db` — asymptotic total attenuation as bodies pile up;
    /// * `obstruction_radius_m` — how close to the line of sight a body
    ///   must stand to obstruct (roughly the first Fresnel-zone radius,
    ///   ~0.3–0.6 m for indoor 2.4 GHz links).
    ///
    /// # Errors
    ///
    /// Returns an error if `per_body_db` is negative, `saturation_db` is
    /// not strictly positive, or the radius is not strictly positive.
    pub fn new(per_body_db: f64, saturation_db: f64, obstruction_radius_m: f64) -> Result<Self> {
        let per_body_db = require_non_negative("per_body_db", per_body_db)?;
        let saturation_db = require_positive("saturation_db", saturation_db)?;
        let obstruction_radius_m = require_positive("obstruction_radius_m", obstruction_radius_m)?;
        Ok(Self {
            per_body_db,
            saturation_db,
            obstruction_radius_m,
        })
    }

    /// Literature-typical values for indoor 2.4 GHz: 3 dB per body,
    /// saturating at 15 dB, 0.55 m obstruction radius (the first
    /// Fresnel-zone radius √(λd/4) ≈ 0.56 m at mid-span of a 10 m link).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`BodyShadowing::new`].
    pub fn default_2_4ghz() -> Result<Self> {
        Self::new(3.0, 15.0, 0.55)
    }

    /// Attenuation from the first obstructing body.
    pub fn per_body_db(&self) -> f64 {
        self.per_body_db
    }

    /// Counts how many of `people` obstruct the `tx`–`rx` segment (within
    /// the obstruction radius of it, between the endpoints).
    pub fn obstructing_count(&self, tx: Point2, rx: Point2, people: &[Point2]) -> usize {
        people
            .iter()
            .filter(|&&p| self.distance_to_segment(tx, rx, p) <= self.obstruction_radius_m)
            .count()
    }

    /// Total attenuation caused by `people` on the `tx`–`rx` link.
    ///
    /// Attenuation saturates: with `k` obstructing bodies the loss is
    /// `S·(1 − exp(−a·k/S))` where `a` is the per-body attenuation and `S`
    /// the saturation ceiling. The first body contributes ≈`a` dB; later
    /// bodies progressively less.
    pub fn attenuation(&self, tx: Point2, rx: Point2, people: &[Point2]) -> Decibel {
        let k = self.obstructing_count(tx, rx, people) as f64;
        self.attenuation_for_count(k)
    }

    /// The saturating attenuation for an obstructing-body count directly.
    pub fn attenuation_for_count(&self, count: f64) -> Decibel {
        assert!(count >= 0.0, "count must be non-negative");
        let s = self.saturation_db;
        let a = self.per_body_db;
        Decibel::new(s * (1.0 - (-a * count / s).exp()))
    }

    fn distance_to_segment(&self, a: Point2, b: Point2, p: Point2) -> f64 {
        let len2 = a.distance_squared(b);
        if len2 == 0.0 {
            return a.distance(p);
        }
        let t = (((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len2).clamp(0.0, 1.0);
        let proj = Point2::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
        proj.distance(p)
    }
}

/// A fixed attenuation applied when a link crosses a structural boundary,
/// such as the inter-car doors in the train-congestion scenario (paper
/// §IV.B: "doors between train cars significantly attenuate the signal").
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_rf::body::BoundaryAttenuation;
///
/// let doors = BoundaryAttenuation::new(12.0)?;
/// assert_eq!(doors.loss_for_crossings(0).value(), 0.0);
/// assert_eq!(doors.loss_for_crossings(2).value(), 24.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryAttenuation {
    per_crossing_db: f64,
}

impl BoundaryAttenuation {
    /// Creates a boundary-attenuation model of `per_crossing_db` per
    /// crossed boundary.
    ///
    /// # Errors
    ///
    /// Returns an error if `per_crossing_db` is negative.
    pub fn new(per_crossing_db: f64) -> Result<Self> {
        let per_crossing_db = require_non_negative("per_crossing_db", per_crossing_db)?;
        Ok(Self { per_crossing_db })
    }

    /// Attenuation per crossing.
    pub fn per_crossing_db(&self) -> f64 {
        self.per_crossing_db
    }

    /// Total attenuation for a link crossing `crossings` boundaries.
    pub fn loss_for_crossings(&self, crossings: usize) -> Decibel {
        Decibel::new(self.per_crossing_db * crossings as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BodyShadowing {
        BodyShadowing::default_2_4ghz().unwrap()
    }

    #[test]
    fn no_people_no_loss() {
        let m = model();
        let loss = m.attenuation(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0), &[]);
        assert_eq!(loss.value(), 0.0);
    }

    #[test]
    fn person_off_the_line_does_not_obstruct() {
        let m = model();
        let tx = Point2::new(0.0, 0.0);
        let rx = Point2::new(10.0, 0.0);
        let far = vec![Point2::new(5.0, 3.0)];
        assert_eq!(m.obstructing_count(tx, rx, &far), 0);
    }

    #[test]
    fn person_behind_endpoint_does_not_obstruct() {
        let m = model();
        let tx = Point2::new(0.0, 0.0);
        let rx = Point2::new(10.0, 0.0);
        let behind = vec![Point2::new(-2.0, 0.0), Point2::new(12.0, 0.0)];
        assert_eq!(m.obstructing_count(tx, rx, &behind), 0);
    }

    #[test]
    fn first_body_contributes_roughly_per_body_db() {
        let m = model();
        let one = m.attenuation_for_count(1.0).value();
        // S(1 − e^{−a/S}) ≈ a for a ≪ S; with a=3, S=15: 2.72 dB.
        assert!(one > 2.0 && one < 3.0, "one={one}");
    }

    #[test]
    fn attenuation_saturates() {
        let m = model();
        let many = m.attenuation_for_count(100.0).value();
        assert!(many <= 15.0 + 1e-9);
        assert!(many > 14.5);
    }

    #[test]
    fn attenuation_monotone_in_count() {
        let m = model();
        let mut prev = -1.0;
        for k in 0..30 {
            let v = m.attenuation_for_count(k as f64).value();
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn counts_multiple_obstructors() {
        let m = model();
        let tx = Point2::new(0.0, 0.0);
        let rx = Point2::new(10.0, 0.0);
        let crowd = vec![
            Point2::new(2.0, 0.1),
            Point2::new(5.0, -0.2),
            Point2::new(8.0, 0.3),
            Point2::new(5.0, 2.0), // too far off-axis
        ];
        assert_eq!(m.obstructing_count(tx, rx, &crowd), 3);
    }

    #[test]
    fn degenerate_zero_length_link() {
        let m = model();
        let p = Point2::new(1.0, 1.0);
        let near = vec![Point2::new(1.2, 1.0)];
        assert_eq!(m.obstructing_count(p, p, &near), 1);
    }

    #[test]
    fn boundary_attenuation_is_linear() {
        let doors = BoundaryAttenuation::new(12.0).unwrap();
        assert_eq!(doors.loss_for_crossings(0).value(), 0.0);
        assert_eq!(doors.loss_for_crossings(1).value(), 12.0);
        assert_eq!(doors.loss_for_crossings(3).value(), 36.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BodyShadowing::new(-1.0, 15.0, 0.4).is_err());
        assert!(BodyShadowing::new(3.0, 0.0, 0.4).is_err());
        assert!(BodyShadowing::new(3.0, 15.0, 0.0).is_err());
        assert!(BoundaryAttenuation::new(-1.0).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn attenuation_bounded_by_saturation(count in 0.0f64..1000.0) {
            let m = BodyShadowing::default_2_4ghz().unwrap();
            let v = m.attenuation_for_count(count).value();
            prop_assert!((0.0..=15.0 + 1e-9).contains(&v));
        }

        #[test]
        fn obstruction_count_never_exceeds_population(
            people in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 0..50)
        ) {
            let m = BodyShadowing::default_2_4ghz().unwrap();
            let pts: Vec<Point2> = people.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let k = m.obstructing_count(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0), &pts);
            prop_assert!(k <= pts.len());
        }
    }
}
