//! # zeiot-backscatter
//!
//! Ambient backscatter PHY and the WLAN-coexistence MAC protocol of the
//! paper's §IV.A (ref \[64\], Alim et al., WiMob 2017).
//!
//! An ambient backscatter tag cannot generate a carrier: it modulates a
//! passing signal (a Wi-Fi frame, or a dedicated continuous wave) by
//! switching its antenna impedance, at ~10 µW. The consequences this
//! crate models:
//!
//! - [`phy`] — link-level behaviour: double path loss, tag reflection
//!   loss, receiver self-interference cancellation, SNR → PER, range and
//!   throughput analysis (experiment E7);
//! - [`registry`] — the \[64\] protocol's registration step: every IoT
//!   device declares its data-acquisition cycle to the access point,
//!   which admission-controls by band-occupation time;
//! - [`mac`] — the scheduled MAC and the naive-coexistence baseline,
//!   simulated on the `zeiot-sim` engine: grants placed in WLAN gaps,
//!   dummy carrier frames when WLAN traffic is too thin, versus tags
//!   opportunistically riding (and corrupting) live WLAN frames
//!   (experiment E3).
//!
//! # Example: why coexistence needs a schedule
//!
//! ```
//! # fn main() -> Result<(), zeiot_core::ConfigError> {
//! use zeiot_backscatter::mac::{MacConfig, MacMode, simulate};
//! use zeiot_core::time::SimDuration;
//! use zeiot_core::rng::SeedRng;
//!
//! let config = MacConfig::default_with_devices(8)?;
//! let sched = simulate(&config, MacMode::Scheduled, SimDuration::from_secs(20), &mut SeedRng::new(1));
//! let naive = simulate(&config, MacMode::Naive, SimDuration::from_secs(20), &mut SeedRng::new(1));
//! assert!(sched.backscatter_delivery_ratio() > naive.backscatter_delivery_ratio());
//! assert!(sched.wlan_delivery_ratio() >= naive.wlan_delivery_ratio());
//! # Ok(())
//! # }
//! ```

pub mod mac;
pub mod phy;
pub mod registry;

pub use mac::{
    simulate_observed, simulate_with_faults, simulate_with_faults_observed,
    simulate_with_faults_traced, MacConfig, MacFaults, MacMode, MacReport,
};
pub use phy::BackscatterLink;
pub use registry::{CycleRegistry, Registration};
