//! Link-level backscatter behaviour.
//!
//! Combines the RF substrate into a single analyzable link: exciter →
//! tag → receiver with self-interference cancellation at the receiver,
//! O-QPSK/OOK error models, and range/throughput queries. This is the
//! model behind experiment E7 (throughput/PER vs distance) and the
//! energy comparisons of E8.

use zeiot_core::error::Result;
use zeiot_core::rng::SeedRng;
use zeiot_core::units::{Dbm, Decibel, Hertz};
use zeiot_rf::ber::{Modulation, PacketErrorModel};
use zeiot_rf::link::BackscatterBudget;
use zeiot_rf::noise::NoiseModel;
use zeiot_rf::pathloss::LogDistance;

/// An end-to-end ambient backscatter link.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_backscatter::phy::BackscatterLink;
///
/// let link = BackscatterLink::zigbee_testbed()?;
/// // Tag 1 m from the exciter: short tag→receiver hops work...
/// assert!(link.packet_success(1.0, 2.0, 3.0) > 0.9);
/// // ...but pushing the receiver far degrades badly.
/// assert!(link.packet_success(1.0, 60.0, 60.0) < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BackscatterLink {
    budget: BackscatterBudget<LogDistance>,
    noise: NoiseModel,
    cancellation: Decibel,
    per_model: PacketErrorModel,
}

impl BackscatterLink {
    /// Builds a link from its parts.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from the RF models.
    pub fn new(
        exciter_power: Dbm,
        path_loss: LogDistance,
        tag_loss: Decibel,
        cancellation: Decibel,
        noise: NoiseModel,
        per_model: PacketErrorModel,
    ) -> Result<Self> {
        let budget = BackscatterBudget::new(exciter_power, path_loss, tag_loss)?;
        Ok(Self {
            budget,
            noise,
            cancellation,
            per_model,
        })
    }

    /// The paper's 2.4 GHz ZigBee-backscatter testbed profile: 20 dBm
    /// continuous-wave exciter, open-hall propagation, 8 dB tag loss,
    /// 60 dB self-interference cancellation (a switch-capacity filter and
    /// orthogonal transducer as in the paper's Fig. 5 apparatus), and
    /// 802.15.4 DSSS packets of 32 bytes.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches
    /// [`BackscatterLink::new`].
    pub fn zigbee_testbed() -> Result<Self> {
        Self::new(
            Dbm::new(20.0),
            LogDistance::open_hall_2_4ghz()?,
            Decibel::new(8.0),
            Decibel::new(60.0),
            NoiseModel::ieee802154()?,
            PacketErrorModel::new(Modulation::OqpskDsss802154, 32 * 8)?,
        )
    }

    /// A Wi-Fi-excited tag read by a full-duplex access point (paper
    /// Fig. 4): 20 dBm AP, strong (70 dB) cancellation because the AP
    /// knows its own transmission, OOK tag bits.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches
    /// [`BackscatterLink::new`].
    pub fn wifi_full_duplex_ap() -> Result<Self> {
        Self::new(
            Dbm::new(20.0),
            LogDistance::open_hall_2_4ghz()?,
            Decibel::new(8.0),
            Decibel::new(70.0),
            NoiseModel::ieee80211_20mhz()?,
            PacketErrorModel::new(Modulation::NonCoherentOok, 32 * 8)?,
        )
    }

    /// The packet-error model in use.
    pub fn per_model(&self) -> &PacketErrorModel {
        &self.per_model
    }

    /// Effective SINR for given exciter→tag, tag→receiver and
    /// exciter→receiver distances (metres).
    pub fn sinr(&self, exciter_to_tag_m: f64, tag_to_rx_m: f64, exciter_to_rx_m: f64) -> Decibel {
        self.budget.sinr_after_cancellation(
            exciter_to_tag_m,
            tag_to_rx_m,
            exciter_to_rx_m,
            self.cancellation,
            &self.noise,
        )
    }

    /// Probability that one packet decodes.
    pub fn packet_success(
        &self,
        exciter_to_tag_m: f64,
        tag_to_rx_m: f64,
        exciter_to_rx_m: f64,
    ) -> f64 {
        1.0 - self
            .per_model
            .per(self.sinr(exciter_to_tag_m, tag_to_rx_m, exciter_to_rx_m))
    }

    /// Bernoulli draw of one packet delivery.
    pub fn try_deliver(
        &self,
        exciter_to_tag_m: f64,
        tag_to_rx_m: f64,
        exciter_to_rx_m: f64,
        rng: &mut SeedRng,
    ) -> bool {
        rng.chance(self.packet_success(exciter_to_tag_m, tag_to_rx_m, exciter_to_rx_m))
    }

    /// Effective goodput in bits/s at the nominal modulation rate,
    /// discounted by packet loss.
    pub fn goodput_bps(
        &self,
        exciter_to_tag_m: f64,
        tag_to_rx_m: f64,
        exciter_to_rx_m: f64,
    ) -> f64 {
        let success = self.packet_success(exciter_to_tag_m, tag_to_rx_m, exciter_to_rx_m);
        self.per_model.modulation().bit_rate_bps() * success
    }

    /// Maximum tag→receiver distance at which packet success stays at or
    /// above `target`, searched up to `max_m`. Uses the colinear
    /// exciter–tag–receiver geometry of the paper's Fig. 5 apparatus:
    /// the tag sits `exciter_to_tag_m` from the exciter and the receiver
    /// moves away on the far side, so the exciter's direct leakage also
    /// attenuates with distance.
    pub fn max_range_m(&self, exciter_to_tag_m: f64, target: f64, max_m: f64) -> Option<f64> {
        assert!((0.0..1.0).contains(&target), "target must be in [0,1)");
        let ok = |d: f64| self.packet_success(exciter_to_tag_m, d, exciter_to_tag_m + d) >= target;
        if !ok(0.5) {
            return None;
        }
        if ok(max_m) {
            return Some(max_m);
        }
        let (mut lo, mut hi) = (0.5, max_m);
        for _ in 0..100 {
            let mid = (lo + hi) / 2.0;
            if ok(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// The wavelength of the 2.4 GHz carrier, for documentation-grade
    /// geometry sanity checks.
    pub fn wavelength_m() -> f64 {
        Hertz::from_ghz(2.4).wavelength_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_degrades_with_tag_to_rx_distance() {
        let link = BackscatterLink::zigbee_testbed().unwrap();
        let mut prev = 1.1;
        for d in [1.0, 5.0, 15.0, 40.0, 100.0] {
            let s = link.packet_success(1.0, d, d);
            assert!(s <= prev + 1e-12, "non-monotone at {d}");
            prev = s;
        }
    }

    #[test]
    fn success_degrades_with_exciter_to_tag_distance() {
        let link = BackscatterLink::zigbee_testbed().unwrap();
        let near = link.packet_success(1.0, 5.0, 5.0);
        let far = link.packet_success(20.0, 5.0, 5.0);
        assert!(far < near);
    }

    #[test]
    fn self_interference_cancellation_matters() {
        let weak = BackscatterLink::new(
            Dbm::new(20.0),
            LogDistance::open_hall_2_4ghz().unwrap(),
            Decibel::new(8.0),
            Decibel::new(20.0),
            NoiseModel::ieee802154().unwrap(),
            PacketErrorModel::new(Modulation::OqpskDsss802154, 256).unwrap(),
        )
        .unwrap();
        let strong = BackscatterLink::new(
            Dbm::new(20.0),
            LogDistance::open_hall_2_4ghz().unwrap(),
            Decibel::new(8.0),
            Decibel::new(80.0),
            NoiseModel::ieee802154().unwrap(),
            PacketErrorModel::new(Modulation::OqpskDsss802154, 256).unwrap(),
        )
        .unwrap();
        // Receiver near the exciter: leakage dominates unless cancelled.
        let s_weak = weak.packet_success(2.0, 8.0, 1.0);
        let s_strong = strong.packet_success(2.0, 8.0, 1.0);
        assert!(s_strong > s_weak);
    }

    #[test]
    fn paper_claim_tens_of_meters_with_wifi() {
        // §I: "Wi-Fi-based ambient backscatter is able to transmit and
        // receive data in several tens of meters".
        let link = BackscatterLink::zigbee_testbed().unwrap();
        let range = link.max_range_m(1.0, 0.9, 500.0).unwrap();
        assert!(range > 10.0, "range={range}");
        assert!(range < 500.0, "range={range} (should not be unbounded)");
    }

    #[test]
    fn goodput_tracks_success() {
        let link = BackscatterLink::zigbee_testbed().unwrap();
        let good = link.goodput_bps(1.0, 2.0, 2.0);
        let bad = link.goodput_bps(1.0, 80.0, 80.0);
        assert!(good > bad);
        assert!(good <= 250e3 + 1e-9);
    }

    #[test]
    fn try_deliver_is_deterministic_per_seed() {
        let link = BackscatterLink::zigbee_testbed().unwrap();
        let draw = |seed| {
            let mut rng = SeedRng::new(seed);
            (0..50)
                .map(|_| link.try_deliver(1.0, 25.0, 25.0, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
    }

    #[test]
    fn max_range_none_when_target_unreachable() {
        let link = BackscatterLink::zigbee_testbed().unwrap();
        // Tag 200 m from the exciter harvests almost nothing.
        assert!(link.max_range_m(200.0, 0.99, 100.0).is_none());
    }

    #[test]
    fn wavelength_sanity() {
        assert!((BackscatterLink::wavelength_m() - 0.125).abs() < 0.001);
    }
}
