//! Cycle registration and admission control.
//!
//! The \[64\] MAC's key observation: IoT applications "have their own
//! constant communication cycles". Each device registers its
//! data-acquisition cycle with the access point once; the AP then knows
//! the entire periodic demand and can admission-control by band
//! occupation time before scheduling.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::id::DeviceId;
use zeiot_core::time::SimDuration;
use zeiot_obs::{Label, Recorder};

/// One device's declared traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registration {
    /// The registering device.
    pub device: DeviceId,
    /// Data-acquisition cycle (one sample per cycle).
    pub cycle: SimDuration,
    /// Payload bits per sample.
    pub payload_bits: usize,
}

impl Registration {
    /// Creates a registration.
    ///
    /// # Errors
    ///
    /// Returns an error if the cycle is zero or the payload empty.
    pub fn new(device: DeviceId, cycle: SimDuration, payload_bits: usize) -> Result<Self> {
        if cycle.is_zero() {
            return Err(ConfigError::new("cycle", "must be non-zero"));
        }
        if payload_bits == 0 {
            return Err(ConfigError::new("payload_bits", "must be non-zero"));
        }
        Ok(Self {
            device,
            cycle,
            payload_bits,
        })
    }

    /// Airtime of one sample at `bit_rate_bps`.
    pub fn airtime(&self, bit_rate_bps: f64) -> SimDuration {
        assert!(bit_rate_bps > 0.0, "bit rate must be positive");
        SimDuration::from_secs_f64(self.payload_bits as f64 / bit_rate_bps)
    }

    /// Fraction of the band this device occupies at `bit_rate_bps`.
    pub fn band_occupation(&self, bit_rate_bps: f64) -> f64 {
        self.airtime(bit_rate_bps).as_secs_f64() / self.cycle.as_secs_f64()
    }
}

/// The access point's registry of periodic demands.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_backscatter::registry::{CycleRegistry, Registration};
/// use zeiot_core::id::DeviceId;
/// use zeiot_core::time::SimDuration;
///
/// let mut reg = CycleRegistry::new(250e3, 0.2)?; // 250 kbps, 20 % budget
/// reg.register(Registration::new(DeviceId::new(0), SimDuration::from_millis(100), 256)?)?;
/// assert_eq!(reg.len(), 1);
/// assert!(reg.total_occupation() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleRegistry {
    bit_rate_bps: f64,
    occupation_budget: f64,
    registrations: Vec<Registration>,
}

impl CycleRegistry {
    /// Creates a registry for a backscatter channel of `bit_rate_bps`,
    /// admitting devices while total occupation stays at or below
    /// `occupation_budget` (fraction of airtime reserved for backscatter).
    ///
    /// # Errors
    ///
    /// Returns an error if the rate is not positive or the budget is
    /// outside `(0, 1]`.
    pub fn new(bit_rate_bps: f64, occupation_budget: f64) -> Result<Self> {
        if !(bit_rate_bps > 0.0 && bit_rate_bps.is_finite()) {
            return Err(ConfigError::new("bit_rate_bps", "must be positive"));
        }
        if !(occupation_budget > 0.0 && occupation_budget <= 1.0) {
            return Err(ConfigError::new("occupation_budget", "must be in (0, 1]"));
        }
        Ok(Self {
            bit_rate_bps,
            occupation_budget,
            registrations: Vec::new(),
        })
    }

    /// Number of admitted devices.
    pub fn len(&self) -> usize {
        self.registrations.len()
    }

    /// Whether no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }

    /// Admitted registrations.
    pub fn registrations(&self) -> &[Registration] {
        &self.registrations
    }

    /// Total band occupation of admitted devices.
    pub fn total_occupation(&self) -> f64 {
        self.registrations
            .iter()
            .map(|r| r.band_occupation(self.bit_rate_bps))
            .sum()
    }

    /// Attempts to admit a registration.
    ///
    /// # Errors
    ///
    /// Returns an error if the device is already registered or admission
    /// would exceed the occupation budget.
    pub fn register(&mut self, registration: Registration) -> Result<()> {
        if self
            .registrations
            .iter()
            .any(|r| r.device == registration.device)
        {
            return Err(ConfigError::new(
                "device",
                format!("{} already registered", registration.device),
            ));
        }
        let new_total = self.total_occupation() + registration.band_occupation(self.bit_rate_bps);
        if new_total > self.occupation_budget {
            return Err(ConfigError::new(
                "occupation",
                format!(
                    "admitting {} would use {:.3} of budget {:.3}",
                    registration.device, new_total, self.occupation_budget
                ),
            ));
        }
        self.registrations.push(registration);
        Ok(())
    }

    /// Like [`CycleRegistry::register`], additionally counting the
    /// admission outcome into `recorder`: `mac.registrations` per
    /// admitted device, `mac.registrations_rejected` per refusal — the
    /// registration-churn view of the AP.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`CycleRegistry::register`].
    pub fn register_observed(
        &mut self,
        registration: Registration,
        recorder: &mut Recorder,
    ) -> Result<()> {
        let device = registration.device;
        let outcome = self.register(registration);
        match &outcome {
            Ok(()) => recorder.inc("mac.registrations", Label::device(device)),
            Err(_) => recorder.inc("mac.registrations_rejected", Label::device(device)),
        }
        outcome
    }

    /// Like [`CycleRegistry::deregister`], counting each removal into the
    /// `mac.deregistrations` counter.
    pub fn deregister_observed(&mut self, device: DeviceId, recorder: &mut Recorder) -> bool {
        let removed = self.deregister(device);
        if removed {
            recorder.inc("mac.deregistrations", Label::device(device));
        }
        removed
    }

    /// Removes a device's registration; returns whether it existed.
    pub fn deregister(&mut self, device: DeviceId) -> bool {
        let before = self.registrations.len();
        self.registrations.retain(|r| r.device != device);
        self.registrations.len() != before
    }

    /// The maximum number of identical devices (same cycle/payload) this
    /// registry could admit.
    pub fn capacity_for(&self, prototype: &Registration) -> usize {
        let per = prototype.band_occupation(self.bit_rate_bps);
        if per <= 0.0 {
            return usize::MAX;
        }
        let remaining = (self.occupation_budget - self.total_occupation()).max(0.0);
        (remaining / per).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(id: u32, cycle_ms: u64, bits: usize) -> Registration {
        Registration::new(DeviceId::new(id), SimDuration::from_millis(cycle_ms), bits).unwrap()
    }

    #[test]
    fn registration_validation() {
        assert!(Registration::new(DeviceId::new(0), SimDuration::ZERO, 10).is_err());
        assert!(Registration::new(DeviceId::new(0), SimDuration::from_secs(1), 0).is_err());
    }

    #[test]
    fn airtime_and_occupation() {
        let r = reg(0, 100, 2_500); // 2500 bits @ 250 kbps = 10 ms per 100 ms
        assert_eq!(r.airtime(250e3).as_millis(), 10);
        assert!((r.band_occupation(250e3) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn admission_accepts_within_budget() {
        let mut registry = CycleRegistry::new(250e3, 0.5).unwrap();
        for i in 0..4 {
            registry.register(reg(i, 100, 2_500)).unwrap(); // 0.1 each
        }
        assert_eq!(registry.len(), 4);
        assert!((registry.total_occupation() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn admission_rejects_over_budget() {
        let mut registry = CycleRegistry::new(250e3, 0.25).unwrap();
        registry.register(reg(0, 100, 2_500)).unwrap();
        registry.register(reg(1, 100, 2_500)).unwrap();
        assert!(registry.register(reg(2, 100, 2_500)).is_err());
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut registry = CycleRegistry::new(250e3, 0.5).unwrap();
        registry.register(reg(7, 100, 100)).unwrap();
        assert!(registry.register(reg(7, 200, 100)).is_err());
    }

    #[test]
    fn deregister_frees_budget() {
        let mut registry = CycleRegistry::new(250e3, 0.2).unwrap();
        registry.register(reg(0, 100, 2_500)).unwrap();
        registry.register(reg(1, 100, 2_500)).unwrap();
        assert!(registry.register(reg(2, 100, 2_500)).is_err());
        assert!(registry.deregister(DeviceId::new(0)));
        assert!(!registry.deregister(DeviceId::new(0)));
        registry.register(reg(2, 100, 2_500)).unwrap();
    }

    #[test]
    fn capacity_estimate() {
        let registry = CycleRegistry::new(250e3, 0.5).unwrap();
        let prototype = reg(0, 100, 2_500); // 0.1 occupation
        assert_eq!(registry.capacity_for(&prototype), 5);
    }

    #[test]
    fn observed_churn_is_counted() {
        let mut registry = CycleRegistry::new(250e3, 0.25).unwrap();
        let mut rec = Recorder::new();
        registry
            .register_observed(reg(0, 100, 2_500), &mut rec)
            .unwrap();
        registry
            .register_observed(reg(1, 100, 2_500), &mut rec)
            .unwrap();
        assert!(registry
            .register_observed(reg(2, 100, 2_500), &mut rec)
            .is_err());
        assert!(registry.deregister_observed(DeviceId::new(0), &mut rec));
        assert!(!registry.deregister_observed(DeviceId::new(0), &mut rec));
        let total = |name: &str| -> u64 {
            rec.counters()
                .filter(|(n, _, _)| *n == name)
                .map(|(_, _, v)| v)
                .sum()
        };
        assert_eq!(total("mac.registrations"), 2);
        assert_eq!(total("mac.registrations_rejected"), 1);
        assert_eq!(total("mac.deregistrations"), 1);
    }

    #[test]
    fn registry_validation() {
        assert!(CycleRegistry::new(0.0, 0.5).is_err());
        assert!(CycleRegistry::new(250e3, 0.0).is_err());
        assert!(CycleRegistry::new(250e3, 1.5).is_err());
    }
}
