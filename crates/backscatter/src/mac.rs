//! The WLAN-coexistence MAC (ref \[64\]) and its naive baseline, simulated
//! on the discrete-event engine.
//!
//! **Scheduled** (the proposed protocol): the AP knows every registered
//! device's cycle. Backscatter transmissions only happen under an AP
//! grant, placed when the channel is free; if no WLAN frame is pending to
//! serve as carrier, the AP transmits a *dummy packet* for the tag to
//! modulate. WLAN frames are never exposed to tag interference.
//!
//! **Naive** coexistence: tags opportunistically modulate whatever WLAN
//! frame comes by. Every rider corrupts the WLAN frame with some
//! probability ("the communication performance of the wireless LAN is
//! deteriorated"), two or more riders collide with each other, and when
//! WLAN traffic is thin there is simply no carrier to ride ("the packet
//! error rate of backscatter communication increases when there is not
//! enough wireless LAN traffic").

use crate::registry::{CycleRegistry, Registration};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::id::DeviceId;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_fault::RecoveryPolicy;
use zeiot_obs::trace::{SpanEvent, SpanLayer, Tracer};
use zeiot_obs::{Label, Recorder, Severity};
use zeiot_sim::{Context, Engine, World};

/// Which MAC is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacMode {
    /// The \[64\] protocol: registration, grants, dummy carriers.
    Scheduled,
    /// Tags ride live WLAN frames opportunistically.
    Naive,
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MacConfig {
    /// Poisson WLAN frame arrival rate (frames per second).
    pub wlan_arrival_rate_hz: f64,
    /// Airtime of one WLAN frame.
    pub wlan_frame_airtime: SimDuration,
    /// Channel-level success of an uninterfered WLAN frame.
    pub wlan_frame_success: f64,
    /// Registered IoT devices.
    pub devices: Vec<Registration>,
    /// Backscatter bit rate (bits per second).
    pub bs_bit_rate_bps: f64,
    /// Link-level success of one granted, collision-free backscatter
    /// packet.
    pub bs_packet_success: f64,
    /// Probability that one riding tag corrupts its WLAN carrier frame
    /// (naive mode only).
    pub tag_corruption_prob: f64,
}

impl MacConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error on non-positive rates/airtimes or probabilities
    /// outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !(self.wlan_arrival_rate_hz > 0.0 && self.wlan_arrival_rate_hz.is_finite()) {
            return Err(ConfigError::new("wlan_arrival_rate_hz", "must be positive"));
        }
        if self.wlan_frame_airtime.is_zero() {
            return Err(ConfigError::new("wlan_frame_airtime", "must be non-zero"));
        }
        if !(self.bs_bit_rate_bps > 0.0 && self.bs_bit_rate_bps.is_finite()) {
            return Err(ConfigError::new("bs_bit_rate_bps", "must be positive"));
        }
        for (name, p) in [
            ("wlan_frame_success", self.wlan_frame_success),
            ("bs_packet_success", self.bs_packet_success),
            ("tag_corruption_prob", self.tag_corruption_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::new(name, "must be in [0, 1]"));
            }
        }
        Ok(())
    }

    /// A representative office scenario with `n` identical IoT devices:
    /// 200 WLAN frames/s of 1.5 ms (≈30 % channel load), devices sampling
    /// every 500 ms with 256-bit payloads at 250 kbps, 90 % link success,
    /// 50 % per-rider WLAN corruption.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches
    /// [`MacConfig::validate`].
    pub fn default_with_devices(n: usize) -> Result<Self> {
        let devices = (0..n)
            .map(|i| Registration::new(DeviceId::new(i as u32), SimDuration::from_millis(500), 256))
            .collect::<Result<Vec<_>>>()?;
        let config = Self {
            wlan_arrival_rate_hz: 200.0,
            wlan_frame_airtime: SimDuration::from_micros(1_500),
            wlan_frame_success: 0.98,
            devices,
            bs_bit_rate_bps: 250e3,
            bs_packet_success: 0.9,
            tag_corruption_prob: 0.5,
        };
        config.validate()?;
        Ok(config)
    }

    fn bs_airtime(&self, device: usize) -> SimDuration {
        self.devices[device].airtime(self.bs_bit_rate_bps)
    }
}

/// Fault injection for the scheduled MAC: grant loss on the downlink and
/// periodic AP state loss.
///
/// A *lost grant* models the tag missing the AP's announcement — the AP
/// still transmits the dummy carrier (the airtime is spent), but the tag
/// never modulates it. Recovery follows the configured
/// [`RecoveryPolicy`]: `Retransmit` re-queues the grant after the
/// policy's simulated-time backoff, everything else abandons the sample
/// (a MAC has nothing to degrade-fill with, so `Degrade` behaves like
/// `FailFast` here).
///
/// An *AP reset* drops the access point's volatile state: queued grants
/// die with it and every device must re-register its cycle before the
/// scheduler can serve it again.
#[derive(Debug, Clone, PartialEq)]
pub struct MacFaults {
    /// Probability that a granted device misses its grant.
    pub grant_loss_prob: f64,
    /// What the AP does about a missed grant.
    pub recovery: RecoveryPolicy,
    /// Interval between AP state losses (`None` = never).
    pub ap_reset_interval: Option<SimDuration>,
}

impl MacFaults {
    /// No faults: [`simulate_with_faults`] degenerates byte-for-byte to
    /// [`simulate`].
    pub fn none() -> Self {
        Self {
            grant_loss_prob: 0.0,
            recovery: RecoveryPolicy::FailFast,
            ap_reset_interval: None,
        }
    }

    /// Validates the fault configuration.
    ///
    /// # Errors
    ///
    /// Returns an error on a loss probability outside `[0, 1]` or a zero
    /// reset interval.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.grant_loss_prob) {
            return Err(ConfigError::new("grant_loss_prob", "must be in [0, 1]"));
        }
        if let Some(interval) = self.ap_reset_interval {
            if interval.is_zero() {
                return Err(ConfigError::new("ap_reset_interval", "must be non-zero"));
            }
        }
        Ok(())
    }
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MacReport {
    /// WLAN frames offered / delivered.
    pub wlan_offered: u64,
    /// Successfully delivered WLAN frames.
    pub wlan_delivered: u64,
    /// Backscatter samples generated by devices.
    pub bs_offered: u64,
    /// Backscatter samples delivered.
    pub bs_delivered: u64,
    /// Samples dropped because the previous one was still queued.
    pub bs_dropped: u64,
    /// Dummy carrier frames the AP transmitted (scheduled mode).
    pub dummy_frames: u64,
    /// Total airtime spent on dummy frames.
    pub dummy_airtime: SimDuration,
    /// Total channel-busy airtime.
    pub busy_airtime: SimDuration,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Grants the tag missed (fault injection).
    pub grant_losses: u64,
    /// Lost grants re-queued under a `Retransmit` policy.
    pub grant_retries: u64,
    /// Lost grants given up on (policy exhausted or non-retrying).
    pub grants_abandoned: u64,
    /// AP state losses.
    pub ap_resets: u64,
    /// Cycle re-registrations forced by AP resets.
    pub reregistrations: u64,
}

impl MacReport {
    /// Fraction of WLAN frames delivered.
    pub fn wlan_delivery_ratio(&self) -> f64 {
        if self.wlan_offered == 0 {
            return 1.0;
        }
        self.wlan_delivered as f64 / self.wlan_offered as f64
    }

    /// Fraction of backscatter samples delivered.
    pub fn backscatter_delivery_ratio(&self) -> f64 {
        if self.bs_offered == 0 {
            return 1.0;
        }
        self.bs_delivered as f64 / self.bs_offered as f64
    }

    /// Backscatter packet error rate (1 − delivery).
    pub fn backscatter_per(&self) -> f64 {
        1.0 - self.backscatter_delivery_ratio()
    }

    /// Fraction of wall time spent transmitting dummy carriers.
    pub fn dummy_overhead(&self) -> f64 {
        if self.duration.is_zero() {
            return 0.0;
        }
        self.dummy_airtime.as_secs_f64() / self.duration.as_secs_f64()
    }

    /// Channel utilization.
    pub fn channel_utilization(&self) -> f64 {
        if self.duration.is_zero() {
            return 0.0;
        }
        self.busy_airtime.as_secs_f64() / self.duration.as_secs_f64()
    }
}

#[derive(Debug, Clone)]
enum Event {
    WlanArrival,
    DeviceSample(usize),
    TxEnd(Tx),
    /// A lost grant comes back up for scheduling (retransmit policy).
    GrantRetry(usize),
    /// The AP loses its volatile state.
    ApReset,
}

#[derive(Debug, Clone)]
enum Tx {
    Wlan {
        riders: Vec<usize>,
    },
    Dummy {
        rider: usize,
    },
    /// A dummy carrier whose grant the tag never heard: the airtime is
    /// spent, nothing is modulated.
    DummyLost {
        rider: usize,
    },
}

struct MacWorld<'a> {
    mode: MacMode,
    config: MacConfig,
    faults: MacFaults,
    rng: SeedRng,
    channel_busy: bool,
    wlan_queue: u64,
    grant_queue: VecDeque<usize>,
    naive_pending: Vec<usize>,
    sample_pending: Vec<bool>,
    /// Per-device count of grant retries consumed for the current sample.
    retry_count: Vec<u32>,
    /// The AP's cycle registry; rebuilt from scratch on every AP reset.
    registry: CycleRegistry,
    report: MacReport,
    deadline: SimTime,
    recorder: Option<&'a mut Recorder>,
    tracer: Option<&'a mut Tracer>,
}

impl MacWorld<'_> {
    /// Appends a MAC event to device `device`'s trace (one trace per
    /// device, keyed `(device index, 0)`). Pure observation: no-op
    /// without a tracer or when sampling dropped the device.
    fn trace_event(&mut self, device: usize, at: SimTime, event: SpanEvent) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            let t = device as u64;
            if let Some(root) = tr.root(t, 0) {
                tr.event(t, 0, root, at, event);
            }
        }
    }

    fn try_start_tx(&mut self, ctx: &mut Context<'_, Event>) {
        if self.channel_busy || ctx.now() >= self.deadline {
            return;
        }
        match self.mode {
            MacMode::Scheduled => {
                if self.wlan_queue > 0 {
                    self.wlan_queue -= 1;
                    self.channel_busy = true;
                    self.report.busy_airtime += self.config.wlan_frame_airtime;
                    ctx.schedule_in(
                        self.config.wlan_frame_airtime,
                        Event::TxEnd(Tx::Wlan { riders: vec![] }),
                    );
                } else if let Some(device) = self.grant_queue.pop_front() {
                    // Dummy carrier covering the tag's airtime.
                    let airtime = self.config.bs_airtime(device);
                    self.channel_busy = true;
                    self.report.dummy_frames += 1;
                    self.report.dummy_airtime += airtime;
                    self.report.busy_airtime += airtime;
                    if let Some(rec) = self.recorder.as_deref_mut() {
                        let label = Label::device(self.config.devices[device].device);
                        rec.inc("mac.grants", label);
                        rec.inc("mac.dummy_frames", Label::Global);
                    }
                    self.trace_event(device, ctx.now(), SpanEvent::Grant);
                    // Grant loss is rolled only under fault injection so
                    // the fault-free RNG stream is untouched.
                    let lost = self.faults.grant_loss_prob > 0.0
                        && self.rng.chance(self.faults.grant_loss_prob);
                    let tx = if lost {
                        Tx::DummyLost { rider: device }
                    } else {
                        Tx::Dummy { rider: device }
                    };
                    ctx.schedule_in(airtime, Event::TxEnd(tx));
                }
            }
            MacMode::Naive => {
                if self.wlan_queue > 0 {
                    self.wlan_queue -= 1;
                    self.channel_busy = true;
                    self.report.busy_airtime += self.config.wlan_frame_airtime;
                    // Every waiting tag jumps on the frame.
                    let riders = std::mem::take(&mut self.naive_pending);
                    ctx.schedule_in(
                        self.config.wlan_frame_airtime,
                        Event::TxEnd(Tx::Wlan { riders }),
                    );
                }
                // No WLAN traffic → tags have no carrier; they wait.
            }
        }
    }

    fn finish_sample(&mut self, device: usize, delivered: bool) {
        self.sample_pending[device] = false;
        self.retry_count[device] = 0;
        if delivered {
            self.report.bs_delivered += 1;
        }
    }

    /// Rebuilds the AP registry from scratch, re-admitting every device
    /// (the recovery an AP reset forces).
    fn reregister_all(&mut self) {
        self.registry = fresh_registry(&self.config);
        for reg in self.config.devices.clone() {
            let admitted = match self.recorder.as_deref_mut() {
                Some(rec) => self.registry.register_observed(reg, rec).is_ok(),
                None => self.registry.register(reg).is_ok(),
            };
            if admitted {
                self.report.reregistrations += 1;
            }
        }
    }
}

/// An AP-side registry sized for the configured channel; the budget is
/// the whole band (admission control is exercised, not stressed, here).
fn fresh_registry(config: &MacConfig) -> CycleRegistry {
    CycleRegistry::new(config.bs_bit_rate_bps, 1.0).expect("validated bit rate")
}

impl World for MacWorld<'_> {
    type Event = Event;

    fn handle(&mut self, ctx: &mut Context<'_, Event>, event: Event) {
        match event {
            Event::WlanArrival => {
                if ctx.now() < self.deadline {
                    self.report.wlan_offered += 1;
                    self.wlan_queue += 1;
                    let gap = self.rng.exponential(self.config.wlan_arrival_rate_hz);
                    ctx.schedule_in(SimDuration::from_secs_f64(gap), Event::WlanArrival);
                    self.try_start_tx(ctx);
                }
            }
            Event::DeviceSample(device) => {
                if ctx.now() < self.deadline {
                    self.report.bs_offered += 1;
                    if self.sample_pending[device] {
                        // Previous sample never got out; it is superseded.
                        self.report.bs_dropped += 1;
                        if let Some(rec) = self.recorder.as_deref_mut() {
                            let label = Label::device(self.config.devices[device].device);
                            rec.inc("mac.samples_dropped", label);
                        }
                        match self.mode {
                            MacMode::Scheduled => {} // stays in grant queue
                            MacMode::Naive => {}     // stays in naive_pending
                        }
                    } else {
                        self.sample_pending[device] = true;
                        match self.mode {
                            MacMode::Scheduled => self.grant_queue.push_back(device),
                            MacMode::Naive => self.naive_pending.push(device),
                        }
                    }
                    ctx.schedule_in(
                        self.config.devices[device].cycle,
                        Event::DeviceSample(device),
                    );
                    self.try_start_tx(ctx);
                }
            }
            Event::TxEnd(tx) => {
                self.channel_busy = false;
                match tx {
                    Tx::Wlan { riders } => {
                        // WLAN frame outcome: base channel success, degraded
                        // by each riding tag (naive mode only has riders).
                        let mut success_p = self.config.wlan_frame_success;
                        for _ in &riders {
                            success_p *= 1.0 - self.config.tag_corruption_prob;
                        }
                        if self.rng.chance(success_p) {
                            self.report.wlan_delivered += 1;
                        }
                        // Tag outcomes: a single rider decodes with the
                        // link success; concurrent riders collide.
                        match riders.len() {
                            0 => {}
                            1 => {
                                let d = riders[0];
                                let ok = self.rng.chance(self.config.bs_packet_success);
                                self.finish_sample(d, ok);
                            }
                            _ => {
                                if let Some(rec) = self.recorder.as_deref_mut() {
                                    rec.inc("mac.collisions", Label::Global);
                                    rec.trace(
                                        ctx.now(),
                                        Severity::Debug,
                                        Label::Global,
                                        format!("{} tags collided on one frame", riders.len()),
                                    );
                                }
                                let tags = riders.len() as u64;
                                for d in riders {
                                    self.trace_event(d, ctx.now(), SpanEvent::Collision { tags });
                                    self.finish_sample(d, false);
                                }
                            }
                        }
                    }
                    Tx::Dummy { rider } => {
                        let ok = self.rng.chance(self.config.bs_packet_success);
                        self.finish_sample(rider, ok);
                    }
                    Tx::DummyLost { rider } => {
                        // The airtime was spent but the tag never heard
                        // the grant; recover per policy.
                        self.report.grant_losses += 1;
                        if let Some(rec) = self.recorder.as_deref_mut() {
                            let label = Label::device(self.config.devices[rider].device);
                            rec.inc("mac.grant_losses", label);
                        }
                        self.trace_event(rider, ctx.now(), SpanEvent::Loss { drops: 1 });
                        let next_retry = self.retry_count[rider] + 1;
                        let scheduled = self
                            .faults
                            .recovery
                            .retry_schedule()
                            .map(|s| ctx.schedule_retry(&s, next_retry, Event::GrantRetry(rider)))
                            .unwrap_or(false);
                        if scheduled {
                            self.retry_count[rider] = next_retry;
                            self.report.grant_retries += 1;
                            self.trace_event(
                                rider,
                                ctx.now(),
                                SpanEvent::Retransmit { retries: 1 },
                            );
                        } else {
                            self.report.grants_abandoned += 1;
                            self.finish_sample(rider, false);
                        }
                    }
                }
                self.try_start_tx(ctx);
            }
            Event::GrantRetry(device) => {
                // Only meaningful while the sample is still wanted; a
                // supersession or an AP reset may have settled it already.
                if ctx.now() < self.deadline && self.sample_pending[device] {
                    self.grant_queue.push_back(device);
                    self.try_start_tx(ctx);
                }
            }
            Event::ApReset => {
                if ctx.now() < self.deadline {
                    self.report.ap_resets += 1;
                    if let Some(rec) = self.recorder.as_deref_mut() {
                        rec.inc("mac.ap_resets", Label::Global);
                        rec.trace(
                            ctx.now(),
                            Severity::Warn,
                            Label::Global,
                            format!(
                                "AP reset: {} queued grants lost, re-registering {} devices",
                                self.grant_queue.len(),
                                self.config.devices.len()
                            ),
                        );
                    }
                    // Queued grants die with the AP's volatile state.
                    let orphaned: Vec<usize> = self.grant_queue.drain(..).collect();
                    for device in orphaned {
                        self.report.grants_abandoned += 1;
                        self.finish_sample(device, false);
                    }
                    self.reregister_all();
                    if let Some(interval) = self.faults.ap_reset_interval {
                        ctx.schedule_in(interval, Event::ApReset);
                    }
                }
            }
        }
    }
}

/// Runs one MAC simulation for `duration` and returns the report.
///
/// # Panics
///
/// Panics if `config` fails validation (call [`MacConfig::validate`] to
/// check fallibly) or has no devices.
pub fn simulate(
    config: &MacConfig,
    mode: MacMode,
    duration: SimDuration,
    rng: &mut SeedRng,
) -> MacReport {
    simulate_inner(config, mode, duration, rng, &MacFaults::none(), None, None)
}

/// Like [`simulate`], under fault injection: grants can be missed by the
/// tag (recovered per the configured [`RecoveryPolicy`]) and the AP can
/// periodically lose its registry and grant queue.
///
/// With [`MacFaults::none`] the report is byte-for-byte identical to
/// [`simulate`] at the same seed — the fault paths never consume RNG.
///
/// # Panics
///
/// Panics if `config` or `faults` fail validation, or `config` has no
/// devices.
pub fn simulate_with_faults(
    config: &MacConfig,
    mode: MacMode,
    duration: SimDuration,
    rng: &mut SeedRng,
    faults: &MacFaults,
) -> MacReport {
    simulate_inner(config, mode, duration, rng, faults, None, None)
}

/// [`simulate_with_faults`] with observability: the counters of
/// [`simulate_observed`] plus `mac.grant_losses` per device,
/// `mac.ap_resets`, registration churn via the registry counters, and a
/// warning trace per AP reset.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_with_faults`].
pub fn simulate_with_faults_observed(
    config: &MacConfig,
    mode: MacMode,
    duration: SimDuration,
    rng: &mut SeedRng,
    faults: &MacFaults,
    recorder: &mut Recorder,
) -> MacReport {
    simulate_inner(config, mode, duration, rng, faults, Some(recorder), None)
}

/// [`simulate_with_faults`] with causal tracing: each device grows one
/// trace (keyed `(device index, 0)`, rooted at a [`SpanLayer::Mac`]
/// span spanning the run) annotated with [`SpanEvent::Grant`] per dummy
/// carrier, [`SpanEvent::Collision`] per shared frame,
/// [`SpanEvent::Loss`] per missed grant, and [`SpanEvent::Retransmit`]
/// per re-queued grant. The report is byte-identical to an untraced run
/// at the same seed.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_with_faults`].
pub fn simulate_with_faults_traced(
    config: &MacConfig,
    mode: MacMode,
    duration: SimDuration,
    rng: &mut SeedRng,
    faults: &MacFaults,
    recorder: Option<&mut Recorder>,
    tracer: &mut Tracer,
) -> MacReport {
    simulate_inner(config, mode, duration, rng, faults, recorder, Some(tracer))
}

/// Like [`simulate`], additionally recording observability metrics into
/// `recorder`: `mac.grants` per device, `mac.dummy_frames`,
/// `mac.collisions`, `mac.samples_dropped` per device, and a debug trace
/// event per collision. The returned report is identical to an
/// unobserved run with the same seed.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate`].
pub fn simulate_observed(
    config: &MacConfig,
    mode: MacMode,
    duration: SimDuration,
    rng: &mut SeedRng,
    recorder: &mut Recorder,
) -> MacReport {
    simulate_inner(
        config,
        mode,
        duration,
        rng,
        &MacFaults::none(),
        Some(recorder),
        None,
    )
}

fn simulate_inner(
    config: &MacConfig,
    mode: MacMode,
    duration: SimDuration,
    rng: &mut SeedRng,
    faults: &MacFaults,
    recorder: Option<&mut Recorder>,
    mut tracer: Option<&mut Tracer>,
) -> MacReport {
    config.validate().expect("invalid MAC config");
    faults.validate().expect("invalid MAC fault config");
    assert!(!config.devices.is_empty(), "need at least one device");
    let n = config.devices.len();
    // One trace per device, rooted at a Mac-layer span covering the run.
    if let Some(tr) = tracer.as_deref_mut() {
        for i in 0..n {
            let _ = tr.begin(i as u64, 0, "mac.device", SpanLayer::Mac, SimTime::ZERO);
        }
    }
    // Initial cycle registration (uncounted: it predates the run).
    let mut registry = fresh_registry(config);
    for reg in &config.devices {
        let _ = registry.register(*reg);
    }
    let world = MacWorld {
        mode,
        config: config.clone(),
        faults: faults.clone(),
        rng: rng.split(),
        channel_busy: false,
        wlan_queue: 0,
        grant_queue: VecDeque::new(),
        naive_pending: Vec::new(),
        sample_pending: vec![false; n],
        retry_count: vec![0; n],
        registry,
        report: MacReport::default(),
        deadline: SimTime::ZERO + duration,
        recorder,
        tracer,
    };
    let mut engine = Engine::new(world);
    engine.schedule_at(SimTime::ZERO, Event::WlanArrival);
    for (i, reg) in config.devices.iter().enumerate() {
        // Stagger first samples across the cycle to avoid phase artifacts.
        let offset = reg.cycle.mul_f64(i as f64 / n as f64);
        engine.schedule_at(SimTime::ZERO + offset, Event::DeviceSample(i));
    }
    if let Some(interval) = faults.ap_reset_interval {
        engine.schedule_at(SimTime::ZERO + interval, Event::ApReset);
    }
    engine.run_until(SimTime::ZERO + duration + SimDuration::from_secs(1));
    let mut world = engine.into_world();
    if let Some(tr) = world.tracer.as_deref_mut() {
        for i in 0..n {
            tr.finish(i as u64, 0, SimTime::ZERO + duration);
        }
    }
    let mut report = world.report;
    report.duration = duration;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mode: MacMode, devices: usize, seed: u64) -> MacReport {
        let config = MacConfig::default_with_devices(devices).unwrap();
        let mut rng = SeedRng::new(seed);
        simulate(&config, mode, SimDuration::from_secs(30), &mut rng)
    }

    #[test]
    fn scheduled_preserves_wlan_delivery() {
        let report = run(MacMode::Scheduled, 20, 1);
        // WLAN never carries riders: delivery ≈ base success.
        assert!(
            (report.wlan_delivery_ratio() - 0.98).abs() < 0.01,
            "ratio={}",
            report.wlan_delivery_ratio()
        );
    }

    #[test]
    fn naive_degrades_wlan_with_devices() {
        let few = run(MacMode::Naive, 2, 2);
        let many = run(MacMode::Naive, 40, 2);
        assert!(
            many.wlan_delivery_ratio() < few.wlan_delivery_ratio(),
            "few={} many={}",
            few.wlan_delivery_ratio(),
            many.wlan_delivery_ratio()
        );
    }

    #[test]
    fn scheduled_beats_naive_on_backscatter() {
        for devices in [30, 60] {
            let sched = run(MacMode::Scheduled, devices, 3);
            let naive = run(MacMode::Naive, devices, 3);
            assert!(
                sched.backscatter_delivery_ratio() > naive.backscatter_delivery_ratio(),
                "devices={devices}: sched={} naive={}",
                sched.backscatter_delivery_ratio(),
                naive.backscatter_delivery_ratio()
            );
        }
    }

    #[test]
    fn scheduled_delivery_close_to_link_quality() {
        let report = run(MacMode::Scheduled, 10, 4);
        // Without collisions, delivery ≈ link success (0.9).
        assert!(
            (report.backscatter_delivery_ratio() - 0.9).abs() < 0.05,
            "ratio={}",
            report.backscatter_delivery_ratio()
        );
    }

    #[test]
    fn dummy_frames_appear_only_in_scheduled_mode() {
        let sched = run(MacMode::Scheduled, 10, 5);
        let naive = run(MacMode::Naive, 10, 5);
        assert!(sched.dummy_frames > 0);
        assert_eq!(naive.dummy_frames, 0);
        assert!(sched.dummy_overhead() > 0.0 && sched.dummy_overhead() < 0.1);
    }

    #[test]
    fn thin_wlan_traffic_starves_naive_tags() {
        let mut config = MacConfig::default_with_devices(10).unwrap();
        config.wlan_arrival_rate_hz = 2.0; // almost no WLAN traffic
        let mut rng = SeedRng::new(6);
        let naive = simulate(
            &config,
            MacMode::Naive,
            SimDuration::from_secs(30),
            &mut rng,
        );
        let mut rng = SeedRng::new(6);
        let sched = simulate(
            &config,
            MacMode::Scheduled,
            SimDuration::from_secs(30),
            &mut rng,
        );
        // Naive tags rarely find carriers; scheduled AP sends dummies.
        assert!(
            naive.backscatter_delivery_ratio() < 0.5,
            "naive={}",
            naive.backscatter_delivery_ratio()
        );
        assert!(
            sched.backscatter_delivery_ratio() > 0.8,
            "sched={}",
            sched.backscatter_delivery_ratio()
        );
        assert!(sched.dummy_overhead() > naive.dummy_overhead());
    }

    #[test]
    fn report_counters_are_consistent() {
        let report = run(MacMode::Scheduled, 15, 7);
        assert!(report.bs_delivered <= report.bs_offered);
        assert!(report.wlan_delivered <= report.wlan_offered);
        assert!(report.channel_utilization() > 0.0 && report.channel_utilization() <= 1.0);
        // ~60 samples per device over 30 s.
        assert!(report.bs_offered >= 14 * 60);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(run(MacMode::Naive, 10, 42), run(MacMode::Naive, 10, 42));
    }

    #[test]
    fn observed_run_matches_unobserved_report() {
        let config = MacConfig::default_with_devices(12).unwrap();
        let mut rng = SeedRng::new(8);
        let plain = simulate(
            &config,
            MacMode::Scheduled,
            SimDuration::from_secs(10),
            &mut rng,
        );
        let mut rng = SeedRng::new(8);
        let mut rec = Recorder::new();
        let observed = simulate_observed(
            &config,
            MacMode::Scheduled,
            SimDuration::from_secs(10),
            &mut rng,
            &mut rec,
        );
        assert_eq!(plain, observed);
        // Every dummy frame is a grant; the counters must agree with the
        // report exactly.
        assert_eq!(
            rec.counter_value("mac.dummy_frames", &Label::Global),
            observed.dummy_frames
        );
        let grants: u64 = rec
            .counters()
            .filter(|(name, _, _)| *name == "mac.grants")
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(grants, observed.dummy_frames);
    }

    #[test]
    fn observed_naive_run_counts_collisions_and_drops() {
        let config = MacConfig::default_with_devices(40).unwrap();
        let mut rng = SeedRng::new(9);
        let mut rec = Recorder::new();
        let report = simulate_observed(
            &config,
            MacMode::Naive,
            SimDuration::from_secs(10),
            &mut rng,
            &mut rec,
        );
        assert!(rec.counter_value("mac.collisions", &Label::Global) > 0);
        assert!(!rec.trace_buffer().is_empty());
        let dropped: u64 = rec
            .counters()
            .filter(|(name, _, _)| *name == "mac.samples_dropped")
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(dropped, report.bs_dropped);
        assert_eq!(rec.counter_value("mac.dummy_frames", &Label::Global), 0);
    }

    #[test]
    fn no_faults_is_byte_identical_to_plain_simulate() {
        let config = MacConfig::default_with_devices(15).unwrap();
        for mode in [MacMode::Scheduled, MacMode::Naive] {
            let mut rng = SeedRng::new(11);
            let plain = simulate(&config, mode, SimDuration::from_secs(20), &mut rng);
            let mut rng = SeedRng::new(11);
            let faulted = simulate_with_faults(
                &config,
                mode,
                SimDuration::from_secs(20),
                &mut rng,
                &MacFaults::none(),
            );
            assert_eq!(plain, faulted, "{mode:?}");
        }
    }

    #[test]
    fn grant_loss_without_retries_abandons_samples() {
        let config = MacConfig::default_with_devices(10).unwrap();
        let faults = MacFaults {
            grant_loss_prob: 0.3,
            recovery: RecoveryPolicy::FailFast,
            ap_reset_interval: None,
        };
        let mut rng = SeedRng::new(12);
        let report = simulate_with_faults(
            &config,
            MacMode::Scheduled,
            SimDuration::from_secs(20),
            &mut rng,
            &faults,
        );
        assert!(report.grant_losses > 0);
        assert_eq!(report.grant_losses, report.grants_abandoned);
        assert_eq!(report.grant_retries, 0);
        // Lost grants translate into undelivered samples.
        let mut rng = SeedRng::new(12);
        let clean = simulate(
            &config,
            MacMode::Scheduled,
            SimDuration::from_secs(20),
            &mut rng,
        );
        assert!(report.bs_delivered < clean.bs_delivered);
    }

    #[test]
    fn retransmission_recovers_most_lost_grants() {
        let config = MacConfig::default_with_devices(10).unwrap();
        let retrying = MacFaults {
            grant_loss_prob: 0.3,
            recovery: RecoveryPolicy::Retransmit {
                max_retries: 4,
                timeout: SimDuration::from_millis(10),
                backoff: 2.0,
            },
            ap_reset_interval: None,
        };
        let abandoning = MacFaults {
            recovery: RecoveryPolicy::FailFast,
            ..retrying.clone()
        };
        let run = |faults: &MacFaults| {
            let mut rng = SeedRng::new(13);
            simulate_with_faults(
                &config,
                MacMode::Scheduled,
                SimDuration::from_secs(20),
                &mut rng,
                faults,
            )
        };
        let with_retry = run(&retrying);
        let without = run(&abandoning);
        assert!(with_retry.grant_retries > 0);
        assert!(
            with_retry.backscatter_delivery_ratio() > without.backscatter_delivery_ratio(),
            "retry={} abandon={}",
            with_retry.backscatter_delivery_ratio(),
            without.backscatter_delivery_ratio()
        );
        // 0.3^5 residual loss: nearly everything is recovered.
        assert!(with_retry.grants_abandoned * 20 < with_retry.grant_losses.max(20));
    }

    #[test]
    fn zero_retry_retransmit_matches_fail_fast() {
        let config = MacConfig::default_with_devices(12).unwrap();
        let run = |recovery: RecoveryPolicy| {
            let faults = MacFaults {
                grant_loss_prob: 0.25,
                recovery,
                ap_reset_interval: None,
            };
            let mut rng = SeedRng::new(14);
            simulate_with_faults(
                &config,
                MacMode::Scheduled,
                SimDuration::from_secs(15),
                &mut rng,
                &faults,
            )
        };
        let fail_fast = run(RecoveryPolicy::FailFast);
        let zero_retry = run(RecoveryPolicy::Retransmit {
            max_retries: 0,
            timeout: SimDuration::from_millis(10),
            backoff: 1.0,
        });
        assert_eq!(fail_fast, zero_retry);
    }

    #[test]
    fn ap_resets_force_reregistration_and_lose_queued_grants() {
        let config = MacConfig::default_with_devices(20).unwrap();
        let faults = MacFaults {
            grant_loss_prob: 0.0,
            recovery: RecoveryPolicy::FailFast,
            ap_reset_interval: Some(SimDuration::from_secs(5)),
        };
        let mut rng = SeedRng::new(15);
        let mut rec = Recorder::new();
        let report = simulate_with_faults_observed(
            &config,
            MacMode::Scheduled,
            SimDuration::from_secs(21),
            &mut rng,
            &faults,
            &mut rec,
        );
        assert_eq!(report.ap_resets, 4);
        assert_eq!(report.reregistrations, 4 * 20);
        assert_eq!(
            rec.counter_value("mac.ap_resets", &Label::Global),
            report.ap_resets
        );
        let reregistered: u64 = rec
            .counters()
            .filter(|(name, _, _)| *name == "mac.registrations")
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(reregistered, report.reregistrations);
        assert!(!rec.trace_buffer().is_empty());
    }

    #[test]
    fn fault_reports_are_deterministic() {
        let run = || {
            let config = MacConfig::default_with_devices(10).unwrap();
            let faults = MacFaults {
                grant_loss_prob: 0.2,
                recovery: RecoveryPolicy::Retransmit {
                    max_retries: 2,
                    timeout: SimDuration::from_millis(5),
                    backoff: 2.0,
                },
                ap_reset_interval: Some(SimDuration::from_secs(7)),
            };
            let mut rng = SeedRng::new(16);
            simulate_with_faults(
                &config,
                MacMode::Scheduled,
                SimDuration::from_secs(20),
                &mut rng,
                &faults,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traced_run_is_pure_observation_and_annotates_devices() {
        use zeiot_obs::trace::{SpanEvent, TraceSampler, Tracer};
        let config = MacConfig::default_with_devices(10).unwrap();
        let faults = MacFaults {
            grant_loss_prob: 0.3,
            recovery: RecoveryPolicy::Retransmit {
                max_retries: 4,
                timeout: SimDuration::from_millis(10),
                backoff: 2.0,
            },
            ap_reset_interval: None,
        };
        let mut rng = SeedRng::new(13);
        let plain = simulate_with_faults(
            &config,
            MacMode::Scheduled,
            SimDuration::from_secs(20),
            &mut rng,
            &faults,
        );
        let mut rng = SeedRng::new(13);
        let mut tracer = Tracer::new(TraceSampler::always());
        let traced = simulate_with_faults_traced(
            &config,
            MacMode::Scheduled,
            SimDuration::from_secs(20),
            &mut rng,
            &faults,
            None,
            &mut tracer,
        );
        assert_eq!(plain, traced, "tracing must not perturb the MAC");
        let traces = tracer.take_finished();
        assert_eq!(traces.len(), config.devices.len());
        let count = |pick: fn(&SpanEvent) -> u64| -> u64 {
            traces
                .iter()
                .flat_map(|t| t.spans.iter())
                .flat_map(|s| s.events.iter())
                .map(|e| pick(&e.event))
                .sum()
        };
        let grants = count(|e| u64::from(matches!(e, SpanEvent::Grant)));
        let losses = count(|e| match e {
            SpanEvent::Loss { drops } => *drops,
            _ => 0,
        });
        let retries = count(|e| match e {
            SpanEvent::Retransmit { retries } => *retries,
            _ => 0,
        });
        assert_eq!(grants, traced.dummy_frames);
        assert_eq!(losses, traced.grant_losses);
        assert_eq!(retries, traced.grant_retries);
    }

    #[test]
    fn traced_naive_run_records_collisions() {
        use zeiot_obs::trace::{SpanEvent, TraceSampler, Tracer};
        let config = MacConfig::default_with_devices(40).unwrap();
        let mut rng = SeedRng::new(9);
        let mut tracer = Tracer::new(TraceSampler::always());
        let _ = simulate_with_faults_traced(
            &config,
            MacMode::Naive,
            SimDuration::from_secs(10),
            &mut rng,
            &MacFaults::none(),
            None,
            &mut tracer,
        );
        let traces = tracer.take_finished();
        assert!(traces
            .iter()
            .flat_map(|t| t.spans.iter())
            .flat_map(|s| s.events.iter())
            .any(|e| matches!(e.event, SpanEvent::Collision { tags } if tags >= 2)));
    }

    #[test]
    fn fault_config_validation() {
        assert!(MacFaults::none().validate().is_ok());
        assert!(MacFaults {
            grant_loss_prob: 1.5,
            ..MacFaults::none()
        }
        .validate()
        .is_err());
        assert!(MacFaults {
            ap_reset_interval: Some(SimDuration::ZERO),
            ..MacFaults::none()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic]
    fn empty_device_list_panics() {
        let config = MacConfig {
            devices: vec![],
            ..MacConfig::default_with_devices(1).unwrap()
        };
        let mut rng = SeedRng::new(1);
        let _ = simulate(&config, MacMode::Naive, SimDuration::from_secs(1), &mut rng);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn report_invariants_hold_for_random_configs(
            seed in 0u64..1000,
            devices in 1usize..30,
            wlan_rate in 5.0f64..400.0,
            bs_success in 0.1f64..1.0,
            scheduled in proptest::bool::ANY,
        ) {
            let mut config = MacConfig::default_with_devices(devices).unwrap();
            config.wlan_arrival_rate_hz = wlan_rate;
            config.bs_packet_success = bs_success;
            let mode = if scheduled { MacMode::Scheduled } else { MacMode::Naive };
            let mut rng = SeedRng::new(seed);
            let report = simulate(&config, mode, SimDuration::from_secs(5), &mut rng);
            // Counter sanity.
            prop_assert!(report.bs_delivered <= report.bs_offered);
            prop_assert!(report.wlan_delivered <= report.wlan_offered);
            prop_assert!(report.bs_dropped <= report.bs_offered);
            // Ratios bounded.
            prop_assert!((0.0..=1.0).contains(&report.wlan_delivery_ratio()));
            prop_assert!((0.0..=1.0).contains(&report.backscatter_delivery_ratio()));
            prop_assert!(report.channel_utilization() <= 1.0 + 1e-9);
            // Mode-specific structure.
            if mode == MacMode::Naive {
                prop_assert_eq!(report.dummy_frames, 0);
                prop_assert_eq!(report.dummy_airtime, SimDuration::ZERO);
            }
            // Scheduled delivery never exceeds the link quality by more
            // than sampling noise allows at 5 s horizons.
            if mode == MacMode::Scheduled && report.bs_offered > 20 {
                prop_assert!(
                    report.backscatter_delivery_ratio() <= bs_success + 0.35,
                    "delivery {} vs link {}",
                    report.backscatter_delivery_ratio(),
                    bs_success
                );
            }
        }
    }
}
