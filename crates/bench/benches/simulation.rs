//! Criterion: simulation-kernel throughput — event queue, MAC run rate,
//! flood rounds. Determines how large an E3-style sweep is affordable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zeiot_backscatter::mac::{simulate, MacConfig, MacMode};
use zeiot_core::id::NodeId;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_net::flooding::SyncFlood;
use zeiot_net::Topology;
use zeiot_sim::queue::EventQueue;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                // Scatter times to exercise heap reordering.
                q.push(
                    SimTime::from_nanos(i.wrapping_mul(2_654_435_761) % 1_000_000),
                    i,
                );
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_mac_second(c: &mut Criterion) {
    let config = MacConfig::default_with_devices(20).unwrap();
    c.bench_function("mac_scheduled_1s_20dev", |b| {
        b.iter(|| {
            let mut rng = SeedRng::new(1);
            black_box(simulate(
                &config,
                MacMode::Scheduled,
                SimDuration::from_secs(1),
                &mut rng,
            ))
        })
    });
}

fn bench_flood_round(c: &mut Criterion) {
    let topo = Topology::grid(10, 10, 1.0, 1.5).unwrap();
    let flood = SyncFlood::new(0.9, 30).unwrap();
    c.bench_function("sync_flood_round_100_nodes", |b| {
        b.iter(|| {
            let mut rng = SeedRng::new(2);
            black_box(flood.run(&topo, NodeId::new(0), &mut rng))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_mac_second,
    bench_flood_round
);
criterion_main!(benches);
