//! Criterion: assignment algorithms and cost evaluation — what the
//! design-support tooling (paper §III.B) runs when planning a
//! deployment. Includes the ablation comparisons of DESIGN.md §5.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zeiot_microdeep::{Assignment, CnnConfig, CostModel};
use zeiot_net::routing::RoutingTable;
use zeiot_net::Topology;

fn setup() -> (CnnConfig, Topology) {
    (
        CnnConfig::new(1, 17, 25, 4, 4, 2, 32, 2).unwrap(),
        Topology::grid(10, 5, 5.0, 7.6).unwrap(),
    )
}

fn bench_grid_projection(c: &mut Criterion) {
    let (config, topo) = setup();
    let graph = config.unit_graph().unwrap();
    c.bench_function("assignment_grid_projection", |b| {
        b.iter(|| black_box(Assignment::grid_projection(&graph, &topo)))
    });
}

fn bench_balanced_correspondence(c: &mut Criterion) {
    let (config, topo) = setup();
    let graph = config.unit_graph().unwrap();
    c.bench_function("assignment_balanced_correspondence", |b| {
        b.iter(|| black_box(Assignment::balanced_correspondence(&graph, &topo)))
    });
}

fn bench_forward_cost(c: &mut Criterion) {
    let (config, topo) = setup();
    let graph = config.unit_graph().unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    let model = CostModel::new(&topo);
    c.bench_function("cost_forward_per_edge", |b| {
        b.iter(|| black_box(model.forward_cost(&graph, &assignment)))
    });
}

fn bench_forward_cost_cached(c: &mut Criterion) {
    // Ablation 3 of DESIGN.md §5: node-level value caching.
    let (config, topo) = setup();
    let graph = config.unit_graph().unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    let model = CostModel::new(&topo);
    c.bench_function("cost_forward_value_cached", |b| {
        b.iter(|| black_box(model.forward_cost_cached(&graph, &assignment)))
    });
}

fn bench_collection_schedule(c: &mut Criterion) {
    use zeiot_core::id::NodeId;
    use zeiot_plan::schedule::CollectionSchedule;
    use zeiot_plan::tree::CollectionTree;
    let topo = Topology::grid(7, 7, 2.0, 3.0).unwrap();
    let tree = CollectionTree::build(&topo, NodeId::new(0)).unwrap();
    c.bench_function("collection_schedule_49_nodes_2ch", |b| {
        b.iter(|| black_box(CollectionSchedule::build(&topo, &tree, 2).unwrap()))
    });
}

fn bench_routing_table(c: &mut Criterion) {
    let topo = Topology::grid(10, 10, 2.0, 3.0).unwrap();
    c.bench_function("routing_all_pairs_100_nodes", |b| {
        b.iter(|| black_box(RoutingTable::shortest_paths(&topo)))
    });
}

criterion_group!(
    benches,
    bench_grid_projection,
    bench_balanced_correspondence,
    bench_forward_cost,
    bench_forward_cost_cached,
    bench_collection_schedule,
    bench_routing_table
);
criterion_main!(benches);
