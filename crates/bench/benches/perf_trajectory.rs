//! The tracked perf trajectory: the workspace's hottest paths — the
//! MicroDeep forward pass (f32 lossless, f32 through a degraded
//! fabric, and the deployed int8 path), the blocked i8 dense kernel,
//! the incremental re-placement planner, the serving layer's
//! admission/dispatch loop, the scenario fusion step, and the audit's
//! full workspace scan — timed by the vendored criterion stub and
//! exported as `BENCH_10.json` for the CI `perf` job to archive.
//!
//! Usage: `cargo bench -p zeiot-bench --bench perf_trajectory --
//! [--out PATH]` (default `BENCH_10.json` in the working directory).
//! `ZEIOT_BENCH_ITERS` overrides the per-bench iteration count (CI's
//! smoke profile uses a small value; the default is the stub's 10).
//!
//! The timings are wall-clock and hence machine-dependent — this file
//! is a *trajectory* artifact for humans to compare across PRs, not
//! part of the determinism contract (which is why it lives in
//! `benches/`, outside the audit scope).

use criterion::Criterion;
use std::hint::black_box;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_fault::{DegradeMode, FaultPlan, RecoveryPolicy};
use zeiot_microdeep::replace::plan_incremental;
use zeiot_microdeep::{
    Assignment, CnnConfig, DistributedCnn, LossyRuntime, QuantizedCnn, WeightUpdate,
};
use zeiot_net::Topology;
use zeiot_nn::quant::dense_i8_blocked;
use zeiot_nn::tensor::Tensor;
use zeiot_serve::{ArrivalProcess, ServeConfig, Server, Tenant, TenantSpec};

/// The paper's temperature-map CNN on its 10×5 sensor grid.
fn temperature_net(seed: u64) -> (DistributedCnn, Topology) {
    let config = CnnConfig::new(1, 17, 25, 4, 4, 2, 32, 2).expect("valid config");
    let graph = config.unit_graph().expect("valid graph");
    let topo = Topology::grid(10, 5, 5.0, 7.6).expect("valid grid");
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    let mut rng = SeedRng::new(seed);
    let net = DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng);
    (net, topo)
}

fn bench_microdeep_forward(c: &mut Criterion) {
    let (mut net, _) = temperature_net(1);
    let mut rng = SeedRng::new(2);
    let input = Tensor::uniform(vec![1, 17, 25], 1.0, &mut rng);
    c.bench_function("microdeep_forward_temperature", |b| {
        b.iter(|| black_box(net.forward(black_box(&input))))
    });
}

fn bench_microdeep_forward_lossy(c: &mut Criterion) {
    let (mut net, topo) = temperature_net(3);
    let mut rng = SeedRng::new(4);
    let input = Tensor::uniform(vec![1, 17, 25], 1.0, &mut rng);
    let mut rt = LossyRuntime::new(
        FaultPlan::uniform(5, 0.05).expect("valid rate"),
        RecoveryPolicy::Degrade {
            mode: DegradeMode::ZeroFill,
        },
        &topo,
        SimDuration::from_millis(500),
    );
    c.bench_function("microdeep_forward_lossy_zero_fill", |b| {
        b.iter(|| black_box(net.forward_lossy(black_box(&input), &mut rt)))
    });
}

fn bench_microdeep_forward_quantized(c: &mut Criterion) {
    let (mut net, _) = temperature_net(9);
    let mut rng = SeedRng::new(10);
    let input = Tensor::uniform(vec![1, 17, 25], 1.0, &mut rng);
    let mut quantized = QuantizedCnn::new(&mut net, std::slice::from_ref(&input));
    c.bench_function("microdeep_forward_quantized", |b| {
        b.iter(|| black_box(quantized.forward_quantized(black_box(&input))))
    });
}

fn bench_nn_dense_i8_blocked(c: &mut Criterion) {
    // The larger of the two dense layers in the temperature CNN
    // geometry: 32 outputs over a flattened pooled volume.
    let (in_len, out_len) = (4 * 8 * 12, 32);
    let weights: Vec<i8> = (0..in_len * out_len)
        .map(|i| ((i * 37) % 255) as i8)
        .collect();
    let input: Vec<i8> = (0..in_len).map(|i| ((i * 53) % 255) as i8).collect();
    let bias: Vec<i32> = (0..out_len).map(|o| (o as i32) * 11 - 176).collect();
    c.bench_function("nn_dense_i8_blocked", |b| {
        b.iter(|| {
            black_box(dense_i8_blocked(
                black_box(&weights),
                black_box(&bias),
                black_box(&input),
                out_len,
            ))
        })
    });
}

/// A compact serving stack: two tenants on a 3×3 mesh, one second of
/// offered load through admission, EDF queues, batching, and dispatch.
fn serve_second() -> zeiot_serve::ServeOutcome {
    let topo = Topology::grid(3, 3, 2.0, 3.0).expect("valid grid");
    let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).expect("valid config");
    let graph = config.unit_graph().expect("valid graph");
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    let mut rng = SeedRng::new(6);
    let pool: Vec<(Tensor, usize)> = (0..8)
        .map(|i| (Tensor::uniform(vec![1, 8, 8], 1.0, &mut rng), i % 2))
        .collect();
    let tenants: Vec<Tenant> = [
        ("motion", ArrivalProcess::poisson(24.0)),
        (
            "doors",
            ArrivalProcess::periodic(SimDuration::from_millis(80)),
        ),
    ]
    .into_iter()
    .map(|(name, arrivals)| {
        let net = DistributedCnn::new(
            config,
            assignment.clone(),
            WeightUpdate::Independent,
            &mut SeedRng::new(7),
        );
        let spec = TenantSpec::new(name, arrivals, SimDuration::from_millis(400));
        Tenant::new(spec, net, pool.clone()).expect("non-empty pool")
    })
    .collect();
    let serve_config = ServeConfig::new(2, 4, 16, SimDuration::from_millis(40))
        .expect("valid config")
        .with_batch_overhead(SimDuration::from_millis(10));
    let mut server = Server::new(serve_config, topo, tenants).expect("tenants present");
    server.run(8, SimDuration::from_secs(1), None)
}

fn bench_serve_dispatch(c: &mut Criterion) {
    c.bench_function("serve_dispatch_two_tenants_1s", |b| {
        b.iter(|| black_box(serve_second()))
    });
}

fn bench_replace_incremental(c: &mut Criterion) {
    // Re-plan the temperature CNN after a two-node brownout: the warm
    // start should stay proportional to the orphan count, which is
    // what makes per-request polling affordable in the serving loop.
    let (net, topo) = temperature_net(11);
    let graph = net.config().unit_graph().expect("valid graph");
    let assignment = net.assignment().clone();
    let down = [
        zeiot_core::id::NodeId::new(12),
        zeiot_core::id::NodeId::new(27),
    ];
    c.bench_function("microdeep_replace_incremental", |b| {
        b.iter(|| {
            black_box(plan_incremental(
                black_box(&graph),
                black_box(&topo),
                black_box(&assignment),
                black_box(&down),
                usize::MAX,
            ))
        })
    });
}

fn bench_scenario_fuse_step(c: &mut Criterion) {
    // One E14 fusion instant: normalize four modalities' raw scores
    // into bounded log-posteriors and pool them under reliability
    // weights — the per-observation cost of the fusion engine.
    use zeiot_scenario::{
        log_posterior, Evidence, FusionEngine, FusionPolicy, DEFAULT_EVIDENCE_FLOOR,
    };
    let raw: [(Vec<f64>, f64); 4] = [
        (vec![-812.0, -260.0, -905.0], 0.82),
        (vec![-14.2, -9.8, -11.3], 0.61),
        (vec![-3.0, -1.5, -2.2], 0.43),
        (vec![0.4, 1.9, -0.7], 0.72),
    ];
    let mut engine = FusionEngine::new(FusionPolicy::ReliabilityWeighted);
    c.bench_function("scenario_fuse_step", |b| {
        b.iter(|| {
            let evidence: Vec<Evidence> = black_box(&raw)
                .iter()
                .map(|(scores, weight)| Evidence {
                    log_scores: log_posterior(scores, DEFAULT_EVIDENCE_FLOOR),
                    weight: *weight,
                })
                .collect();
            black_box(engine.estimate(&evidence))
        })
    });
}

fn bench_audit_workspace_scan(c: &mut Criterion) {
    // The audit's end-to-end cost: walk every workspace source, lex,
    // parse items, build the symbol graph, and run all ten rules. This
    // bounds the latency the audit adds to CI and local gates.
    use zeiot_audit::{audit_workspace, AuditConfig};
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = AuditConfig::default();
    c.bench_function("audit_workspace_scan", |b| {
        b.iter(|| black_box(audit_workspace(black_box(&root), &config, None).expect("scan runs")))
    });
}

fn results_json(c: &Criterion) -> String {
    let mut out =
        String::from("{\n  \"schema\": \"zeiot-bench-trajectory/1\",\n  \"benches\": [\n");
    let rows: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            format!(
                "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}",
                r.id, r.mean_nanos, r.iterations
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // cargo bench passes --bench through to the target; ignore it.
    args.retain(|a| a != "--bench");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) if i + 1 < args.len() => args[i + 1].clone(),
        Some(_) => {
            eprintln!("--out requires a path");
            std::process::exit(2);
        }
        None => "BENCH_10.json".to_string(),
    };
    let iters: u32 = std::env::var("ZEIOT_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let mut criterion = Criterion::default().with_iterations(iters);
    bench_microdeep_forward(&mut criterion);
    bench_microdeep_forward_lossy(&mut criterion);
    bench_microdeep_forward_quantized(&mut criterion);
    bench_nn_dense_i8_blocked(&mut criterion);
    bench_replace_incremental(&mut criterion);
    bench_serve_dispatch(&mut criterion);
    bench_scenario_fuse_step(&mut criterion);
    bench_audit_workspace_scan(&mut criterion);
    let json = results_json(&criterion);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
