//! Criterion: wireless-sensing hot paths — the per-observation cost of
//! each estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zeiot_core::geometry::Point2;
use zeiot_core::rng::SeedRng;
use zeiot_data::csi::{CsiGenerator, CsiPattern};
use zeiot_net::rssi::RssiSampler;
use zeiot_net::Topology;
use zeiot_sensing::csi::CsiLocalizer;
use zeiot_sensing::pem::Pem;

fn bench_csi_localize(c: &mut Criterion) {
    let gen = CsiGenerator::new(1).unwrap();
    let mut rng = SeedRng::new(1);
    let pattern = CsiPattern::all()[4];
    let (train, test) = gen.split(pattern, 40, 1, &mut rng);
    let pairs: Vec<(Vec<f64>, usize)> = train
        .into_iter()
        .map(|s| (s.features, s.position))
        .collect();
    let localizer = CsiLocalizer::fit(&pairs, 5).unwrap();
    let probe = test[0].features.clone();
    c.bench_function("csi_localize_624f_280train", |b| {
        b.iter(|| black_box(localizer.localize(black_box(&probe))))
    });
}

fn bench_rssi_matrix(c: &mut Criterion) {
    let topo = Topology::grid(4, 4, 3.0, 4.5).unwrap();
    let sampler = RssiSampler::ieee802154(topo).unwrap();
    let mut prng = SeedRng::new(2);
    let people: Vec<Point2> = (0..10)
        .map(|_| Point2::new(prng.uniform_range(0.0, 9.0), prng.uniform_range(0.0, 9.0)))
        .collect();
    c.bench_function("rssi_inter_node_matrix_16_nodes_10_people", |b| {
        b.iter(|| {
            let mut rng = SeedRng::new(3);
            black_box(sampler.inter_node_rssi(black_box(&people), &mut rng))
        })
    });
}

fn bench_pem(c: &mut Criterion) {
    let pem = Pem::new(0.3).unwrap();
    let mut rng = SeedRng::new(4);
    let snapshots: Vec<Vec<f64>> = (0..30)
        .map(|_| (0..624).map(|_| rng.normal()).collect())
        .collect();
    c.bench_function("pem_30x624", |b| {
        b.iter(|| black_box(pem.score(black_box(&snapshots))))
    });
}

criterion_group!(benches, bench_csi_localize, bench_rssi_matrix, bench_pem);
criterion_main!(benches);
