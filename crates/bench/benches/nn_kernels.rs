//! Criterion: neural-network hot paths — the compute a sensor node (or
//! the centralized baseline) performs per sample.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zeiot_core::rng::SeedRng;
use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
use zeiot_net::Topology;
use zeiot_nn::layers::{Conv2d, Dense, Layer, MaxPool2d};
use zeiot_nn::tensor::Tensor;

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = SeedRng::new(1);
    let mut conv = Conv2d::new(1, 4, 17, 25, 4, 1, 0, &mut rng);
    let input = Tensor::uniform(vec![1, 17, 25], 1.0, &mut rng);
    c.bench_function("conv2d_forward_17x25_4f", |b| {
        b.iter(|| black_box(conv.forward(black_box(&input))))
    });
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut rng = SeedRng::new(2);
    let mut conv = Conv2d::new(1, 4, 17, 25, 4, 1, 0, &mut rng);
    let input = Tensor::uniform(vec![1, 17, 25], 1.0, &mut rng);
    let out = conv.forward(&input);
    let grad = Tensor::uniform(out.shape().to_vec(), 1.0, &mut rng);
    c.bench_function("conv2d_backward_17x25_4f", |b| {
        b.iter(|| black_box(conv.backward(black_box(&grad))))
    });
}

fn bench_dense_forward(c: &mut Criterion) {
    let mut rng = SeedRng::new(3);
    let mut dense = Dense::new(308, 32, &mut rng);
    let input = Tensor::uniform(vec![308], 1.0, &mut rng);
    c.bench_function("dense_forward_308x32", |b| {
        b.iter(|| black_box(dense.forward(black_box(&input))))
    });
}

fn bench_pool_forward(c: &mut Criterion) {
    let mut pool = MaxPool2d::new(4, 14, 22, 2);
    let mut rng = SeedRng::new(4);
    let input = Tensor::uniform(vec![4, 14, 22], 1.0, &mut rng);
    c.bench_function("maxpool_forward_4x14x22", |b| {
        b.iter(|| black_box(pool.forward(black_box(&input))))
    });
}

fn bench_distributed_training_step(c: &mut Criterion) {
    let mut rng = SeedRng::new(5);
    let config = CnnConfig::new(1, 17, 25, 4, 4, 2, 32, 2).unwrap();
    let graph = config.unit_graph().unwrap();
    let topo = Topology::grid(10, 5, 5.0, 7.6).unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    let mut net = DistributedCnn::new(config, assignment, WeightUpdate::PerUnit, &mut rng);
    let input = Tensor::uniform(vec![1, 17, 25], 1.0, &mut rng);
    c.bench_function("microdeep_train_step_temperature", |b| {
        b.iter(|| {
            let logits = net.forward(black_box(&input));
            let (_, grad) = zeiot_nn::loss::cross_entropy(&logits, 0);
            net.backward(&grad);
            net.apply_gradients(0.05);
        })
    });
}

criterion_group!(
    benches,
    bench_conv_forward,
    bench_conv_backward,
    bench_dense_forward,
    bench_pool_forward,
    bench_distributed_training_step
);
criterion_main!(benches);
