//! Paper-vs-measured reporting.
//!
//! Every harness emits the same structure: an experiment id, the paper's
//! reported value per metric, and what this reproduction measured — so
//! EXPERIMENTS.md can be regenerated mechanically and the shape of each
//! result (who wins, by what factor) is auditable at a glance.

use serde::{Deserialize, Serialize};
use std::fmt;
use zeiot_obs::{GaugeEntry, Label, Snapshot};

/// One metric row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Metric name, e.g. `"accuracy (MicroDeep)"`.
    pub metric: String,
    /// The paper's reported value, if it reports one.
    pub paper: Option<f64>,
    /// The value this reproduction measured.
    pub measured: f64,
    /// Unit suffix, e.g. `"%"` or `"msgs"`.
    pub unit: String,
}

impl Row {
    /// Creates a row with a paper reference value.
    pub fn with_paper(
        metric: impl Into<String>,
        paper: f64,
        measured: f64,
        unit: impl Into<String>,
    ) -> Self {
        Self {
            metric: metric.into(),
            paper: Some(paper),
            measured,
            unit: unit.into(),
        }
    }

    /// Creates a row the paper reports only qualitatively.
    pub fn measured_only(
        metric: impl Into<String>,
        measured: f64,
        unit: impl Into<String>,
    ) -> Self {
        Self {
            metric: metric.into(),
            paper: None,
            measured,
            unit: unit.into(),
        }
    }
}

/// A complete experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id (E1–E8).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Metric rows.
    pub rows: Vec<Row>,
    /// Free-form series (e.g. per-node cost profiles for Fig. 10).
    pub series: Vec<(String, Vec<f64>)>,
    /// Observability snapshot captured during the run, if the harness
    /// instrumented it.
    pub metrics: Option<Snapshot>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
            series: Vec::new(),
            metrics: None,
        }
    }

    /// Attaches an observability snapshot to the report.
    pub fn attach_metrics(&mut self, snapshot: Snapshot) -> &mut Self {
        self.metrics = Some(snapshot);
        self
    }

    /// The report as an exportable snapshot: the attached subsystem
    /// metrics (if any) plus one `bench.<metric>` gauge per row, labeled
    /// with the experiment id — so `--jsonl` dumps are uniform across
    /// harnesses whether or not they instrument subsystems.
    pub fn export_snapshot(&self) -> Snapshot {
        let mut snap = self.metrics.clone().unwrap_or_default();
        for row in &self.rows {
            snap.gauges.push(GaugeEntry {
                name: format!("bench.{}", row.metric),
                label: Label::part(self.id.as_str()),
                value: row.measured,
            });
        }
        snap
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Appends a named series.
    pub fn push_series(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.series.push((name.into(), values));
        self
    }

    /// Looks up a row by metric name.
    pub fn row(&self, metric: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.metric == metric)
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if serialization fails (it cannot for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(
            f,
            "{:<44} {:>12} {:>12}  unit",
            "metric", "paper", "measured"
        )?;
        for row in &self.rows {
            let paper = row
                .paper
                .map(|p| format!("{p:.3}"))
                .unwrap_or_else(|| "—".to_owned());
            writeln!(
                f,
                "{:<44} {:>12} {:>12.3}  {}",
                row.metric, paper, row.measured, row.unit
            )?;
        }
        for (name, values) in &self.series {
            write!(f, "series {name}: [")?;
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.1}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_lookup() {
        let mut r = ExperimentReport::new("E1", "temperature");
        r.push(Row::with_paper("accuracy", 0.97, 0.955, "fraction"));
        r.push(Row::measured_only("epochs", 15.0, "count"));
        assert_eq!(r.row("accuracy").unwrap().paper, Some(0.97));
        assert!(r.row("missing").is_none());
    }

    #[test]
    fn display_contains_all_metrics() {
        let mut r = ExperimentReport::new("E2", "motion");
        r.push(Row::with_paper("max cost (optimal)", 360.0, 352.0, "msgs"));
        r.push_series("per-node", vec![1.0, 2.0, 3.0]);
        let s = r.to_string();
        assert!(s.contains("E2"));
        assert!(s.contains("max cost (optimal)"));
        assert!(s.contains("series per-node"));
    }

    #[test]
    fn json_round_trip() {
        let mut r = ExperimentReport::new("E3", "mac");
        r.push(Row::measured_only("per", 0.02, "fraction"));
        let back: ExperimentReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }
}
