//! Deterministic parallel sweep execution.
//!
//! Every E1–E8 harness is, at heart, a sweep: a list of independent
//! points (device counts, harvest powers, CSI patterns, model arms…)
//! each evaluated from a seed. [`SweepRunner`] fans those points out
//! across threads while keeping the result **bit-identical to the serial
//! run**, which rests on three rules:
//!
//! 1. **Per-point RNG derivation.** Each point's generator is
//!    [`SeedRng::for_point`]`(master_seed, index)` — a pure function of
//!    the master seed and the point index, never a stream threaded from
//!    point to point. No point's randomness depends on which thread ran
//!    it or what ran before it.
//! 2. **Per-point recorders.** Each point records observability into its
//!    own [`Recorder`]; no shared mutable instrument exists during the
//!    sweep.
//! 3. **Index-ordered fan-in.** Outputs land in slots indexed by point,
//!    and the per-point snapshots are merged with
//!    [`Snapshot::merge_in_order`] after *all* points finish — completion
//!    order never leaks into the result.
//!
//! `--threads 1` therefore runs the exact computation a `--threads 8` run
//! does, just on one thread; `tests/parallel_determinism.rs` at the
//! workspace root asserts the reports are byte-identical.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use zeiot_core::rng::SeedRng;
use zeiot_obs::{Recorder, Snapshot};

/// Everything a sweep produced: one output per point, in point order,
/// plus the index-ordered merge of every point's observability snapshot.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// Per-point outputs, indexed by point.
    pub outputs: Vec<T>,
    /// All points' recorders, merged in point order.
    pub metrics: Snapshot,
}

/// Fans the points of an experiment sweep out across threads; see the
/// module docs for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    threads: NonZeroUsize,
}

impl SweepRunner {
    /// A runner with an explicit thread count; `0` means "use the host's
    /// available parallelism" (the binaries' `--threads` default).
    pub fn new(threads: usize) -> Self {
        let threads = match NonZeroUsize::new(threads) {
            Some(t) => t,
            None => NonZeroUsize::new(rayon::current_num_threads())
                .unwrap_or(NonZeroUsize::new(1).expect("1 is non-zero")),
        };
        Self { threads }
    }

    /// The single-threaded runner — today's serial harness behavior.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Evaluates `points` sweep points, each with its own derived RNG and
    /// its own recorder, and returns outputs and metrics in point-index
    /// order regardless of thread count.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any point's closure.
    pub fn run_seeded<T, F>(&self, master_seed: u64, points: usize, f: F) -> SweepOutcome<T>
    where
        T: Send,
        F: Fn(usize, &mut SeedRng, &mut Recorder) -> T + Sync,
    {
        let workers = self.threads.get().min(points.max(1));
        let evaluate = |index: usize| {
            let mut rng = SeedRng::for_point(master_seed, index as u64);
            let mut recorder = Recorder::new();
            let output = f(index, &mut rng, &mut recorder);
            (output, recorder.snapshot())
        };

        let results: Vec<(T, Snapshot)> = if workers <= 1 {
            (0..points).map(evaluate).collect()
        } else {
            // Index-addressed slots: workers race for the *next point*,
            // never for where a result lands.
            let slots: Vec<Mutex<Option<(T, Snapshot)>>> =
                (0..points).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            rayon::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= points {
                            break;
                        }
                        let result = evaluate(index);
                        *slots[index].lock().expect("slot lock") = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("slot lock")
                        .expect("every point evaluated")
                })
                .collect()
        };

        let mut outputs = Vec::with_capacity(points);
        let mut snapshots = Vec::with_capacity(points);
        for (output, snapshot) in results {
            outputs.push(output);
            snapshots.push(snapshot);
        }
        SweepOutcome {
            outputs,
            metrics: Snapshot::merge_in_order(snapshots),
        }
    }
}

impl Default for SweepRunner {
    /// Defaults to the host's available parallelism, like the binaries.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use zeiot_core::time::SimTime;
    use zeiot_obs::Label;

    fn sweep_with(threads: usize) -> SweepOutcome<Vec<u64>> {
        SweepRunner::new(threads).run_seeded(42, 9, |index, rng, recorder| {
            recorder.add("sweep.draws", Label::part(format!("p{index}")), 3);
            recorder.sample(
                "sweep.first",
                Label::Global,
                SimTime::from_secs(index as u64),
                rng.uniform(),
            );
            (0..3).map(|_| rng.next_u64()).collect()
        })
    }

    #[test]
    fn outputs_are_in_point_order_and_thread_invariant() {
        let serial = sweep_with(1);
        for threads in [2, 4, 8] {
            let parallel = sweep_with(threads);
            assert_eq!(serial.outputs, parallel.outputs, "threads={threads}");
            assert_eq!(serial.metrics, parallel.metrics, "threads={threads}");
        }
    }

    #[test]
    fn points_use_derived_streams() {
        let outcome = sweep_with(1);
        // Every point's stream equals its SeedRng::for_point derivation…
        for (index, output) in outcome.outputs.iter().enumerate() {
            let mut rng = SeedRng::for_point(42, index as u64);
            let _ = rng.uniform(); // the closure's sample() draw
            let expected: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
            assert_eq!(output, &expected);
        }
        // …and distinct points get distinct streams.
        assert_ne!(outcome.outputs[0], outcome.outputs[1]);
    }

    #[test]
    fn metrics_merge_in_point_order() {
        let outcome = sweep_with(4);
        let labels: Vec<String> = outcome
            .metrics
            .counters_named("sweep.draws")
            .map(|e| e.label.to_string())
            .collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted, "per-point labels out of order");
        assert_eq!(outcome.metrics.counter_total("sweep.draws"), 27);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert_eq!(
            SweepRunner::new(0).threads(),
            rayon::current_num_threads().max(1)
        );
        assert_eq!(SweepRunner::serial().threads(), 1);
        assert!(SweepRunner::default().threads() >= 1);
    }

    #[test]
    fn empty_sweeps_and_more_threads_than_points_are_fine() {
        let empty = SweepRunner::new(4).run_seeded(1, 0, |_, _, _| 0u8);
        assert!(empty.outputs.is_empty());
        let tiny = SweepRunner::new(16).run_seeded(1, 2, |i, _, _| i);
        assert_eq!(tiny.outputs, vec![0, 1]);
    }
}
