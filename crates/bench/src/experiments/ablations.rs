//! The ablation suite of DESIGN.md §5, as one harness.
//!
//! Each ablation isolates one design decision and reports the metric it
//! trades: assignment strategy → peak communication cost; weight-update
//! independence → accuracy and replica divergence; dummy carriers →
//! backscatter delivery under thin WLAN traffic; value caching → traffic
//! saved per strategy; resilience → peak cost as nodes die.

use crate::report::{ExperimentReport, Row};
use zeiot_backscatter::mac::{simulate, MacConfig, MacMode};
use zeiot_core::id::NodeId;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_data::gait::GaitGenerator;
use zeiot_microdeep::replace::plan_incremental;
use zeiot_microdeep::{Assignment, CnnConfig, CostModel, DistributedCnn, WeightUpdate};
use zeiot_net::Topology;

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Gait windows for the weight-update ablation.
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Simulated seconds for the MAC ablation.
    pub mac_seconds: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            samples: 400,
            epochs: 12,
            mac_seconds: 30,
            seed: 5,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            samples: 150,
            epochs: 6,
            mac_seconds: 8,
            seed: 5,
        }
    }
}

/// Runs the ablation suite.
pub fn run(params: &Params) -> ExperimentReport {
    let mut report = ExperimentReport::new("A0", "Ablation suite (DESIGN.md §5)");
    let config = CnnConfig::new(10, 8, 8, 4, 3, 2, 16, 2).expect("valid");
    let graph = config.unit_graph().expect("valid");
    let topo = Topology::grid(8, 8, 0.5, 0.75).expect("valid");
    let cost = CostModel::new(&topo);

    // --- 1. Assignment strategies. ---
    let strategies: [(&str, Assignment); 3] = [
        ("centralized", Assignment::centralized(&graph, &topo)),
        (
            "grid-projection",
            Assignment::grid_projection(&graph, &topo),
        ),
        (
            "balanced-correspondence",
            Assignment::balanced_correspondence(&graph, &topo),
        ),
    ];
    for (name, assignment) in &strategies {
        let plain = cost.forward_cost(&graph, assignment);
        let cached = cost.forward_cost_cached(&graph, assignment);
        report.push(Row::measured_only(
            format!("max cost, {name}"),
            plain.max_cost() as f64,
            "msgs/pass",
        ));
        report.push(Row::measured_only(
            format!("caching saves, {name}"),
            1.0 - cached.max_cost() as f64 / plain.max_cost() as f64,
            "fraction of peak",
        ));
    }

    // --- 2. Weight-update independence. ---
    let mut rng = SeedRng::new(params.seed);
    let data = GaitGenerator::paper_array()
        .expect("valid")
        .generate(params.samples, 5, &mut rng);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    for (name, update) in [
        ("synchronized", WeightUpdate::Synchronized),
        ("per-node replicas", WeightUpdate::Independent),
        ("per-unit", WeightUpdate::PerUnit),
    ] {
        let mut train_rng = rng.split();
        let mut net = DistributedCnn::new(config, assignment.clone(), update, &mut train_rng);
        for _ in 0..params.epochs {
            net.train_epoch(train, 0.05, 16, &mut train_rng);
        }
        report.push(Row::measured_only(
            format!("accuracy, {name} updates"),
            net.accuracy(test),
            "fraction",
        ));
        report.push(Row::measured_only(
            format!("divergence, {name} updates"),
            net.replica_divergence(),
            "L2",
        ));
    }

    // --- 3. Dummy carriers under thin WLAN traffic. ---
    let mut thin = MacConfig::default_with_devices(10).expect("valid");
    thin.wlan_arrival_rate_hz = 2.0;
    let duration = SimDuration::from_secs(params.mac_seconds);
    let mut mac_rng = SeedRng::new(params.seed);
    let with_dummies = simulate(&thin, MacMode::Scheduled, duration, &mut mac_rng);
    let mut mac_rng = SeedRng::new(params.seed);
    let without = simulate(&thin, MacMode::Naive, duration, &mut mac_rng);
    report.push(Row::measured_only(
        "bs delivery, thin WLAN, with dummy carriers",
        with_dummies.backscatter_delivery_ratio(),
        "fraction",
    ));
    report.push(Row::measured_only(
        "bs delivery, thin WLAN, without (naive)",
        without.backscatter_delivery_ratio(),
        "fraction",
    ));
    report.push(Row::measured_only(
        "dummy airtime paid",
        with_dummies.dummy_overhead(),
        "fraction",
    ));

    // --- 4. Resilience: peak cost as nodes die. ---
    let mut kills = Vec::new();
    let mut peaks = Vec::new();
    for kill in [0usize, 4, 8, 16] {
        let failed: Vec<NodeId> = (0..kill as u32).map(|i| NodeId::new(i * 3 + 1)).collect();
        let (repaired, _) = plan_incremental(&graph, &topo, &assignment, &failed, usize::MAX);
        let degraded = topo.without_nodes(&failed);
        let c = CostModel::new(&degraded).forward_cost(&graph, &repaired);
        kills.push(kill as f64);
        peaks.push(c.max_cost() as f64);
    }
    report.push_series("failed nodes", kills);
    report.push_series("peak cost after recovery", peaks);

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_suite_orders_hold() {
        let report = run(&Params::reduced());
        // Assignment ordering.
        let central = report.row("max cost, centralized").unwrap().measured;
        let balanced = report
            .row("max cost, balanced-correspondence")
            .unwrap()
            .measured;
        assert!(balanced < central);
        // Caching helps centralized more than balanced.
        let save_central = report.row("caching saves, centralized").unwrap().measured;
        let save_balanced = report
            .row("caching saves, balanced-correspondence")
            .unwrap()
            .measured;
        assert!(save_central > save_balanced);
        // Synchronized never diverges.
        let sync_div = report
            .row("divergence, synchronized updates")
            .unwrap()
            .measured;
        assert!(sync_div < 1e-6);
        // Dummy carriers rescue thin-traffic delivery.
        let with = report
            .row("bs delivery, thin WLAN, with dummy carriers")
            .unwrap()
            .measured;
        let without = report
            .row("bs delivery, thin WLAN, without (naive)")
            .unwrap()
            .measured;
        assert!(with > without + 0.3, "with={with} without={without}");
    }
}
