//! E13 — runtime re-placement under brownouts: recovery × outage ×
//! budget.
//!
//! No table in the paper corresponds to this harness; it evaluates the
//! runtime re-placement engine (`zeiot_microdeep::replace`, DESIGN.md
//! §12) against the static alternatives it subsumes. One baseline is
//! trained and shared; every sweep point fixes an outage level (how
//! many mesh nodes duty-cycle on `zeiot-energy` capacitor traces), a
//! migration budget and a recovery policy, then serves the E10 tenant
//! mix four times — once per [`Recovery`] arm — through the *same*
//! fault fabric, and the report answers:
//!
//! - **what does re-placement buy?** Per-arm serving accuracy, logit
//!   deviation from the clean model, and substituted (degraded) fabric
//!   deliveries: the engine re-homes units off dark nodes between
//!   requests instead of letting their outputs degrade for the rest of
//!   the run. Units migrate; dead *sensors* do not — so the headline
//!   is restored compute fidelity (`none − incremental` logit
//!   deviation), and restoration is bounded by surviving input
//!   coverage.
//! - **what does it cost?** Migrations executed, state-handoff frames
//!   and their radio cost — handoffs ride the lossy fabric and are
//!   charged against it like any other traffic.
//! - **is it honest about budgets?** The incremental arm strands units
//!   rather than exceed its per-epoch migration budget;
//!   `budget_exhausted` epochs are reported per point.
//! - **is it deterministic?** Zero-outage points produce byte-identical
//!   reports across all four arms (the engine is a strict no-op without
//!   faults), and the report and trace JSONL export are byte-identical
//!   across `--threads 1/4` (CI diffs the `e13_replace` bin's output).

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::id::NodeId;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_core::units::Watt;
use zeiot_energy::capacitor::Capacitor;
use zeiot_energy::consumer::PowerProfile;
use zeiot_energy::harvester::ConstantSource;
use zeiot_energy::intermittent::IntermittentDevice;
use zeiot_fault::{DegradeMode, FaultPlan, RecoveryPolicy};
use zeiot_microdeep::replace::{apply_offline, plan_incremental, ReplaceConfig};
use zeiot_microdeep::{Assignment, DistributedCnn, WeightUpdate};
use zeiot_nn::tensor::Tensor;
use zeiot_obs::trace::{Trace, TraceSampler, Tracer};
use zeiot_serve::{DegradedServing, Outcome, ServeConfig, ServeReport, Server, Tenant};

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Labelled samples per class (training + tenant request pools).
    pub samples_per_class: usize,
    /// Training epochs for the shared baseline model.
    pub epochs: usize,
    /// Simulated serving horizon per arm, in seconds.
    pub horizon_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// Deterministic trace sampling rate in `[0, 1]`.
    pub sample_rate: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            samples_per_class: 40,
            epochs: 10,
            horizon_secs: 8,
            seed: 42,
            sample_rate: 0.25,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            samples_per_class: 24,
            epochs: 5,
            horizon_secs: 3,
            seed: 42,
            sample_rate: 0.5,
        }
    }
}

/// How a run recovers from node outages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// No recovery: the static placement degrades for the whole run.
    None,
    /// Offline pre-repair: units are moved off every node that will
    /// *ever* brown out, before serving starts — the a-priori
    /// `resilience` path the engine subsumes, with perfect foresight
    /// and free state transfer.
    Static,
    /// The runtime engine, warm-started incremental search under the
    /// point's migration budget.
    Incremental,
    /// The runtime engine, full re-solve (unbounded migrations).
    FullResolve,
}

impl Recovery {
    fn label(self) -> &'static str {
        match self {
            Recovery::None => "none",
            Recovery::Static => "static",
            Recovery::Incremental => "incremental",
            Recovery::FullResolve => "full-resolve",
        }
    }
}

/// The four recovery arms every sweep point serves through.
pub const ARMS: [Recovery; 4] = [
    Recovery::None,
    Recovery::Static,
    Recovery::Incremental,
    Recovery::FullResolve,
];

/// Brownout node counts swept (0 = healthy mesh).
pub const OUTAGE_LEVELS: [usize; 3] = [0, 2, 3];

/// Per-epoch migration budgets swept (incremental arm only).
pub const BUDGETS: [usize; 2] = [1, 8];

/// Recovery policies swept for lost fabric messages.
pub const POLICIES: [RecoveryPolicy; 2] = [
    RecoveryPolicy::Degrade {
        mode: DegradeMode::ZeroFill,
    },
    RecoveryPolicy::Retransmit {
        max_retries: 2,
        timeout: SimDuration::from_millis(50),
        backoff: 2.0,
    },
];

/// Per-attempt fabric loss rate outside outage windows. Kept at zero
/// so the arms differ only in how they handle *outages*: migration
/// trades spatial locality for availability, and a background loss
/// floor would tax the relocated units' longer routes and muddy the
/// recovery comparison.
const LOSS_RATE: f64 = 0.0;

/// Worker time per inference (matches E10–E12).
const SERVICE_TIME: SimDuration = SimDuration::from_millis(40);

/// Fixed worker time per dispatched micro-batch (matches E10–E12).
const BATCH_OVERHEAD: SimDuration = SimDuration::from_millis(10);

/// Fabric clock advance per executed inference (matches E10–E12).
const PASS_PERIOD: SimDuration = SimDuration::from_millis(500);

/// Simulated-time budget of the capacitor traces driving the brownout
/// outage windows (matches E9).
const TRACE_BUDGET: SimDuration = SimDuration::from_secs(120);

/// Brownout candidates in dark-first order: [`OUTAGE_LEVELS`] level
/// `k` puts capacitor traces on the first `k`. Nodes 6 and 2 sit in
/// the mesh's signal-free corners (neither class lights their sensor
/// quadrant) yet host dense compute under `balanced_correspondence` —
/// their brownouts are fully recoverable by re-placement, while the
/// no-recovery arm loses hidden features and a logit unit outright.
/// Node 5 additionally covers class-1 pixels, so level 3 shows the
/// physics bound: units migrate, dead sensors do not.
const BROWNOUT_NODES: [u32; 3] = [6, 2, 5];

/// A duty-cycling zero-energy device (E9's): the 15 µW harvest cannot
/// sustain the backscatter tag's 20 µW compute draw, so the capacitor
/// browns out periodically.
fn brownout_device() -> IntermittentDevice<ConstantSource> {
    IntermittentDevice::new(
        ConstantSource::new(Watt::new(15e-6)).expect("positive harvest"),
        Capacitor::new(100e-6, 2.4, 1.8, 3.0).expect("valid capacitor"),
        PowerProfile::backscatter_tag().expect("valid profile"),
        SimDuration::from_millis(10),
    )
    .expect("valid device")
}

/// `(outage level, budget, policy)` of sweep point `index`, row-major
/// over [`OUTAGE_LEVELS`] × [`BUDGETS`] × [`POLICIES`].
pub fn point(index: usize) -> (usize, usize, RecoveryPolicy) {
    let per_level = BUDGETS.len() * POLICIES.len();
    (
        OUTAGE_LEVELS[index / per_level],
        BUDGETS[(index / POLICIES.len()) % BUDGETS.len()],
        POLICIES[index % POLICIES.len()],
    )
}

/// Stable label of sweep point `index`.
fn point_label(index: usize) -> String {
    let (level, budget, policy) = point(index);
    format!("{level} dark, budget {budget}, {}", policy_label(&policy))
}

fn policy_label(policy: &RecoveryPolicy) -> &'static str {
    match policy {
        RecoveryPolicy::Degrade { .. } => "zero-fill",
        RecoveryPolicy::Retransmit { .. } => "retransmit",
        _ => "other",
    }
}

/// What one arm of one sweep point produced.
#[derive(Debug, Clone)]
struct ArmResult {
    report: ServeReport,
    traces: Vec<Trace>,
    /// Mean |served logit − clean-model logit| over every answered
    /// request — the compute-fidelity axis argmax accuracy is too
    /// coarse to resolve (amputating dense features rarely flips the
    /// easy two-class decision, but it always bends the logits).
    logit_deviation: f64,
}

impl ArmResult {
    /// Serving accuracy over the arm's labelled completions.
    fn accuracy(&self) -> f64 {
        let total = self.report.total();
        if total.labelled == 0 {
            0.0
        } else {
            total.correct as f64 / total.labelled as f64
        }
    }

    /// Fabric deliveries substituted (degraded) across the arm's run.
    fn degraded(&self) -> f64 {
        self.report
            .fault
            .as_ref()
            .map_or(0.0, |f| f.degraded as f64)
    }
}

/// One sweep point: the four arms in [`ARMS`] order.
#[derive(Debug, Clone)]
struct PointResult {
    arms: Vec<ArmResult>,
}

/// Runs E13 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E13 and discards the trace export.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    run_with_traces(params, runner).0
}

/// Runs E13: one clean baseline is trained and shared; each sweep
/// point derives its outage windows from capacitor traces, then serves
/// the E10 tenant mix once per recovery arm through an identical fault
/// fabric. Returns the report plus every sampled trace in `(point,
/// arm, tenant, seq)` order — byte-identical across thread counts.
pub fn run_with_traces(params: &Params, runner: &SweepRunner) -> (ExperimentReport, Vec<Trace>) {
    let mut data_rng = SeedRng::with_stream(params.seed, 0xDA7A);
    let data = super::e10_serving::generate_data(params.samples_per_class, &mut data_rng);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);

    let config = super::e10_serving::cnn_config();
    let topo = super::e10_serving::deployment();
    let graph = config.unit_graph().expect("valid config");
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    let mut model_rng = SeedRng::with_stream(params.seed, 0x0DE1);
    let mut baseline = DistributedCnn::new(
        config,
        assignment,
        WeightUpdate::Independent,
        &mut model_rng,
    );
    let mut train_rng = SeedRng::with_stream(params.seed, 0x7124);
    for _ in 0..params.epochs {
        baseline.train_epoch(train, 0.08, 8, &mut train_rng);
    }
    let baseline_json = baseline.to_json().expect("serializable model");

    let horizon = SimDuration::from_secs(params.horizon_secs);
    let plan_seed = params.seed ^ 0xFA17;
    let rate = params.sample_rate.clamp(0.0, 1.0);
    let points = OUTAGE_LEVELS.len() * BUDGETS.len() * POLICIES.len();
    let pool: Vec<(Tensor, usize)> = test.to_vec();
    // Clean-model reference logits per pool sample (request `seq`
    // serves `pool[seq % len]`), for the per-arm fidelity axis.
    let refs: Vec<Vec<f32>> = pool
        .iter()
        .map(|(x, _)| baseline.forward(x).data().to_vec())
        .collect();

    let sweep = runner.run_seeded(params.seed ^ 0xE13A, points, |index, rng, recorder| {
        let (level, budget, policy) = point(index);

        // The point's fault fabric: a low uniform loss floor plus
        // capacitor-trace outage windows on the first `level` brownout
        // nodes. Every arm serves through a clone of this plan.
        let mut plan = FaultPlan::uniform(plan_seed, LOSS_RATE).expect("valid rate");
        let trace_horizon = SimTime::ZERO + TRACE_BUDGET;
        for &node in BROWNOUT_NODES.iter().take(level) {
            let trace = brownout_device().power_trace(TRACE_BUDGET, rng);
            plan = plan
                .with_outages_from_trace(NodeId::new(node), &trace, trace_horizon)
                .expect("valid trace");
        }
        // The a-priori casualty list the static arm repairs against:
        // every node whose capacitor ever browns out.
        let union_down: Vec<NodeId> = (0..topo.len() as u32)
            .map(NodeId::new)
            .filter(|&n| plan.outage_windows(n).next().is_some())
            .collect();

        let arms = ARMS
            .iter()
            .enumerate()
            .map(|(arm_index, &arm)| {
                let tenants: Vec<Tenant> = super::e10_serving::tenant_specs(1.0)
                    .into_iter()
                    .map(|ts| {
                        let mut net =
                            DistributedCnn::from_json(&baseline_json).expect("validated snapshot");
                        if arm == Recovery::Static && !union_down.is_empty() {
                            let (_, outcome) = {
                                let current = net.assignment().clone();
                                plan_incremental(&graph, &topo, &current, &union_down, usize::MAX)
                            };
                            apply_offline(&mut net, &graph, &outcome.migrations, &union_down);
                        }
                        Tenant::new(ts, net, pool.clone()).expect("non-empty pool")
                    })
                    .collect();
                let serve_config = ServeConfig::new(2, 4, 16, SERVICE_TIME)
                    .expect("valid config")
                    .with_batch_overhead(BATCH_OVERHEAD);
                let mut server =
                    Server::new(serve_config, super::e10_serving::deployment(), tenants)
                        .expect("tenants present");
                server = server.with_degraded(DegradedServing {
                    plan: plan.clone(),
                    policy,
                    pass_period: PASS_PERIOD,
                    stale_cache: true,
                    replace: match arm {
                        Recovery::None | Recovery::Static => None,
                        Recovery::Incremental => Some(ReplaceConfig::incremental(budget)),
                        Recovery::FullResolve => Some(ReplaceConfig::full_resolve()),
                    },
                });
                // Sampling is a pure function of (seed, point, arm,
                // trace id), so the sampled set is invariant to
                // threads and completion order.
                let mut tracer = Tracer::new(TraceSampler::rate(
                    params.seed ^ 0xE13 ^ ((index as u64) << 8) ^ ((arm_index as u64) << 4),
                    rate,
                ));
                // Only the incremental arm feeds the point's recorder:
                // serve time-series are append-only in virtual time,
                // which restarts at zero for every arm, and the engine
                // counters are what the metrics export is for.
                let rec = (arm == Recovery::Incremental).then_some(&mut *recorder);
                let outcome = server.run_traced(params.seed, horizon, rec, Some(&mut tracer));
                let (mut dev_sum, mut dev_n) = (0.0f64, 0usize);
                for c in &outcome.completions {
                    if let Outcome::Served { logits, .. } = &c.outcome {
                        let reference = &refs[(c.seq % refs.len() as u64) as usize];
                        for (&a, &b) in logits.iter().zip(reference) {
                            dev_sum += (f64::from(a) - f64::from(b)).abs();
                            dev_n += 1;
                        }
                    }
                }
                ArmResult {
                    report: outcome.report,
                    traces: tracer.take_finished(),
                    logit_deviation: if dev_n == 0 {
                        0.0
                    } else {
                        dev_sum / dev_n as f64
                    },
                }
            })
            .collect();
        PointResult { arms }
    });

    let mut report = ExperimentReport::new(
        "E13",
        "Runtime re-placement under brownouts: recovery arm x outage level x migration budget",
    );

    for (index, result) in sweep.outputs.iter().enumerate() {
        let label = point_label(index);
        for (arm, outcome) in ARMS.iter().zip(&result.arms) {
            report.push(Row::measured_only(
                format!("serving accuracy ({}, {label})", arm.label()),
                outcome.accuracy(),
                "fraction",
            ));
            report.push(Row::measured_only(
                format!("logit deviation ({}, {label})", arm.label()),
                outcome.logit_deviation,
                "logits",
            ));
            report.push(Row::measured_only(
                format!("degraded deliveries ({}, {label})", arm.label()),
                outcome.degraded(),
                "count",
            ));
        }
        for (name, arm_index) in [("incremental", 2), ("full-resolve", 3)] {
            let rstats = result.arms[arm_index].report.replace.unwrap_or_default();
            report.push(Row::measured_only(
                format!("migrations ({name}, {label})"),
                rstats.migrations as f64,
                "count",
            ));
            report.push(Row::measured_only(
                format!("handoff cost ({name}, {label})"),
                rstats.handoff_cost as f64,
                "hops",
            ));
        }
        let rstats = result.arms[2].report.replace.unwrap_or_default();
        report.push(Row::measured_only(
            format!("budget-exhausted epochs ({label})"),
            rstats.budget_exhausted as f64,
            "count",
        ));
    }

    // Fidelity the runtime engine restored over the no-recovery floor,
    // per point — the headline column. Restoration is bounded by
    // physics (units migrate off dark nodes, dead *sensors* do not),
    // which is why level 3 restores less than level 2: node 5's
    // class-1 pixels die with it.
    let restored: Vec<f64> = sweep
        .outputs
        .iter()
        .map(|r| r.arms[0].logit_deviation - r.arms[2].logit_deviation)
        .collect();
    for (index, delta) in restored.iter().enumerate() {
        report.push(Row::measured_only(
            format!("fidelity restored incr-none ({})", point_label(index)),
            *delta,
            "logits",
        ));
    }
    report.push_series("fidelity restored by point", restored);

    report.attach_metrics(sweep.metrics);
    let traces: Vec<Trace> = sweep
        .outputs
        .into_iter()
        .flat_map(|p| p.arms.into_iter().flat_map(|a| a.traces))
        .collect();
    (report, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_obs::trace::SpanLayer;

    #[test]
    fn point_grid_is_row_major() {
        assert_eq!(point(0).0, 0);
        assert_eq!(point(0).1, 1);
        assert_eq!(point(3).1, 8);
        assert_eq!(point(4).0, 2);
        assert_eq!(point(11).0, 3);
        assert_eq!(point(11).1, 8);
    }

    #[test]
    fn zero_outage_points_are_byte_identical_across_arms() {
        let params = Params::reduced();
        let (report, _) = run_with_traces(&params, &SweepRunner::serial());
        // At outage level 0 the engine is a strict no-op, so all four
        // arms must land on the same accuracy and fault totals.
        for index in 0..BUDGETS.len() * POLICIES.len() {
            let label = point_label(index);
            let acc: Vec<f64> = ARMS
                .iter()
                .map(|arm| {
                    report
                        .row(&format!("serving accuracy ({}, {label})", arm.label()))
                        .expect("row present")
                        .measured
                })
                .collect();
            assert!(
                acc.iter().all(|&a| a.to_bits() == acc[0].to_bits()),
                "zero-outage arms diverged at {label}: {acc:?}"
            );
            let degraded: Vec<f64> = ARMS
                .iter()
                .map(|arm| {
                    report
                        .row(&format!("degraded deliveries ({}, {label})", arm.label()))
                        .expect("row present")
                        .measured
                })
                .collect();
            assert!(
                degraded.iter().all(|&d| d == degraded[0]),
                "zero-outage fault totals diverged at {label}: {degraded:?}"
            );
            assert_eq!(
                report
                    .row(&format!("migrations (incremental, {label})"))
                    .expect("row present")
                    .measured,
                0.0
            );
        }
    }

    #[test]
    fn replacement_beats_no_recovery_and_stays_in_budget() {
        let params = Params::reduced();
        let (report, traces) = run_with_traces(&params, &SweepRunner::serial());
        let dark: Vec<usize> = [2, 3].iter().flat_map(|&l| points_at_level(l)).collect();
        // Under brownouts the incremental engine must migrate, pay
        // real handoff cost, and never out-migrate the full re-solve.
        let mut migrated = false;
        for &index in &dark {
            let label = point_label(index);
            let moves = row(&report, &format!("migrations (incremental, {label})"));
            let full_moves = row(&report, &format!("migrations (full-resolve, {label})"));
            assert!(
                moves <= full_moves,
                "budgeted engine out-migrated the full re-solve at {label}"
            );
            if moves > 0.0 {
                migrated = true;
                assert!(row(&report, &format!("handoff cost (incremental, {label})")) > 0.0);
            }
        }
        assert!(migrated, "no dark point migrated anything");
        // Fidelity is asserted on the zero-fill points: retransmit
        // retries already ride out the brownout windows (the none arm
        // sits at zero deviation), so re-placement has nothing to
        // restore there. Under zero-fill degrade the engine must
        // strictly restore fidelity, converge to the full re-solve at
        // the top budget, and show a budget dose-response.
        for &index in &dark {
            let (_, budget, policy) = point(index);
            if !matches!(policy, RecoveryPolicy::Degrade { .. }) {
                continue;
            }
            let label = point_label(index);
            let none_dev = row(&report, &format!("logit deviation (none, {label})"));
            let incr_dev = row(&report, &format!("logit deviation (incremental, {label})"));
            let full_dev = row(&report, &format!("logit deviation (full-resolve, {label})"));
            assert!(
                none_dev > 0.0,
                "brownouts left the no-recovery arm unscathed at {label}"
            );
            assert!(
                incr_dev < none_dev,
                "incremental did not restore fidelity at {label}: {incr_dev} vs {none_dev}"
            );
            if budget == BUDGETS[BUDGETS.len() - 1] {
                assert!(
                    incr_dev <= full_dev + 0.05,
                    "incremental fell behind the full re-solve at {label}: {incr_dev} vs {full_dev}"
                );
                // Accuracy non-regression only holds once the budget
                // lets repair outpace the transient: a budget-1 repair
                // crawls through asymmetric half-repaired states (one
                // logit path restored, the other still dark) that can
                // flip the argmax even while mean fidelity improves.
                let none_acc = row(&report, &format!("serving accuracy (none, {label})"));
                let incr_acc = row(&report, &format!("serving accuracy (incremental, {label})"));
                assert!(
                    incr_acc >= none_acc,
                    "incremental lost accuracy to no-recovery at {label}"
                );
            }
        }
        // Dose-response: at each dark level the bigger budget recovers
        // at least as much fidelity as the smaller one.
        for level in [2usize, 3] {
            let devs: Vec<f64> = BUDGETS
                .iter()
                .map(|&b| {
                    row(
                        &report,
                        &format!(
                            "logit deviation (incremental, {level} dark, budget {b}, zero-fill)"
                        ),
                    )
                })
                .collect();
            assert!(
                devs.windows(2).all(|w| w[1] <= w[0]),
                "budget dose-response broken at level {level}: {devs:?}"
            );
        }
        // Migration handoffs leave replace.migrate hop spans in the
        // sampled traces.
        assert!(
            traces.iter().any(|t| t
                .spans
                .iter()
                .any(|s| s.layer == SpanLayer::Hop && s.name == "replace.migrate")),
            "no replace.migrate spans sampled"
        );
    }

    #[test]
    fn report_and_traces_are_reproducible() {
        let (report_a, traces_a) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        let (report_b, traces_b) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        assert_eq!(report_a.to_json(), report_b.to_json());
        assert_eq!(traces_a, traces_b);
    }

    fn row(report: &ExperimentReport, label: &str) -> f64 {
        report.row(label).expect("row present").measured
    }

    fn points_at_level(level: usize) -> Vec<usize> {
        (0..OUTAGE_LEVELS.len() * BUDGETS.len() * POLICIES.len())
            .filter(|&i| point(i).0 == level)
            .collect()
    }
}
