//! E10 — multi-tenant inference serving under load and degradation.
//!
//! No table in the paper corresponds to this harness; it extends E9's
//! robustness probe from *one inference at a time* to *a serving layer
//! under offered load*: many context-recognition tenants sharing a
//! sensor mesh, each with its own request stream and latency contract
//! (`zeiot-serve`). The sweep crosses three axes over a MicroDeep
//! deployment trained once and shared by every point:
//!
//! - **offered load** — the same tenant mix at 0.25×, 1× and 3× its
//!   nominal rates. Light load is latency-bound (idle worker, p99 ≈
//!   batch time); overload is shed-bound (bounded queues shed with
//!   typed reasons rather than growing without bound).
//! - **shard count** — 1, 2, 4 worker shards for the same 1× load.
//!   More shards cut queueing delay until each shard holds one tenant.
//! - **micro-batch size** — 1, 4, 8 at 1× load. Batching amortizes the
//!   per-dispatch overhead, trading a little per-request service jitter
//!   for throughput headroom.
//!
//! A final group serves through `zeiot-fault` fabrics and walks the
//! degradation ladder: zero-fill and last-value-hold substitution keep
//! every request answered (degraded accuracy), while fail-fast plus the
//! stale-result cache answers aborted passes from the tenant's last
//! good logits — accuracy decays but the serving layer never goes
//! silent.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_fault::{DegradeMode, FaultPlan, RecoveryPolicy};
use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
use zeiot_net::Topology;
use zeiot_nn::tensor::Tensor;
use zeiot_serve::{
    ArrivalProcess, DegradedServing, ServeConfig, ServeReport, Server, Tenant, TenantSpec,
};

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Labelled samples per class (training + tenant request pools).
    pub samples_per_class: usize,
    /// Training epochs for the shared baseline model.
    pub epochs: usize,
    /// Simulated serving horizon per sweep point, in seconds.
    pub horizon_secs: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            samples_per_class: 60,
            epochs: 15,
            horizon_secs: 10,
            seed: 42,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            samples_per_class: 30,
            epochs: 6,
            horizon_secs: 4,
            seed: 42,
        }
    }
}

/// Load multipliers swept over the nominal tenant mix.
pub const LOAD_SCALES: [f64; 3] = [0.25, 1.0, 3.0];

/// Shard counts swept at nominal load.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Micro-batch sizes swept at nominal load.
pub const BATCH_SIZES: [usize; 3] = [1, 4, 8];

/// Worker time per inference.
const SERVICE_TIME: SimDuration = SimDuration::from_millis(40);

/// Fixed worker time per dispatched micro-batch.
const BATCH_OVERHEAD: SimDuration = SimDuration::from_millis(10);

/// Relative deadline granted to every request.
const DEADLINE: SimDuration = SimDuration::from_millis(400);

/// Fabric clock advance per executed inference (matches E9).
const PASS_PERIOD: SimDuration = SimDuration::from_millis(500);

/// One degradation setting of the final sweep group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Degradation {
    /// No fabric: exact in-memory serving.
    Lossless,
    /// Serve through a lossy fabric, substituting lost activations.
    Substitute {
        /// The substitution mode.
        mode: DegradeMode,
        /// Per-attempt drop probability.
        loss: f64,
    },
    /// Fail-fast fabric with the stale-result cache as fallback.
    StaleFallback {
        /// Per-attempt drop probability.
        loss: f64,
    },
}

impl Degradation {
    /// A short stable label for report rows.
    pub fn label(&self) -> String {
        match self {
            Degradation::Lossless => "lossless".to_owned(),
            Degradation::Substitute { mode, loss } => {
                let mode = match mode {
                    DegradeMode::ZeroFill => "zero-fill",
                    DegradeMode::LastValueHold => "last-value-hold",
                };
                format!("{mode}, p={loss:.3}")
            }
            Degradation::StaleFallback { loss } => format!("stale-cache, p={loss:.3}"),
        }
    }
}

/// The degradation settings swept (the lossless entry is the reference).
pub fn degradations() -> [Degradation; 4] {
    [
        Degradation::Lossless,
        Degradation::Substitute {
            mode: DegradeMode::ZeroFill,
            loss: 0.05,
        },
        Degradation::Substitute {
            mode: DegradeMode::LastValueHold,
            loss: 0.05,
        },
        Degradation::StaleFallback { loss: 0.001 },
    ]
}

/// One sweep point: a serving configuration to measure.
#[derive(Debug, Clone, PartialEq)]
struct PointSpec {
    shards: usize,
    batch: usize,
    load_scale: f64,
    degradation: Degradation,
}

/// The full deterministic point list: load × shards × batch groups, then
/// the degradation settings.
fn point_specs() -> Vec<PointSpec> {
    let nominal = |shards, batch, load_scale| PointSpec {
        shards,
        batch,
        load_scale,
        degradation: Degradation::Lossless,
    };
    let mut points: Vec<PointSpec> = LOAD_SCALES.iter().map(|&s| nominal(2, 4, s)).collect();
    points.extend(
        SHARD_COUNTS
            .iter()
            .filter(|&&n| n != 2)
            .map(|&n| nominal(n, 4, 1.0)),
    );
    points.extend(
        BATCH_SIZES
            .iter()
            .filter(|&&b| b != 4)
            .map(|&b| nominal(2, b, 1.0)),
    );
    points.extend(
        degradations()
            .into_iter()
            .skip(1) // lossless is the load group's 1.0× point
            .map(|d| PointSpec {
                shards: 2,
                batch: 4,
                load_scale: 1.0,
                degradation: d,
            }),
    );
    points
}

/// Index of the nominal point (1.0× load, 2 shards, batch 4) that the
/// shard/batch/degradation groups are compared against.
const NOMINAL: usize = 1;

/// The serving deployment: E9's mesh and CNN, so the messages-per-pass
/// and fault behaviour match the established numbers.
pub fn deployment() -> Topology {
    super::e9_faults::deployment()
}

/// The tenants' shared CNN geometry.
pub fn cnn_config() -> CnnConfig {
    super::e9_faults::cnn_config()
}

/// The nominal tenant mix: three context-recognition applications with
/// different arrival shapes and the same latency contract (shared with
/// E13).
pub(crate) fn tenant_specs(load_scale: f64) -> Vec<TenantSpec> {
    let mix = [
        ("motion", ArrivalProcess::poisson(8.0)),
        (
            "doors",
            ArrivalProcess::periodic(SimDuration::from_millis(150)),
        ),
        (
            "hvac",
            ArrivalProcess::bursts(
                3,
                SimDuration::from_millis(5),
                SimDuration::from_millis(400),
            ),
        ),
    ];
    mix.into_iter()
        .map(|(name, arrivals)| TenantSpec::new(name, arrivals.scaled(load_scale), DEADLINE))
        .collect()
}

/// Synthetic two-class 8×8 intensity data (E9's generator; shared with
/// E11).
pub(crate) fn generate_data(samples_per_class: usize, rng: &mut SeedRng) -> Vec<(Tensor, usize)> {
    let mut data = Vec::with_capacity(samples_per_class * 2);
    for _ in 0..samples_per_class {
        for class in 0..2usize {
            let mut img = Tensor::zeros(vec![1, 8, 8]);
            for y in 0..4 {
                for x in 0..4 {
                    let (yy, xx) = if class == 0 { (y, x) } else { (y + 4, x + 4) };
                    img.set(&[0, yy, xx], 1.0 + rng.normal_with(0.0, 0.1) as f32);
                }
            }
            data.push((img, class));
        }
    }
    data
}

/// Runs E10 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E10: one clean baseline is trained and shared, then every sweep
/// point builds a fresh server over it and serves its tenant mix for the
/// horizon. Results are identical for every thread count.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    let mut data_rng = SeedRng::with_stream(params.seed, 0xDA7A);
    let data = generate_data(params.samples_per_class, &mut data_rng);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);

    let config = cnn_config();
    let topo = deployment();
    let graph = config.unit_graph().expect("valid config");
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    let mut model_rng = SeedRng::with_stream(params.seed, 0x0DE1);
    let mut baseline = DistributedCnn::new(
        config,
        assignment,
        WeightUpdate::Independent,
        &mut model_rng,
    );
    let mut train_rng = SeedRng::with_stream(params.seed, 0x7124);
    for _ in 0..params.epochs {
        baseline.train_epoch(train, 0.08, 8, &mut train_rng);
    }
    let clean_accuracy = baseline.accuracy(test);
    let baseline_json = baseline.to_json().expect("serializable model");

    let horizon = SimDuration::from_secs(params.horizon_secs);
    let plan_seed = params.seed ^ 0xFA17;
    let specs = point_specs();
    let pool: Vec<(Tensor, usize)> = test.to_vec();

    let sweep = runner.run_seeded(
        params.seed ^ 0xE10A,
        specs.len(),
        |index, _rng, recorder| {
            let spec = &specs[index];
            let tenants: Vec<Tenant> = tenant_specs(spec.load_scale)
                .into_iter()
                .map(|ts| {
                    let net =
                        DistributedCnn::from_json(&baseline_json).expect("validated snapshot");
                    Tenant::new(ts, net, pool.clone()).expect("non-empty pool")
                })
                .collect();
            let serve_config = ServeConfig::new(spec.shards, spec.batch, 16, SERVICE_TIME)
                .expect("valid config")
                .with_batch_overhead(BATCH_OVERHEAD);
            let mut server =
                Server::new(serve_config, deployment(), tenants).expect("tenants present");
            server = match spec.degradation {
                Degradation::Lossless => server,
                Degradation::Substitute { mode, loss } => server.with_degraded(DegradedServing {
                    plan: FaultPlan::uniform(plan_seed, loss).expect("valid rate"),
                    policy: RecoveryPolicy::Degrade { mode },
                    pass_period: PASS_PERIOD,
                    stale_cache: false,
                    replace: None,
                }),
                Degradation::StaleFallback { loss } => server.with_degraded(DegradedServing {
                    plan: FaultPlan::uniform(plan_seed, loss).expect("valid rate"),
                    policy: RecoveryPolicy::FailFast,
                    pass_period: PASS_PERIOD,
                    stale_cache: true,
                    replace: None,
                }),
            };
            let outcome = server.run(params.seed, horizon, Some(recorder));
            outcome.report
        },
    );
    let reports: &[ServeReport] = &sweep.outputs;

    let mut report = ExperimentReport::new(
        "E10",
        "Multi-tenant inference serving: load, sharding, batching and degraded-mode fallback",
    );
    report.push(Row::measured_only(
        "accuracy (clean baseline, direct)",
        clean_accuracy,
        "fraction",
    ));

    // Load group: throughput saturates and shedding takes over.
    for (i, &scale) in LOAD_SCALES.iter().enumerate() {
        let total = reports[i].total();
        report.push(Row::measured_only(
            format!("throughput ({scale:.2}x load)"),
            total.throughput_hz(horizon),
            "req/s",
        ));
        report.push(Row::measured_only(
            format!("shed rate ({scale:.2}x load)"),
            total.shed_rate(),
            "fraction",
        ));
        report.push(Row::measured_only(
            format!("p99 latency ({scale:.2}x load)"),
            total.p99_latency().unwrap_or(0.0) * 1e3,
            "ms",
        ));
    }

    // Per-tenant contract report at nominal load.
    let nominal = &reports[NOMINAL];
    for (name, stats) in &nominal.tenants {
        report.push(Row::measured_only(
            format!("throughput (tenant {name})"),
            stats.throughput_hz(horizon),
            "req/s",
        ));
        report.push(Row::measured_only(
            format!("p50 latency (tenant {name})"),
            stats.p50_latency().unwrap_or(0.0) * 1e3,
            "ms",
        ));
        report.push(Row::measured_only(
            format!("p99 latency (tenant {name})"),
            stats.p99_latency().unwrap_or(0.0) * 1e3,
            "ms",
        ));
        report.push(Row::measured_only(
            format!("deadline miss rate (tenant {name})"),
            stats.deadline_miss_rate(),
            "fraction",
        ));
    }

    // Shard group: p99 vs shard count at nominal load.
    let shard_report = |n: usize| -> &ServeReport {
        if n == 2 {
            nominal
        } else {
            let offset = SHARD_COUNTS
                .iter()
                .filter(|&&c| c != 2)
                .position(|&c| c == n);
            &reports[LOAD_SCALES.len() + offset.expect("swept shard count")]
        }
    };
    let shard_curve: Vec<f64> = SHARD_COUNTS
        .iter()
        .map(|&n| shard_report(n).total().p99_latency().unwrap_or(0.0) * 1e3)
        .collect();
    for (&n, &p99) in SHARD_COUNTS.iter().zip(&shard_curve) {
        report.push(Row::measured_only(
            format!("p99 latency ({n} shards)"),
            p99,
            "ms",
        ));
    }
    report.push_series("p99 latency vs shards (ms)", shard_curve);

    // Batch group: amortized overhead at nominal load.
    let batch_report = |b: usize| -> &ServeReport {
        if b == 4 {
            nominal
        } else {
            let offset = BATCH_SIZES
                .iter()
                .filter(|&&c| c != 4)
                .position(|&c| c == b);
            &reports[LOAD_SCALES.len() + SHARD_COUNTS.len() - 1 + offset.expect("swept batch size")]
        }
    };
    let batch_curve: Vec<f64> = BATCH_SIZES
        .iter()
        .map(|&b| batch_report(b).total().p99_latency().unwrap_or(0.0) * 1e3)
        .collect();
    for (&b, &p99) in BATCH_SIZES.iter().zip(&batch_curve) {
        report.push(Row::measured_only(
            format!("p99 latency (batch {b})"),
            p99,
            "ms",
        ));
    }
    report.push_series("p99 latency vs batch (ms)", batch_curve);

    // Degradation group: accuracy under each setting (the lossless
    // reference is the nominal point).
    let degradation_base = specs.len() - (degradations().len() - 1);
    for (d, setting) in degradations().into_iter().enumerate() {
        let point = if d == 0 {
            nominal
        } else {
            &reports[degradation_base + d - 1]
        };
        let total = point.total();
        report.push(Row::measured_only(
            format!("serving accuracy ({})", setting.label()),
            total.accuracy(),
            "fraction",
        ));
        if d > 0 {
            report.push(Row::measured_only(
                format!("served degraded+stale ({})", setting.label()),
                (total.degraded + total.stale) as f64,
                "count",
            ));
        }
    }
    let stale_point = reports[specs.len() - 1].total();
    report.push(Row::measured_only(
        "stale answers (stale-cache setting)",
        stale_point.stale as f64,
        "count",
    ));
    report.push(Row::measured_only(
        "failed requests (stale-cache setting)",
        stale_point.failed as f64,
        "count",
    ));

    report.attach_metrics(sweep.metrics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_shows_serving_behaviour() {
        let report = run(&Params::reduced());
        let clean = report
            .row("accuracy (clean baseline, direct)")
            .unwrap()
            .measured;
        assert!(clean > 0.8, "clean={clean}");
        // Serving losslessly at nominal load matches direct accuracy:
        // same model, same inputs, same forward pass.
        let lossless = report.row("serving accuracy (lossless)").unwrap().measured;
        assert_eq!(lossless, clean);
        // Overload sheds; light load does not.
        let light = report.row("shed rate (0.25x load)").unwrap().measured;
        let heavy = report.row("shed rate (3.00x load)").unwrap().measured;
        assert_eq!(light, 0.0, "light-load shed={light}");
        assert!(heavy > 0.2, "overload shed={heavy}");
        // Degraded settings still serve (accuracy above the random-guess
        // floor is not guaranteed at every loss rate, but answers are).
        let zf = report
            .row("serving accuracy (zero-fill, p=0.050)")
            .unwrap()
            .measured;
        assert!(zf > 0.0, "zero-fill accuracy={zf}");
        let stale = report
            .row("stale answers (stale-cache setting)")
            .unwrap()
            .measured;
        assert!(stale > 0.0, "stale={stale}");
    }

    #[test]
    fn point_list_is_stable() {
        let specs = point_specs();
        assert_eq!(
            specs.len(),
            LOAD_SCALES.len()
                + (SHARD_COUNTS.len() - 1)
                + (BATCH_SIZES.len() - 1)
                + (degradations().len() - 1)
        );
        assert_eq!(specs[NOMINAL].load_scale, 1.0);
        assert_eq!(specs[NOMINAL].shards, 2);
        assert_eq!(specs[NOMINAL].batch, 4);
    }
}
