//! E12 — quantized serving: int8 × load × loss.
//!
//! No table in the paper corresponds to this harness; it evaluates the
//! deployed integer inference path (`zeiot_microdeep::QuantizedCnn`,
//! DESIGN.md §11) against the f32 training-precision path under the
//! serving conditions E10/E11 established. One baseline is trained and
//! shared; every sweep point serves the E10 tenant mix in one numeric
//! format ([`QuantMode`]) at one load scale through one fabric loss
//! rate, and the report answers:
//!
//! - **what does quantization cost?** Per-condition serving accuracy
//!   for both formats plus explicit int8−f32 deltas, and a direct
//!   differential pass over the held-out test set (top-1 agreement,
//!   worst per-logit deviation).
//! - **what does it change operationally?** p99 latency, degraded
//!   answers, and fabric traffic per point — the integer path ships one
//!   byte per activation and rides the same degradation ladder.
//! - **is it deterministic?** Integer accumulation is exact, so the
//!   report and the trace JSONL export are byte-identical across
//!   `--threads 1/4` (CI diffs the `e12_quant` bin's output) — the
//!   quantized hop spans (`hop.q*`) land in the same traces the f32
//!   path produces.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_fault::{DegradeMode, FaultPlan, RecoveryPolicy};
use zeiot_microdeep::{Assignment, DistributedCnn, QuantizedCnn, WeightUpdate};
use zeiot_nn::tensor::Tensor;
use zeiot_obs::trace::{Trace, TraceSampler, Tracer};
use zeiot_serve::{
    ArrivalProcess, DegradedServing, QuantMode, ServeConfig, ServeReport, Server, Tenant,
    TenantSpec,
};

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Labelled samples per class (training + tenant request pools).
    pub samples_per_class: usize,
    /// Training epochs for the shared baseline model.
    pub epochs: usize,
    /// Simulated serving horizon per sweep point, in seconds.
    pub horizon_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// Deterministic trace sampling rate in `[0, 1]`.
    pub sample_rate: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            samples_per_class: 40,
            epochs: 10,
            horizon_secs: 8,
            seed: 42,
            sample_rate: 0.25,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            samples_per_class: 24,
            epochs: 5,
            horizon_secs: 3,
            seed: 42,
            sample_rate: 0.5,
        }
    }
}

/// Numeric formats swept.
pub const MODES: [QuantMode; 2] = [QuantMode::F32, QuantMode::Int8];

/// Load multipliers swept over the nominal tenant mix.
pub const LOAD_SCALES: [f64; 2] = [1.0, 3.0];

/// Per-attempt fabric loss rates swept (0 = lossless serving).
pub const LOSS_RATES: [f64; 2] = [0.0, 0.05];

/// Worker time per inference (matches E10/E11).
const SERVICE_TIME: SimDuration = SimDuration::from_millis(40);

/// Fixed worker time per dispatched micro-batch (matches E10/E11).
const BATCH_OVERHEAD: SimDuration = SimDuration::from_millis(10);

/// Relative deadline granted to every request (matches E10/E11).
const DEADLINE: SimDuration = SimDuration::from_millis(400);

/// Fabric clock advance per executed inference (matches E10/E11).
const PASS_PERIOD: SimDuration = SimDuration::from_millis(500);

/// `(mode, load scale, loss rate)` of sweep point `index`, row-major
/// over [`MODES`] × [`LOAD_SCALES`] × [`LOSS_RATES`].
pub fn point(index: usize) -> (QuantMode, f64, f64) {
    let per_mode = LOAD_SCALES.len() * LOSS_RATES.len();
    (
        MODES[index / per_mode],
        LOAD_SCALES[(index / LOSS_RATES.len()) % LOAD_SCALES.len()],
        LOSS_RATES[index % LOSS_RATES.len()],
    )
}

/// Stable row label of sweep point `index`.
fn point_label(index: usize) -> String {
    let (mode, scale, loss) = point(index);
    format!("{}, load {scale:.2}x, loss {loss:.3}", mode.label())
}

/// The condition (load, loss) half of a point label, shared by the two
/// formats it compares.
fn condition_label(scale: f64, loss: f64) -> String {
    format!("load {scale:.2}x, loss {loss:.3}")
}

/// The E10/E11 tenant mix, scaled and fixed to one numeric format.
fn tenant_specs(load_scale: f64, mode: QuantMode) -> Vec<TenantSpec> {
    let mix = [
        ("motion", ArrivalProcess::poisson(8.0)),
        (
            "doors",
            ArrivalProcess::periodic(SimDuration::from_millis(150)),
        ),
        (
            "hvac",
            ArrivalProcess::bursts(
                3,
                SimDuration::from_millis(5),
                SimDuration::from_millis(400),
            ),
        ),
    ];
    mix.into_iter()
        .map(|(name, arrivals)| {
            TenantSpec::new(name, arrivals.scaled(load_scale), DEADLINE).with_quant(mode)
        })
        .collect()
}

/// What one sweep point produced.
#[derive(Debug, Clone)]
struct PointResult {
    report: ServeReport,
    traces: Vec<Trace>,
}

impl PointResult {
    /// Serving accuracy over the point's labelled completions.
    fn accuracy(&self) -> f64 {
        let total = self.report.total();
        if total.labelled == 0 {
            0.0
        } else {
            total.correct as f64 / total.labelled as f64
        }
    }
}

/// Runs E12 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E12 and discards the trace export.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    run_with_traces(params, runner).0
}

/// Runs E12: one clean baseline is trained and shared; each sweep point
/// serves the tenant mix in one numeric format × load × loss, and a
/// final serial differential pass compares the two formats directly on
/// the held-out test set. Returns the report plus every sampled trace
/// in `(point, tenant, seq)` order — byte-identical across thread
/// counts.
pub fn run_with_traces(params: &Params, runner: &SweepRunner) -> (ExperimentReport, Vec<Trace>) {
    let mut data_rng = SeedRng::with_stream(params.seed, 0xDA7A);
    let data = super::e10_serving::generate_data(params.samples_per_class, &mut data_rng);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);

    let config = super::e10_serving::cnn_config();
    let topo = super::e10_serving::deployment();
    let graph = config.unit_graph().expect("valid config");
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    let mut model_rng = SeedRng::with_stream(params.seed, 0x0DE1);
    let mut baseline = DistributedCnn::new(
        config,
        assignment,
        WeightUpdate::Independent,
        &mut model_rng,
    );
    let mut train_rng = SeedRng::with_stream(params.seed, 0x7124);
    for _ in 0..params.epochs {
        baseline.train_epoch(train, 0.08, 8, &mut train_rng);
    }
    let baseline_json = baseline.to_json().expect("serializable model");

    let horizon = SimDuration::from_secs(params.horizon_secs);
    let plan_seed = params.seed ^ 0xFA17;
    let rate = params.sample_rate.clamp(0.0, 1.0);
    let points = MODES.len() * LOAD_SCALES.len() * LOSS_RATES.len();
    let pool: Vec<(Tensor, usize)> = test.to_vec();

    let sweep = runner.run_seeded(params.seed ^ 0xE12A, points, |index, _rng, recorder| {
        let (mode, scale, loss) = point(index);
        let tenants: Vec<Tenant> = tenant_specs(scale, mode)
            .into_iter()
            .map(|ts| {
                let net = DistributedCnn::from_json(&baseline_json).expect("validated snapshot");
                Tenant::new(ts, net, pool.clone()).expect("non-empty pool")
            })
            .collect();
        let serve_config = ServeConfig::new(2, 4, 16, SERVICE_TIME)
            .expect("valid config")
            .with_batch_overhead(BATCH_OVERHEAD);
        let mut server = Server::new(serve_config, super::e10_serving::deployment(), tenants)
            .expect("tenants present");
        if loss > 0.0 {
            server = server.with_degraded(DegradedServing {
                plan: FaultPlan::uniform(plan_seed, loss).expect("valid rate"),
                policy: RecoveryPolicy::Degrade {
                    mode: DegradeMode::ZeroFill,
                },
                pass_period: PASS_PERIOD,
                stale_cache: true,
                replace: None,
            });
        }
        // Sampling is a pure function of (seed, point, trace id), so the
        // sampled set is invariant to threads and completion order.
        let mut tracer = Tracer::new(TraceSampler::rate(
            params.seed ^ 0xE12 ^ ((index as u64) << 8),
            rate,
        ));
        let outcome = server.run_traced(params.seed, horizon, Some(recorder), Some(&mut tracer));
        PointResult {
            report: outcome.report,
            traces: tracer.take_finished(),
        }
    });

    let mut report = ExperimentReport::new(
        "E12",
        "Quantized serving: int8 vs f32 accuracy, latency and traffic under load x loss",
    );

    let accuracy_curve: Vec<f64> = sweep.outputs.iter().map(PointResult::accuracy).collect();
    for (index, result) in sweep.outputs.iter().enumerate() {
        let label = point_label(index);
        let total = result.report.total();
        report.push(Row::measured_only(
            format!("serving accuracy ({label})"),
            result.accuracy(),
            "fraction",
        ));
        report.push(Row::measured_only(
            format!("p99 latency ({label})"),
            total.p99_latency().unwrap_or(0.0) * 1e3,
            "ms",
        ));
        report.push(Row::measured_only(
            format!("degraded answers ({label})"),
            total.degraded as f64,
            "count",
        ));
        report.push(Row::measured_only(
            format!("fabric messages sent ({label})"),
            result.report.fault.as_ref().map_or(0.0, |f| f.sent as f64),
            "count",
        ));
    }
    report.push_series("serving accuracy by point", accuracy_curve);

    // int8 − f32 serving-accuracy delta per shared (load, loss)
    // condition: the two formats' points are `per_mode` apart.
    let per_mode = LOAD_SCALES.len() * LOSS_RATES.len();
    for cond in 0..per_mode {
        let (_, scale, loss) = point(cond);
        let delta = sweep.outputs[per_mode + cond].accuracy() - sweep.outputs[cond].accuracy();
        report.push(Row::measured_only(
            format!("accuracy delta int8-f32 ({})", condition_label(scale, loss)),
            delta,
            "fraction",
        ));
    }

    // Direct differential pass over the held-out test set, outside the
    // serving loop: the same frozen model tenants deploy (calibrated on
    // the same pool), compared logit-by-logit against f32.
    let mut f32_model = DistributedCnn::from_json(&baseline_json).expect("validated snapshot");
    let mut int8_model = {
        let mut m = DistributedCnn::from_json(&baseline_json).expect("validated snapshot");
        let calibration: Vec<Tensor> = pool.iter().map(|(x, _)| x.clone()).collect();
        QuantizedCnn::new(&mut m, &calibration)
    };
    let mut agree = 0usize;
    let mut max_logit_delta = 0.0f64;
    let (mut f32_correct, mut int8_correct) = (0usize, 0usize);
    for (x, t) in test {
        let f = f32_model.forward(x);
        let q = int8_model.forward_quantized(x);
        if f.argmax() == q.argmax() {
            agree += 1;
        }
        if f.argmax() == *t {
            f32_correct += 1;
        }
        if q.argmax() == *t {
            int8_correct += 1;
        }
        for (&a, &b) in f.data().iter().zip(q.data()) {
            max_logit_delta = max_logit_delta.max((a as f64 - b as f64).abs());
        }
    }
    let n = test.len().max(1) as f64;
    report.push(Row::measured_only(
        "top-1 agreement (direct)",
        agree as f64 / n,
        "fraction",
    ));
    report.push(Row::measured_only(
        "max |logit delta| (direct)",
        max_logit_delta,
        "logits",
    ));
    report.push(Row::measured_only(
        "f32 test accuracy (direct)",
        f32_correct as f64 / n,
        "fraction",
    ));
    report.push(Row::measured_only(
        "int8 test accuracy (direct)",
        int8_correct as f64 / n,
        "fraction",
    ));
    report.push(Row::measured_only(
        "int8 saturated activations (direct)",
        int8_model.stats().activation_saturated as f64,
        "count",
    ));

    report.attach_metrics(sweep.metrics);
    let traces: Vec<Trace> = sweep.outputs.into_iter().flat_map(|p| p.traces).collect();
    (report, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_obs::trace::SpanLayer;

    #[test]
    fn point_grid_is_row_major() {
        assert_eq!(point(0), (QuantMode::F32, 1.0, 0.0));
        assert_eq!(point(3), (QuantMode::F32, 3.0, 0.05));
        assert_eq!(point(4), (QuantMode::Int8, 1.0, 0.0));
        assert_eq!(point(7), (QuantMode::Int8, 3.0, 0.05));
    }

    #[test]
    fn reduced_run_compares_formats_and_traces_quantized_hops() {
        let (report, traces) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        // The direct differential pass bounds the quantization error.
        let agreement = report
            .row("top-1 agreement (direct)")
            .expect("row present")
            .measured;
        assert!(agreement >= 0.9, "int8 disagrees too often: {agreement}");
        let delta = report
            .row("accuracy delta int8-f32 (load 1.00x, loss 0.000)")
            .expect("row present")
            .measured;
        assert!(
            delta.abs() <= 0.1,
            "serving accuracy moved too far: {delta}"
        );
        // Quantized lossy points leave quantized hop spans in the traces.
        assert!(!traces.is_empty());
        assert!(
            traces.iter().any(|t| t
                .spans
                .iter()
                .any(|s| s.layer == SpanLayer::Hop && s.name.starts_with("hop.q"))),
            "int8 lossy serving must emit hop.q* spans"
        );
        // The quant counters made it into the metrics export.
        let snapshot = report.export_snapshot();
        assert!(snapshot.counter_total("quant.forwards") > 0);
    }

    #[test]
    fn report_and_traces_are_reproducible() {
        let (report_a, traces_a) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        let (report_b, traces_b) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        assert_eq!(report_a.to_json(), report_b.to_json());
        assert_eq!(traces_a, traces_b);
    }
}
