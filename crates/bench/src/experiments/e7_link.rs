//! E7 — ambient backscatter link range and throughput (paper §I/Fig. 1).
//!
//! The paper's framing claims: "Wi-Fi-based ambient backscatter is able
//! to transmit and receive data in several tens of meters with several
//! Mbps" and "some recent RFID technologies enable several meters of
//! transmission". This harness sweeps the tag→receiver distance for the
//! two link profiles (ZigBee-backscatter testbed and full-duplex Wi-Fi
//! AP) and reports PER/goodput curves plus the 90 %-success range.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_backscatter::phy::BackscatterLink;

/// Tunable experiment size.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Tag→receiver distances (metres) to sweep.
    pub distances_m: Vec<f64>,
    /// Exciter→tag distance (metres).
    pub exciter_to_tag_m: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            distances_m: vec![
                1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0, 80.0, 100.0,
            ],
            exciter_to_tag_m: 1.0,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            distances_m: vec![1.0, 10.0, 40.0, 100.0],
            exciter_to_tag_m: 1.0,
        }
    }
}

/// Runs E7 serially (equivalent to [`run_with`] at any thread count).
///
/// # Panics
///
/// Panics if `params.distances_m` is empty.
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E7 with the distance sweep fanned out across threads; the link
/// model is RNG-free, so results are identical for every thread count.
///
/// # Panics
///
/// Panics if `params.distances_m` is empty.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    assert!(!params.distances_m.is_empty(), "need at least one distance");
    let zigbee = BackscatterLink::zigbee_testbed().expect("profile");
    let wifi = BackscatterLink::wifi_full_duplex_ap().expect("profile");

    let sweep = runner.run_seeded(0, params.distances_m.len(), |index, _rng, _recorder| {
        let d = params.distances_m[index];
        let e2r = params.exciter_to_tag_m + d; // colinear geometry
        let point = |link: &BackscatterLink| {
            (
                1.0 - link.packet_success(params.exciter_to_tag_m, d, e2r),
                link.goodput_bps(params.exciter_to_tag_m, d, e2r),
            )
        };
        (point(&zigbee), point(&wifi))
    });

    let mut zig_per = Vec::new();
    let mut zig_goodput = Vec::new();
    let mut wifi_per = Vec::new();
    let mut wifi_goodput = Vec::new();
    for &((zp, zg), (wp, wg)) in &sweep.outputs {
        zig_per.push(zp);
        zig_goodput.push(zg);
        wifi_per.push(wp);
        wifi_goodput.push(wg);
    }
    let zig_range = zigbee
        .max_range_m(params.exciter_to_tag_m, 0.9, 500.0)
        .unwrap_or(0.0);
    let wifi_range = wifi
        .max_range_m(params.exciter_to_tag_m, 0.9, 500.0)
        .unwrap_or(0.0);

    let mut report =
        ExperimentReport::new("E7", "Backscatter link range and throughput vs distance");
    // Paper: "several tens of meters" → nominal 30 m reference.
    report.push(Row::with_paper(
        "90%-success range, ZigBee backscatter",
        30.0,
        zig_range,
        "m",
    ));
    report.push(Row::measured_only(
        "90%-success range, full-duplex Wi-Fi AP",
        wifi_range,
        "m",
    ));
    report.push(Row::measured_only(
        "goodput at 5 m, ZigBee backscatter",
        zig_goodput[params
            .distances_m
            .iter()
            .position(|&d| d >= 5.0)
            .unwrap_or(0)],
        "bit/s",
    ));
    report.push_series("distance (m)", params.distances_m.clone());
    report.push_series("PER (ZigBee)", zig_per);
    report.push_series("PER (Wi-Fi AP)", wifi_per);
    report.push_series("goodput (ZigBee, bit/s)", zig_goodput);
    report.push_series("goodput (Wi-Fi AP, bit/s)", wifi_goodput);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_reproduces_the_shape() {
        let report = run(&Params::reduced());
        let range = report
            .row("90%-success range, ZigBee backscatter")
            .unwrap()
            .measured;
        // "Several tens of meters".
        assert!(range > 10.0 && range < 200.0, "range={range}");
        // PER grows with distance.
        let per = &report
            .series
            .iter()
            .find(|(n, _)| n == "PER (ZigBee)")
            .unwrap()
            .1;
        assert!(per.first().unwrap() < per.last().unwrap());
        assert!(*per.last().unwrap() > 0.9);
    }
}
