//! E4 — train-car congestion and positioning (paper §IV.B, ref \[65\]).
//!
//! Paper results: car-level positioning accuracy ≈83 %; three-level
//! congestion estimation F-measure ≈0.82, via likelihood functions and
//! majority voting weighted by positioning reliability. The unweighted
//! vote is the ablation (DESIGN.md §5.4).

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::rng::SeedRng;
use zeiot_data::train::{TrainScene, TrainSceneGenerator};
use zeiot_nn::eval::ConfusionMatrix;
use zeiot_sensing::train::{CongestionEstimator, LabelledScene, TrainObservation};

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Calibration scenes.
    pub train_scenes: usize,
    /// Evaluation scenes.
    pub test_scenes: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            train_scenes: 60,
            test_scenes: 30,
            seed: 13,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            train_scenes: 20,
            test_scenes: 8,
            seed: 13,
        }
    }
}

/// Converts a generated scene into the estimator's input form.
pub fn to_labelled(scene: &TrainScene) -> LabelledScene {
    LabelledScene {
        observation: TrainObservation {
            cars: scene.cars(),
            reference_car: scene.reference_car.clone(),
            user_to_reference: scene.user_to_reference.clone(),
            user_to_user: scene.user_to_user.clone(),
        },
        user_car: scene.user_car.clone(),
        congestion: scene.congestion.iter().map(|c| c.index()).collect(),
    }
}

/// Runs E4 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Per-scene evaluation tallies, merged in scene order after the sweep.
struct SceneTally {
    pos_correct: usize,
    pos_total: usize,
    /// `(truth, weighted prediction, unweighted prediction)` per car.
    votes: Vec<(usize, usize, usize)>,
}

/// Runs E4 with the test-scene evaluation fanned out across threads.
/// Scene generation and estimator fitting stay serial (they thread one
/// RNG); evaluation is RNG-free, so per-scene tallies folded in scene
/// order are identical for every thread count.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    let generator = TrainSceneGenerator::paper_train().expect("paper train");
    let mut rng = SeedRng::new(params.seed);
    let train: Vec<LabelledScene> = (0..params.train_scenes)
        .map(|_| to_labelled(&generator.scene(&mut rng)))
        .collect();
    let test: Vec<LabelledScene> = (0..params.test_scenes)
        .map(|_| to_labelled(&generator.scene(&mut rng)))
        .collect();

    let estimator = CongestionEstimator::fit(&train).expect("fit");

    let sweep = runner.run_seeded(params.seed, test.len(), |index, _rng, _recorder| {
        let scene = &test[index];
        let positions = estimator.estimate_positions(&scene.observation);
        let pos_total = positions.iter().zip(&scene.user_car).count();
        let pos_correct = positions
            .iter()
            .zip(&scene.user_car)
            .filter(|(p, &truth)| p.car == truth)
            .count();
        let weighted = estimator.estimate_congestion(&scene.observation, &positions, true);
        let unweighted = estimator.estimate_congestion(&scene.observation, &positions, false);
        SceneTally {
            pos_correct,
            pos_total,
            votes: (0..scene.observation.cars)
                .map(|car| (scene.congestion[car], weighted[car], unweighted[car]))
                .collect(),
        }
    });

    let mut pos_correct = 0usize;
    let mut pos_total = 0usize;
    let mut cm_weighted = ConfusionMatrix::new(3);
    let mut cm_unweighted = ConfusionMatrix::new(3);
    for tally in &sweep.outputs {
        pos_correct += tally.pos_correct;
        pos_total += tally.pos_total;
        for &(truth, weighted, unweighted) in &tally.votes {
            cm_weighted.record(truth, weighted);
            cm_unweighted.record(truth, unweighted);
        }
    }
    let pos_accuracy = pos_correct as f64 / pos_total as f64;

    let mut report = ExperimentReport::new(
        "E4",
        "Car-level positioning & 3-level congestion from Bluetooth RSSI",
    );
    report.push(Row::with_paper(
        "car-level positioning accuracy",
        0.83,
        pos_accuracy,
        "fraction",
    ));
    report.push(Row::with_paper(
        "congestion F-measure (weighted vote)",
        0.82,
        cm_weighted.macro_f1().unwrap_or(0.0),
        "macro-F1",
    ));
    report.push(Row::measured_only(
        "congestion F-measure (unweighted ablation)",
        cm_unweighted.macro_f1().unwrap_or(0.0),
        "macro-F1",
    ));
    report.push(Row::measured_only(
        "congestion accuracy (weighted)",
        cm_weighted.accuracy(),
        "fraction",
    ));
    report.push(Row::measured_only(
        "congestion ordinal error ≤1 level",
        cm_weighted.within_k(1),
        "fraction",
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_reproduces_the_shape() {
        let report = run(&Params::reduced());
        let pos = report
            .row("car-level positioning accuracy")
            .unwrap()
            .measured;
        let f1 = report
            .row("congestion F-measure (weighted vote)")
            .unwrap()
            .measured;
        // Shape: positioning well above the 1/6 chance level; congestion
        // well above the 1/3 chance level.
        assert!(pos > 0.6, "pos={pos}");
        assert!(f1 > 0.5, "f1={f1}");
        let within1 = report
            .row("congestion ordinal error ≤1 level")
            .unwrap()
            .measured;
        assert!(within1 > 0.9, "within1={within1}");
    }

    #[test]
    fn conversion_preserves_scene_shape() {
        let generator = TrainSceneGenerator::paper_train().unwrap();
        let mut rng = SeedRng::new(1);
        let scene = generator.scene(&mut rng);
        let labelled = to_labelled(&scene);
        assert_eq!(labelled.observation.cars, 6);
        assert_eq!(labelled.user_car.len(), labelled.observation.users());
        assert_eq!(labelled.congestion.len(), 6);
        assert!(labelled.congestion.iter().all(|&c| c < 3));
    }
}
