//! X2 — direct/indirect sensing fusion (paper Fig. 3, §III.B).
//!
//! The paper's integration concept: "CNNs on WSNs can integrate ambient
//! backscatter based direct sensing using various sensors with ultra-low
//! power IoT devices and wireless sensing based indirect sensing using
//! RSSI and CSI ... Ambient backscatter and wireless sensing are
//! complementary." This harness realizes the claim on the occupancy
//! task: a handful of backscatter motion tags (direct, precise but
//! sparse and lossy) against the mesh's RSSI features (indirect, dense
//! but coarse) against their fusion — the fused estimator should win.

use crate::report::{ExperimentReport, Row};
use zeiot_backscatter::phy::BackscatterLink;
use zeiot_core::geometry::Point2;
use zeiot_core::rng::SeedRng;
use zeiot_net::rssi::RssiSampler;
use zeiot_net::Topology;
use zeiot_sensing::GaussianNb;

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Largest occupancy class.
    pub max_people: usize,
    /// Backscatter motion tags deployed.
    pub tags: usize,
    /// Calibration rounds per occupancy.
    pub train_rounds: usize,
    /// Test rounds per occupancy.
    pub test_rounds: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            max_people: 8,
            tags: 12,
            train_rounds: 40,
            test_rounds: 15,
            seed: 29,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            max_people: 5,
            tags: 12,
            train_rounds: 15,
            test_rounds: 6,
            seed: 29,
        }
    }
}

/// One observation round's features, split by modality.
struct RoundFeatures {
    /// (tags sensing presence, tag reports delivered) — the direct
    /// modality summarized to its occupancy-relevant statistics, which
    /// is what a fusion layer would learn to extract from the raw bits.
    direct: Vec<f64>,
    /// (mean inter-node RSSI, mean surrounding RSSI).
    indirect: Vec<f64>,
}

fn observe(
    sampler: &RssiSampler,
    link: &BackscatterLink,
    tag_positions: &[Point2],
    count: usize,
    rng: &mut SeedRng,
) -> Option<RoundFeatures> {
    let topo = sampler.topology();
    let people: Vec<Point2> = (0..count)
        .map(|_| Point2::new(rng.uniform_range(0.0, 9.0), rng.uniform_range(0.0, 9.0)))
        .collect();

    // Direct: each motion tag senses presence within 2 m and
    // backscatters its bit to the *nearest mesh node* — the WSN doubles
    // as the backscatter reader infrastructure, which is exactly the
    // paper's Fig. 3 integration. The continuous-wave exciter sits in
    // the room centre. Reports may still be lost on the air (the price
    // of zero-energy sensing).
    let exciter = Point2::new(4.5, 4.5);
    let mut sensed_count = 0.0f64;
    let mut delivered_count = 0.0f64;
    for tag in tag_positions {
        let sensed = people.iter().any(|p| p.distance(*tag) <= 2.0);
        let reader = topo.position(topo.nearest_node(*tag));
        let delivered = link.try_deliver(
            tag.distance(exciter).max(0.5),
            tag.distance(reader).max(0.5),
            exciter.distance(reader).max(0.5),
            rng,
        );
        if delivered {
            delivered_count += 1.0;
            if sensed {
                sensed_count += 1.0;
            }
        }
    }
    // The fraction of *delivered* reports that sensed presence is
    // invariant to which subset of reports got through — the loss-robust
    // statistic.
    let ratio = if delivered_count > 0.0 {
        sensed_count / delivered_count
    } else {
        0.0
    };
    let direct = vec![ratio, delivered_count];

    // Indirect: the mesh's two RSSI aggregates.
    let inter = sampler.inter_node_rssi(&people, rng);
    let surrounding = sampler.surrounding_rssi(&people, 0.9, rng);
    let links: Vec<f64> = inter
        .iter()
        .flat_map(|row| row.iter().flatten().copied())
        .collect();
    if links.is_empty() || surrounding.is_empty() {
        return None;
    }
    let indirect = vec![
        links.iter().sum::<f64>() / links.len() as f64,
        surrounding.iter().sum::<f64>() / surrounding.len() as f64,
    ];
    Some(RoundFeatures { direct, indirect })
}

/// Runs X2.
pub fn run(params: &Params) -> ExperimentReport {
    let topo = Topology::grid(4, 4, 3.0, 4.5).expect("valid layout");
    let sampler = RssiSampler::ieee802154(topo)
        .expect("sampler")
        .with_noise_sigma(1.2)
        .expect("valid sigma");
    let link = BackscatterLink::zigbee_testbed().expect("link");
    let mut rng = SeedRng::new(params.seed);

    // Tags scattered over the room (they cannot cover it all — that is
    // the point: direct sensing is precise but sparse).
    let tag_positions: Vec<Point2> = (0..params.tags)
        .map(|_| Point2::new(rng.uniform_range(1.0, 8.0), rng.uniform_range(1.0, 8.0)))
        .collect();

    let collect = |rounds: usize, rng: &mut SeedRng| {
        let mut direct = Vec::new();
        let mut indirect = Vec::new();
        for count in 0..=params.max_people {
            for _ in 0..rounds {
                if let Some(f) = observe(&sampler, &link, &tag_positions, count, rng) {
                    direct.push((f.direct, count));
                    indirect.push((f.indirect, count));
                }
            }
        }
        (direct, indirect)
    };
    let (train_d, train_i) = collect(params.train_rounds, &mut rng);
    let (test_d, test_i) = collect(params.test_rounds, &mut rng);

    let classes = params.max_people + 1;
    let model_d = GaussianNb::fit(&train_d, classes).expect("non-empty training");
    let model_i = GaussianNb::fit(&train_i, classes).expect("non-empty training");
    let accuracy = |predict: &dyn Fn(usize) -> usize, truth: &[(Vec<f64>, usize)]| {
        let correct = truth
            .iter()
            .enumerate()
            .filter(|(i, (_, label))| predict(*i) == *label)
            .count();
        correct as f64 / truth.len() as f64
    };
    let acc_direct = accuracy(&|i| model_d.predict(&test_d[i].0), &test_d);
    let acc_indirect = accuracy(&|i| model_i.predict(&test_i[i].0), &test_i);
    // Score-level fusion: class log-likelihoods add across modalities.
    let fused_predict = |i: usize| {
        (0..classes)
            .max_by(|&a, &b| {
                let la = model_d.log_likelihood(&test_d[i].0, a)
                    + model_i.log_likelihood(&test_i[i].0, a);
                let lb = model_d.log_likelihood(&test_d[i].0, b)
                    + model_i.log_likelihood(&test_i[i].0, b);
                la.partial_cmp(&lb).expect("finite")
            })
            .expect("non-empty")
    };
    let acc_fused = accuracy(&fused_predict, &test_d);

    let mut report = ExperimentReport::new(
        "X2",
        "Direct (backscatter tags) vs indirect (RSSI) vs fused occupancy sensing",
    );
    report.push(Row::measured_only(
        "accuracy, direct sensing only",
        acc_direct,
        "fraction",
    ));
    report.push(Row::measured_only(
        "accuracy, indirect sensing only",
        acc_indirect,
        "fraction",
    ));
    report.push(Row::measured_only("accuracy, fused", acc_fused, "fraction"));
    report.push(Row::measured_only(
        "fusion gain over best single modality",
        acc_fused - acc_direct.max(acc_indirect),
        "fraction",
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_beats_both_modalities() {
        let report = run(&Params::reduced());
        let direct = report
            .row("accuracy, direct sensing only")
            .unwrap()
            .measured;
        let indirect = report
            .row("accuracy, indirect sensing only")
            .unwrap()
            .measured;
        let fused = report.row("accuracy, fused").unwrap().measured;
        // Each modality alone is informative (above the 1/6 chance
        // level)...
        assert!(direct > 0.25, "direct={direct}");
        assert!(indirect > 0.25, "indirect={indirect}");
        // ...and fusion matches the best of them to within sampling
        // noise at this reduced test size (the full-scale harness shows
        // a positive gain) — the paper's complementarity claim.
        assert!(
            fused >= direct.max(indirect) - 0.06,
            "fused={fused} direct={direct} indirect={indirect}"
        );
    }
}
