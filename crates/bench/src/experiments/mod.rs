//! The experiment harnesses (see DESIGN.md §4 for the index).
//!
//! Each module exposes a `Params` struct whose `Default` is the
//! paper-scale configuration, a `reduced()` constructor for fast CI runs,
//! and a `run(&Params) -> ExperimentReport`.

pub mod ablations;
pub mod e10_serving;
pub mod e11_slo;
pub mod e12_quant;
pub mod e13_replace;
pub mod e14_venue;
pub mod e1_temperature;
pub mod e2_motion;
pub mod e3_mac;
pub mod e4_train;
pub mod e5_counting;
pub mod e6_csi;
pub mod e7_link;
pub mod e8_energy;
pub mod e9_faults;
pub mod x1_planner;
pub mod x2_fusion;
