//! E2 — the IR-array motion/fall experiment and **Fig. 10** (paper §IV.C).
//!
//! Paper setting: an 8×8 film-type IR sensor array at 5 fps, 2-second
//! (10-frame) windows, CNN of one conv + one pool + two dense layers.
//! Reported comparison:
//!
//! * (a) standard CNN with the **optimal parameter set**: accuracy
//!   91.875 %, maximal per-node communication cost **360**;
//! * (b) **feasible parameter set with heuristic assignment** (maximize
//!   CNN-link/WSN-link correspondence, equalize units per node):
//!   accuracy 89.7275 % (≈2 points lower), maximal cost **210**
//!   (≈40 % lower).
//!
//! Fig. 10 plots the per-node communication cost profile of both; this
//! harness emits the same two series.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::rng::SeedRng;
use zeiot_data::gait::GaitGenerator;
use zeiot_microdeep::{Assignment, CnnConfig, CostModel, DistributedCnn, WeightUpdate};
use zeiot_net::Topology;

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Labelled windows to generate (paper: 6,610 3-D arrays).
    pub samples: usize,
    /// Distinct subjects (paper: 5).
    pub subjects: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            samples: 800,
            subjects: 5,
            epochs: 15,
            seed: 7,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            samples: 120,
            subjects: 3,
            epochs: 5,
            seed: 7,
        }
    }
}

/// The "optimal parameter set" CNN: 6 filters, 32 hidden units — the
/// accuracy-first configuration of Fig. 10(a).
///
/// # Panics
///
/// Never; the geometry is statically valid.
pub fn optimal_config() -> CnnConfig {
    CnnConfig::new(10, 8, 8, 6, 3, 2, 32, 2).expect("valid geometry")
}

/// The "feasible parameter set" CNN: 4 filters, 16 hidden units — small
/// enough to spread over the array's 64 microprocessors, Fig. 10(b).
///
/// # Panics
///
/// Never; the geometry is statically valid.
pub fn feasible_config() -> CnnConfig {
    CnnConfig::new(10, 8, 8, 4, 3, 2, 16, 2).expect("valid geometry")
}

/// The sensor array: one node per IR sensor, 8×8 mesh.
///
/// # Panics
///
/// Never; the layout is statically valid.
pub fn array_topology() -> Topology {
    Topology::grid(8, 8, 0.5, 0.75).expect("valid layout")
}

/// Runs E2 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E2 with the two parameter-set arms trained as parallel sweep
/// points; results are identical for every thread count.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    let mut rng = SeedRng::new(params.seed);
    let generator = GaitGenerator::paper_array().expect("paper array");
    let data = generator.generate(params.samples, params.subjects, &mut rng);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);

    let topo = array_topology();
    let cost = CostModel::new(&topo);

    // Placements are deterministic; compute them up front so both arms'
    // communication profiles come from the same assignments the trained
    // models use.
    let opt_config = optimal_config();
    let opt_graph = opt_config.unit_graph().expect("valid");
    let opt_assignment = Assignment::grid_projection(&opt_graph, &topo);
    let opt_cost = cost.forward_cost(&opt_graph, &opt_assignment);
    let fea_config = feasible_config();
    let fea_graph = fea_config.unit_graph().expect("valid");
    let fea_assignment =
        Assignment::balanced_correspondence_threaded(&fea_graph, &topo, runner.threads());
    let fea_cost = cost.forward_cost(&fea_graph, &fea_assignment);

    // Two model arms as sweep points, each with its own derived stream:
    // (a) optimal parameter set, centralized training for best accuracy;
    // (b) feasible parameter set + heuristic balanced assignment, trained
    // with per-node replica independence (the paper's literal "updated
    // independently by each sensor node"; per-unit independence is the
    // other granularity, used in E1 — see EXPERIMENTS.md).
    let arms = runner.run_seeded(params.seed, 2, |arm, rng, _recorder| {
        if arm == 0 {
            let mut optimal = opt_config.build_centralized(rng);
            for _ in 0..params.epochs {
                optimal.train_epoch(train, 0.04, 16, rng);
            }
            optimal.accuracy(test)
        } else {
            let mut feasible = DistributedCnn::new(
                fea_config,
                fea_assignment.clone(),
                WeightUpdate::Independent,
                rng,
            );
            for _ in 0..params.epochs {
                feasible.train_epoch(train, 0.04, 16, rng);
            }
            feasible.accuracy(test)
        }
    });
    let acc_optimal = arms.outputs[0];
    let acc_feasible = arms.outputs[1];

    let mut report = ExperimentReport::new(
        "E2",
        "IR-array fall detection + Fig. 10 per-node communication profiles",
    );
    report.push(Row::with_paper(
        "accuracy (optimal parameter set)",
        0.91875,
        acc_optimal,
        "fraction",
    ));
    report.push(Row::with_paper(
        "accuracy (feasible + heuristic)",
        0.897275,
        acc_feasible,
        "fraction",
    ));
    report.push(Row::with_paper(
        "max per-node cost (optimal, Fig. 10a)",
        360.0,
        opt_cost.max_cost() as f64,
        "msgs/pass",
    ));
    report.push(Row::with_paper(
        "max per-node cost (feasible, Fig. 10b)",
        210.0,
        fea_cost.max_cost() as f64,
        "msgs/pass",
    ));
    report.push(Row::with_paper(
        "max-cost reduction",
        0.40,
        1.0 - fea_cost.max_cost() as f64 / opt_cost.max_cost() as f64,
        "fraction",
    ));
    report.push(Row::with_paper(
        "accuracy drop",
        0.0215,
        acc_optimal - acc_feasible,
        "fraction",
    ));
    report.push_series(
        "per-node cost (optimal, Fig. 10a)",
        opt_cost.costs().iter().map(|&c| c as f64).collect(),
    );
    report.push_series(
        "per-node cost (feasible, Fig. 10b)",
        fea_cost.costs().iter().map(|&c| c as f64).collect(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_reproduces_fig10_shape() {
        let report = run(&Params::reduced());
        let max_opt = report
            .row("max per-node cost (optimal, Fig. 10a)")
            .unwrap()
            .measured;
        let max_fea = report
            .row("max per-node cost (feasible, Fig. 10b)")
            .unwrap()
            .measured;
        // The heuristic must flatten the peak substantially.
        assert!(max_fea < max_opt, "fea={max_fea} opt={max_opt}");
        let reduction = report.row("max-cost reduction").unwrap().measured;
        assert!(reduction > 0.2, "reduction={reduction}");
        // Both classifiers learn the task.
        let acc_opt = report
            .row("accuracy (optimal parameter set)")
            .unwrap()
            .measured;
        let acc_fea = report
            .row("accuracy (feasible + heuristic)")
            .unwrap()
            .measured;
        assert!(acc_opt > 0.8, "acc_opt={acc_opt}");
        assert!(acc_fea > 0.7, "acc_fea={acc_fea}");
    }

    #[test]
    fn configs_differ_in_size() {
        let opt = optimal_config().unit_graph().unwrap().total_units();
        let fea = feasible_config().unit_graph().unwrap().total_units();
        assert!(opt > fea * 15 / 10, "opt={opt} fea={fea}");
        assert_eq!(array_topology().len(), 64);
    }
}
