//! E5 — people counting from synchronized WSN RSSI (paper §IV.B,
//! ref \[66\]).
//!
//! Paper setting: a laboratory 802.15.4 deployment measuring strictly
//! synchronized inter-node and surrounding RSSI via the Choco platform.
//! Reported: ≈79 % exact accuracy on the number of people, "with errors
//! up to two people".

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::geometry::Point2;
use zeiot_core::rng::SeedRng;
use zeiot_net::rssi::RssiSampler;
use zeiot_net::Topology;
use zeiot_nn::eval::ConfusionMatrix;
use zeiot_sensing::counting::{CountingFeatures, PeopleCounter};

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Largest occupancy to calibrate and test.
    pub max_people: usize,
    /// Calibration rounds per occupancy count.
    pub train_rounds: usize,
    /// Test rounds per occupancy count.
    pub test_rounds: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            max_people: 10,
            train_rounds: 40,
            test_rounds: 15,
            seed: 17,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            max_people: 6,
            train_rounds: 15,
            test_rounds: 6,
            seed: 17,
        }
    }
}

/// The laboratory deployment: a 4×4 802.15.4 mesh over a 9×9 m room.
///
/// # Panics
///
/// Never; the layout is statically valid.
pub fn laboratory() -> Topology {
    Topology::grid(4, 4, 3.0, 4.5).expect("valid layout")
}

fn measurement_round(
    sampler: &RssiSampler,
    count: usize,
    rng: &mut SeedRng,
) -> Option<CountingFeatures> {
    // People (each carrying a phone) scattered across the room; the
    // synchronized platform takes several samples per round and the
    // estimator works on their average.
    let people: Vec<Point2> = (0..count)
        .map(|_| Point2::new(rng.uniform_range(0.0, 9.0), rng.uniform_range(0.0, 9.0)))
        .collect();
    let mut acc: Option<CountingFeatures> = None;
    let reps = 4;
    for _ in 0..reps {
        let inter = sampler.inter_node_rssi(&people, rng);
        let surrounding = sampler.surrounding_rssi(&people, 0.9, rng);
        let f = CountingFeatures::extract(&inter, &surrounding)?;
        acc = Some(match acc {
            None => f,
            Some(a) => CountingFeatures::new(
                a.mean_inter_node_dbm + f.mean_inter_node_dbm,
                a.mean_surrounding_dbm + f.mean_surrounding_dbm,
            ),
        });
    }
    acc.map(|a| {
        CountingFeatures::new(
            a.mean_inter_node_dbm / reps as f64,
            a.mean_surrounding_dbm / reps as f64,
        )
    })
}

/// Runs E5 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Distinguishes the calibration sweep's derived RNG streams from the
/// evaluation sweep's (same point indices, different master).
const TEST_SWEEP_SALT: u64 = 0x7e57_0000_0000_0001;

/// Runs E5 with one sweep point per occupancy count, for both the
/// calibration and the evaluation rounds; each point draws from its own
/// derived stream, so results are identical for every thread count.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    let sampler = RssiSampler::ieee802154(laboratory())
        .expect("sampler")
        .with_noise_sigma(1.2)
        .expect("valid sigma");

    let calibration = runner.run_seeded(
        params.seed,
        params.max_people + 1,
        |count, rng, _recorder| {
            (0..params.train_rounds)
                .filter_map(|_| measurement_round(&sampler, count, rng))
                .collect::<Vec<_>>()
        },
    );
    let training: Vec<(CountingFeatures, usize)> = calibration
        .outputs
        .into_iter()
        .enumerate()
        .flat_map(|(count, features)| features.into_iter().map(move |f| (f, count)))
        .collect();
    let counter = PeopleCounter::fit(&training).expect("fit");

    let evaluation = runner.run_seeded(
        params.seed ^ TEST_SWEEP_SALT,
        params.max_people + 1,
        |count, rng, _recorder| {
            (0..params.test_rounds)
                .filter_map(|_| measurement_round(&sampler, count, rng))
                .map(|f| counter.predict(&f))
                .collect::<Vec<_>>()
        },
    );
    let mut cm = ConfusionMatrix::new(params.max_people + 1);
    for (count, predictions) in evaluation.outputs.iter().enumerate() {
        for &predicted in predictions {
            cm.record(count, predicted);
        }
    }

    let mut report = ExperimentReport::new(
        "E5",
        "People counting from synchronized inter-node/surrounding RSSI",
    );
    report.push(Row::with_paper(
        "exact-count accuracy",
        0.79,
        cm.accuracy(),
        "fraction",
    ));
    report.push(Row::with_paper(
        "errors within two people",
        1.0,
        cm.within_k(2),
        "fraction",
    ));
    report.push(Row::measured_only(
        "mean absolute error",
        cm.mean_absolute_error(),
        "people",
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_reproduces_the_shape() {
        let report = run(&Params::reduced());
        let exact = report.row("exact-count accuracy").unwrap().measured;
        let within2 = report.row("errors within two people").unwrap().measured;
        let mae = report.row("mean absolute error").unwrap().measured;
        // Shape: well above the 1/7 chance level, almost always within
        // two people, sub-person mean error.
        assert!(exact > 0.45, "exact={exact}");
        assert!(within2 > 0.9, "within2={within2}");
        assert!(mae < 1.5, "mae={mae}");
    }

    #[test]
    fn laboratory_is_connected() {
        assert!(laboratory().is_connected());
        assert_eq!(laboratory().len(), 16);
    }
}
