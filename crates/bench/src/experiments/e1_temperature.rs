//! E1 — the lounge temperature experiment (paper §IV.C).
//!
//! Paper setting: a >1,400 m² lounge divided into 25×17 cells, 50
//! temperature sensors, 2,961 samples, CNN trained to detect discomfort.
//! Reported: standard CNN ≈97 % accuracy; MicroDeep ≈95 %; MicroDeep's
//! **maximal per-node communication cost is just 13 %** of the standard
//! (centralized) version's.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::rng::SeedRng;
use zeiot_data::temperature::TemperatureFieldGenerator;
use zeiot_microdeep::{Assignment, CnnConfig, CostModel, DistributedCnn, WeightUpdate};
use zeiot_net::Topology;

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Labelled samples to generate (paper: 2,961).
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            samples: 2_000,
            epochs: 12,
            seed: 42,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            samples: 400,
            epochs: 8,
            seed: 42,
        }
    }
}

/// The experiment's CNN: 17×25 input, 4 filters of 4×4, 2×2 pooling,
/// 32 hidden units, binary discomfort output.
///
/// # Panics
///
/// Never; the geometry is statically valid.
pub fn cnn_config() -> CnnConfig {
    CnnConfig::new(1, 17, 25, 4, 4, 2, 32, 2).expect("valid geometry")
}

/// The 50-sensor deployment: a 10×5 grid covering the lounge.
///
/// # Panics
///
/// Never; the layout is statically valid.
pub fn deployment() -> Topology {
    Topology::grid(10, 5, 5.0, 7.6).expect("valid layout")
}

/// Runs E1 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E1 with the two model arms (standard CNN, MicroDeep) trained as
/// parallel sweep points; results are identical for every thread count.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    let mut rng = SeedRng::new(params.seed);
    let generator = TemperatureFieldGenerator::paper_lounge().expect("paper lounge");
    let mut data = generator.generate(params.samples, &mut rng);
    TemperatureFieldGenerator::normalize(&mut data);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);

    let config = cnn_config();
    let topo = deployment();
    let graph = config.unit_graph().expect("valid config");
    let assignment = Assignment::balanced_correspondence_threaded(&graph, &topo, runner.threads());

    // Two independent model arms, each trained from its own derived
    // stream: 0 = standard (centralized) CNN, 1 = MicroDeep with the
    // balanced assignment and independent per-unit weight updates. The
    // salt keeps the arm streams distinct from the data-generation RNG.
    let arms = runner.run_seeded(params.seed ^ 0xE1A0, 2, |arm, rng, _recorder| {
        if arm == 0 {
            let mut standard = config.build_centralized(rng);
            for _ in 0..params.epochs {
                standard.train_epoch(train, 0.05, 16, rng);
            }
            (standard.accuracy(test), 0.0)
        } else {
            let mut microdeep =
                DistributedCnn::new(config, assignment.clone(), WeightUpdate::PerUnit, rng);
            for _ in 0..params.epochs {
                microdeep.train_epoch(train, 0.05, 16, rng);
            }
            let acc = microdeep.accuracy(test);
            (acc, microdeep.replica_divergence())
        }
    });
    let (acc_standard, _) = arms.outputs[0];
    let (acc_microdeep, replica_divergence) = arms.outputs[1];

    // Communication cost: MicroDeep vs the centralized standard.
    let cost = CostModel::new(&topo);
    let central = Assignment::centralized(&graph, &topo);
    let cost_central = cost.forward_cost(&graph, &central);
    let cost_micro = cost.forward_cost(&graph, &assignment);
    let peak_ratio = cost_micro.max_cost() as f64 / cost_central.max_cost() as f64;

    let mut report = ExperimentReport::new(
        "E1",
        "Lounge temperature discomfort detection (25×17 cells, 50 sensors)",
    );
    report.push(Row::with_paper(
        "accuracy (standard CNN)",
        0.97,
        acc_standard,
        "fraction",
    ));
    report.push(Row::with_paper(
        "accuracy (MicroDeep)",
        0.95,
        acc_microdeep,
        "fraction",
    ));
    report.push(Row::with_paper(
        "peak-traffic ratio (MicroDeep / standard)",
        0.13,
        peak_ratio,
        "fraction",
    ));
    report.push(Row::measured_only(
        "max per-node cost (centralized)",
        cost_central.max_cost() as f64,
        "msgs/pass",
    ));
    report.push(Row::measured_only(
        "max per-node cost (MicroDeep)",
        cost_micro.max_cost() as f64,
        "msgs/pass",
    ));
    report.push(Row::measured_only(
        "replica divergence after training",
        replica_divergence,
        "L2",
    ));
    report.push_series(
        "per-node cost (centralized)",
        cost_central.costs().iter().map(|&c| c as f64).collect(),
    );
    report.push_series(
        "per-node cost (MicroDeep)",
        cost_micro.costs().iter().map(|&c| c as f64).collect(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_reproduces_the_shape() {
        let report = run(&Params::reduced());
        let std_acc = report.row("accuracy (standard CNN)").unwrap().measured;
        let md_acc = report.row("accuracy (MicroDeep)").unwrap().measured;
        let ratio = report
            .row("peak-traffic ratio (MicroDeep / standard)")
            .unwrap()
            .measured;
        // Shape: both learn well above chance; MicroDeep within a few
        // points of standard; peak traffic far below centralized.
        assert!(std_acc > 0.8, "std_acc={std_acc}");
        assert!(md_acc > 0.75, "md_acc={md_acc}");
        assert!(md_acc >= std_acc - 0.15, "md={md_acc} std={std_acc}");
        assert!(ratio < 0.5, "ratio={ratio}");
    }

    #[test]
    fn config_matches_paper_grid() {
        let c = cnn_config();
        assert_eq!(c.in_height() * c.in_width(), 425);
        assert_eq!(deployment().len(), 50);
    }
}
