//! E9 — distributed inference under radio faults and brownouts.
//!
//! No table in the paper corresponds to this harness; it probes the
//! *robustness* claim implicit in §IV.C: a CNN spread across a sensor
//! mesh must keep producing answers when the mesh misbehaves. The sweep
//! crosses packet-loss rates with recovery policies over a MicroDeep
//! deployment and reports the accuracy / traffic / latency trade-off
//! each policy buys:
//!
//! - **fail-fast** — any lost activation aborts the inference (an abort
//!   scores as a misclassification). The curve collapses almost
//!   immediately: with hundreds of cross-node messages per pass, even
//!   2 % loss kills nearly every inference.
//! - **retransmit** — lost messages are retried on a deterministic
//!   backoff schedule, trading extra traffic and hop-latency for
//!   survival at moderate loss.
//! - **zero-fill / last-value-hold** — lost activations are substituted
//!   and the inference completes degraded; accuracy decays smoothly
//!   with the loss rate.
//!
//! A final brownout scenario derives outage windows for three mesh
//! nodes from `zeiot-energy` capacitor traces (a 15 µW harvest cannot
//! sustain the 20 µW compute draw, so the devices duty-cycle) and trains
//! the CNN *through* the resulting fault fabric.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::id::NodeId;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_core::units::Watt;
use zeiot_energy::capacitor::Capacitor;
use zeiot_energy::consumer::PowerProfile;
use zeiot_energy::harvester::ConstantSource;
use zeiot_energy::intermittent::IntermittentDevice;
use zeiot_fault::{DegradeMode, FaultPlan, FaultStats, RecoveryPolicy};
use zeiot_microdeep::lossy::LossyRuntime;
use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
use zeiot_net::Topology;
use zeiot_nn::tensor::Tensor;
use zeiot_obs::Label;

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Labelled samples per class.
    pub samples_per_class: usize,
    /// Training epochs (baseline and brownout arms alike).
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            samples_per_class: 60,
            epochs: 15,
            seed: 42,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            samples_per_class: 30,
            epochs: 6,
            seed: 42,
        }
    }
}

/// Packet-loss rates swept per policy.
pub const LOSS_RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];

/// The recovery policies swept, with their report labels.
pub fn policies() -> [RecoveryPolicy; 4] {
    [
        RecoveryPolicy::FailFast,
        RecoveryPolicy::Retransmit {
            max_retries: 2,
            timeout: SimDuration::from_millis(50),
            backoff: 2.0,
        },
        RecoveryPolicy::Degrade {
            mode: DegradeMode::ZeroFill,
        },
        RecoveryPolicy::Degrade {
            mode: DegradeMode::LastValueHold,
        },
    ]
}

/// The experiment's deployment: a 3×3 mesh whose corner-to-corner links
/// need two hops, hosting a small 8×8 CNN.
///
/// # Panics
///
/// Never; the layout is statically valid.
pub fn deployment() -> Topology {
    Topology::grid(3, 3, 2.0, 3.0).expect("valid layout")
}

/// The experiment's CNN.
///
/// # Panics
///
/// Never; the geometry is statically valid.
pub fn cnn_config() -> CnnConfig {
    CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).expect("valid geometry")
}

/// Synthetic two-class 8×8 intensity data: class 0 lights the top-left
/// quadrant, class 1 the bottom-right, with mild Gaussian noise.
fn generate_data(samples_per_class: usize, rng: &mut SeedRng) -> Vec<(Tensor, usize)> {
    let mut data = Vec::with_capacity(samples_per_class * 2);
    for _ in 0..samples_per_class {
        for class in 0..2usize {
            let mut img = Tensor::zeros(vec![1, 8, 8]);
            for y in 0..4 {
                for x in 0..4 {
                    let (yy, xx) = if class == 0 { (y, x) } else { (y + 4, x + 4) };
                    img.set(&[0, yy, xx], 1.0 + rng.normal_with(0.0, 0.1) as f32);
                }
            }
            data.push((img, class));
        }
    }
    data
}

/// One inference pass's worth of simulated time on the mesh.
const PASS_PERIOD: SimDuration = SimDuration::from_millis(500);

/// Brownout-harvesting mesh nodes in the final scenario.
const BROWNOUT_NODES: [u32; 3] = [0, 4, 8];

/// Simulated-time budget of the capacitor traces driving the brownout
/// outage windows.
const TRACE_BUDGET: SimDuration = SimDuration::from_secs(120);

/// A duty-cycling zero-energy device: the 15 µW harvest cannot sustain
/// the backscatter tag's 20 µW compute draw, so the capacitor browns out
/// periodically.
fn brownout_device() -> IntermittentDevice<ConstantSource> {
    IntermittentDevice::new(
        ConstantSource::new(Watt::new(15e-6)).expect("positive harvest"),
        Capacitor::new(100e-6, 2.4, 1.8, 3.0).expect("valid capacitor"),
        PowerProfile::backscatter_tag().expect("valid profile"),
        SimDuration::from_millis(10),
    )
    .expect("valid device")
}

/// Per-point outcome of the sweep.
struct PointOutcome {
    accuracy: f64,
    stats: FaultStats,
    downtime: f64,
}

/// Runs E9 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E9: a clean baseline is trained once, then every (policy ×
/// loss-rate) point re-evaluates it through its own fault fabric as a
/// parallel sweep point, plus one brownout point that trains through
/// the faults. Results are identical for every thread count.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    let mut data_rng = SeedRng::with_stream(params.seed, 0xDA7A);
    let data = generate_data(params.samples_per_class, &mut data_rng);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);

    let config = cnn_config();
    let topo = deployment();
    let graph = config.unit_graph().expect("valid config");
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    // The shared clean baseline, trained losslessly once; sweep points
    // restore it from its validated JSON snapshot.
    let mut model_rng = SeedRng::with_stream(params.seed, 0x0DE1);
    let mut baseline = DistributedCnn::new(
        config,
        assignment.clone(),
        WeightUpdate::Independent,
        &mut model_rng,
    );
    let mut train_rng = SeedRng::with_stream(params.seed, 0x7124);
    for _ in 0..params.epochs {
        baseline.train_epoch(train, 0.08, 8, &mut train_rng);
    }
    let clean_accuracy = baseline.accuracy(test);
    let baseline_json = baseline.to_json().expect("serializable model");

    let plan_seed = params.seed ^ 0xFA17;
    let policy_set = policies();
    let points = policy_set.len() * LOSS_RATES.len() + 1;
    let brownout_index = points - 1;

    let sweep = runner.run_seeded(params.seed ^ 0xE9FA, points, |index, rng, recorder| {
        if index < brownout_index {
            // Inference-time faults on the pre-trained model, restored
            // from its validated JSON snapshot.
            let mut net = DistributedCnn::from_json(&baseline_json).expect("validated snapshot");
            let policy = policy_set[index / LOSS_RATES.len()];
            let rate = LOSS_RATES[index % LOSS_RATES.len()];
            let plan = FaultPlan::uniform(plan_seed, rate).expect("valid rate");
            let mut rt = LossyRuntime::new(plan, policy, &topo, PASS_PERIOD);
            let accuracy = net.accuracy_lossy(test, &mut rt);
            rt.record_to(recorder, Label::Global);
            PointOutcome {
                accuracy,
                stats: *rt.stats(),
                downtime: 0.0,
            }
        } else {
            // Brownouts: capacitor-trace outages on three nodes plus 5 %
            // loss, zero-fill recovery, training *through* the faults
            // from the same initial weights the baseline started from.
            let mut plan = FaultPlan::uniform(plan_seed ^ 0xB0, 0.05).expect("valid rate");
            let horizon = SimTime::ZERO + TRACE_BUDGET;
            for node in BROWNOUT_NODES {
                let trace = brownout_device().power_trace(TRACE_BUDGET, rng);
                plan = plan
                    .with_outages_from_trace(NodeId::new(node), &trace, horizon)
                    .expect("valid trace");
            }
            let downtime = BROWNOUT_NODES
                .iter()
                .map(|&n| plan.downtime_fraction(NodeId::new(n), horizon))
                .sum::<f64>()
                / BROWNOUT_NODES.len() as f64;
            let mut rt = LossyRuntime::new(
                plan,
                RecoveryPolicy::Degrade {
                    mode: DegradeMode::ZeroFill,
                },
                &topo,
                PASS_PERIOD,
            );
            let mut fresh_rng = SeedRng::with_stream(plan_seed, 0x0DE1);
            let mut net = DistributedCnn::new(
                config,
                assignment.clone(),
                WeightUpdate::Independent,
                &mut fresh_rng,
            );
            let mut epoch_rng = SeedRng::with_stream(plan_seed, 0x7124);
            for _ in 0..params.epochs {
                net.train_epoch_lossy(train, 0.08, 8, &mut epoch_rng, &mut rt);
            }
            let accuracy = net.accuracy_lossy(test, &mut rt);
            rt.record_to(recorder, Label::Global);
            PointOutcome {
                accuracy,
                stats: *rt.stats(),
                downtime,
            }
        }
    });

    let mut report = ExperimentReport::new(
        "E9",
        "Distributed inference under lossy links, recovery policies and brownouts",
    );
    report.push(Row::measured_only(
        "accuracy (clean baseline)",
        clean_accuracy,
        "fraction",
    ));
    for (p, policy) in policy_set.iter().enumerate() {
        let curve: Vec<f64> = (0..LOSS_RATES.len())
            .map(|r| sweep.outputs[p * LOSS_RATES.len() + r].accuracy)
            .collect();
        for (r, &rate) in LOSS_RATES.iter().enumerate() {
            report.push(Row::measured_only(
                format!("accuracy ({}, p={rate:.2})", policy.label()),
                curve[r],
                "fraction",
            ));
        }
        report.push_series(format!("accuracy vs loss ({})", policy.label()), curve);
    }
    // Traffic and latency: what each policy pays at 10 % loss.
    for (p, policy) in policy_set.iter().enumerate() {
        let stats = &sweep.outputs[p * LOSS_RATES.len() + 3].stats;
        report.push(Row::measured_only(
            format!("traffic overhead ({}, p=0.10)", policy.label()),
            stats.traffic_overhead(),
            "attempts/msg",
        ));
    }
    let retransmit = &sweep.outputs[LOSS_RATES.len() + 3].stats;
    report.push(Row::measured_only(
        "mean recovery latency (retransmit, p=0.10)",
        retransmit.mean_recovery_latency_hops(),
        "hops",
    ));
    let fail_fast = &sweep.outputs[2].stats;
    report.push(Row::measured_only(
        "inferences aborted (fail-fast, p=0.05)",
        fail_fast.aborted as f64,
        "count",
    ));
    let lossless = &sweep.outputs[0].stats;
    report.push(Row::measured_only(
        "messages per inference (lossless)",
        lossless.sent as f64 / test.len() as f64,
        "msgs",
    ));
    let brownout = &sweep.outputs[brownout_index];
    report.push(Row::measured_only(
        "accuracy (brownout training, 5% loss, zero-fill)",
        brownout.accuracy,
        "fraction",
    ));
    report.push(Row::measured_only(
        "mean node downtime (brownout nodes)",
        brownout.downtime,
        "fraction",
    ));
    report.push(Row::measured_only(
        "degraded deliveries (brownout)",
        brownout.stats.degraded as f64,
        "count",
    ));
    report.attach_metrics(sweep.metrics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_shows_policy_ordering() {
        let report = run(&Params::reduced());
        let clean = report.row("accuracy (clean baseline)").unwrap().measured;
        assert!(clean > 0.8, "clean={clean}");
        // p=0: every policy matches the clean baseline exactly.
        for policy in policies() {
            let at_zero = report
                .row(&format!("accuracy ({}, p=0.00)", policy.label()))
                .unwrap()
                .measured;
            assert_eq!(at_zero, clean, "{}", policy.label());
        }
        // Fail-fast collapses at moderate loss; degrade stays well above
        // the random-guess floor (0.5 for two classes).
        let ff = report.row("accuracy (fail-fast, p=0.10)").unwrap().measured;
        let zf = report.row("accuracy (zero-fill, p=0.10)").unwrap().measured;
        assert!(ff < 0.2, "fail-fast={ff}");
        assert!(zf > 0.5, "zero-fill={zf}");
        assert!(zf > ff);
        // Retransmission costs traffic but buys delivery.
        let overhead = report
            .row("traffic overhead (retransmit, p=0.10)")
            .unwrap()
            .measured;
        assert!(overhead > 1.0, "overhead={overhead}");
        // The brownout arm completes and reports real downtime.
        let downtime = report
            .row("mean node downtime (brownout nodes)")
            .unwrap()
            .measured;
        assert!(downtime > 0.0 && downtime < 1.0, "downtime={downtime}");
    }
}
