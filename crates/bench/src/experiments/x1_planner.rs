//! X1 — design-support planner scaling (paper §III.B / §V extension).
//!
//! The paper does not evaluate this system (it states it as a research
//! challenge); this harness characterizes our implementation: collection
//! round length versus network size and channel count, the feasibility
//! frontier for a 1 Hz collection cycle, and replanning behaviour under
//! failures.

use crate::report::{ExperimentReport, Row};
use zeiot_core::id::NodeId;
use zeiot_core::time::SimDuration;
use zeiot_net::Topology;
use zeiot_plan::planner::{Planner, Requirements};

/// Tunable experiment size.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Square-grid side lengths to sweep (network sizes side²).
    pub grid_sides: Vec<usize>,
    /// Channel counts to sweep.
    pub channels: Vec<usize>,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            grid_sides: vec![3, 5, 7, 9],
            channels: vec![1, 2, 4],
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            grid_sides: vec![3, 5],
            channels: vec![1, 2],
        }
    }
}

/// Runs X1.
///
/// # Panics
///
/// Panics if either sweep list is empty.
pub fn run(params: &Params) -> ExperimentReport {
    assert!(
        !params.grid_sides.is_empty() && !params.channels.is_empty(),
        "sweeps must be non-empty"
    );
    let req_base = Requirements {
        cycle: SimDuration::from_secs(1),
        payload_bits: 256,
        bit_rate_bps: 250e3,
        channels: 1,
    };

    let mut report = ExperimentReport::new(
        "X1",
        "Design-support planner: collection schedule scaling (extension)",
    );
    for &channels in &params.channels {
        let mut lengths = Vec::new();
        for &side in &params.grid_sides {
            let topo = Topology::grid(side, side, 2.0, 3.0).expect("valid grid");
            let planner = Planner::new(&topo, NodeId::new(0)).expect("valid sink");
            let req = Requirements {
                channels,
                ..req_base
            };
            let plan = planner.plan(&req).expect("valid requirements");
            lengths.push(plan.schedule.length() as f64);
        }
        report.push_series(format!("schedule slots ({channels} ch)"), lengths);
    }
    report.push_series(
        "network size (nodes)",
        params.grid_sides.iter().map(|&s| (s * s) as f64).collect(),
    );

    // Feasibility at the largest size.
    let side = *params.grid_sides.last().expect("non-empty");
    let topo = Topology::grid(side, side, 2.0, 3.0).expect("valid grid");
    let planner = Planner::new(&topo, NodeId::new(0)).expect("valid sink");
    let plan1 = planner.plan(&req_base).expect("valid");
    report.push(Row::measured_only(
        format!("round duration, {} nodes, 1 ch", side * side),
        plan1.round_duration.as_secs_f64() * 1e3,
        "ms",
    ));
    report.push(Row::measured_only(
        "max collection rate, 1 ch",
        plan1.max_rate_hz(),
        "rounds/s",
    ));
    let min_ch = planner.minimum_channels(&req_base, 8);
    report.push(Row::measured_only(
        "minimum channels for 1 Hz cycle",
        min_ch.map(|c| c as f64).unwrap_or(f64::NAN),
        "channels",
    ));

    // Replanning under 10 % failures.
    let failed: Vec<NodeId> = (1..=(side * side / 10).max(1))
        .map(|i| NodeId::new((i * 7 % (side * side)).max(1) as u32))
        .collect();
    let repaired = planner
        .replan_after_failures(&req_base, &failed)
        .expect("sink survives");
    report.push(Row::measured_only(
        "round duration after 10% failures",
        repaired.round_duration.as_secs_f64() * 1e3,
        "ms",
    ));
    report.push(Row::measured_only(
        "uncovered nodes after replanning",
        repaired.uncovered.len() as f64,
        "nodes",
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_has_sane_scaling() {
        let report = run(&Params::reduced());
        let one_ch = &report
            .series
            .iter()
            .find(|(n, _)| n == "schedule slots (1 ch)")
            .unwrap()
            .1;
        let two_ch = &report
            .series
            .iter()
            .find(|(n, _)| n == "schedule slots (2 ch)")
            .unwrap()
            .1;
        // Larger networks need longer rounds; more channels never hurt.
        assert!(one_ch[1] > one_ch[0]);
        for (a, b) in one_ch.iter().zip(two_ch) {
            assert!(b <= a, "2ch {b} > 1ch {a}");
        }
        let rate = report.row("max collection rate, 1 ch").unwrap().measured;
        assert!(rate > 1.0, "rate={rate}");
    }
}
