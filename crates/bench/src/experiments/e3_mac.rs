//! E3 — WLAN/backscatter coexistence MAC (paper §IV.A, ref \[64\]).
//!
//! The paper's protocol registers each IoT device's communication cycle
//! with the AP and schedules grants (with dummy carrier packets when WLAN
//! traffic is thin) so that "wireless LAN communication and backscatter
//! communication coexist with low overhead". This harness sweeps the
//! number of IoT devices and compares the scheduled MAC against naive
//! coexistence on WLAN delivery, backscatter PER and dummy overhead —
//! the qualitative claims of §IV.A.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_backscatter::mac::{simulate, simulate_observed, MacConfig, MacMode};
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;

/// Tunable experiment size.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Device counts to sweep.
    pub device_counts: Vec<usize>,
    /// Simulated seconds per point.
    pub seconds: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            device_counts: vec![5, 10, 20, 40, 80],
            seconds: 60,
            seed: 11,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            device_counts: vec![5, 40],
            seconds: 10,
            seed: 11,
        }
    }
}

/// Runs E3 serially (equivalent to [`run_with`] at any thread count).
///
/// # Panics
///
/// Panics if `params.device_counts` is empty.
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E3 with the device-count sweep fanned out across threads;
/// results are identical for every thread count (each point seeds both
/// MAC modes from the master seed, exactly as the serial harness always
/// has).
///
/// # Panics
///
/// Panics if `params.device_counts` is empty.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    assert!(!params.device_counts.is_empty(), "need at least one point");
    let duration = SimDuration::from_secs(params.seconds);

    // Instrument the largest sweep point (both modes into its recorder):
    // grants and dummy frames come from the scheduled run, collisions
    // from the naive one.
    let max_devices = *params.device_counts.iter().max().expect("non-empty");

    let sweep = runner.run_seeded(
        params.seed,
        params.device_counts.len(),
        |index, _rng, recorder| {
            let n = params.device_counts[index];
            let config = MacConfig::default_with_devices(n).expect("valid config");
            let mut rng = SeedRng::new(params.seed);
            let sched = if n == max_devices {
                simulate_observed(&config, MacMode::Scheduled, duration, &mut rng, recorder)
            } else {
                simulate(&config, MacMode::Scheduled, duration, &mut rng)
            };
            let mut rng = SeedRng::new(params.seed);
            let naive = if n == max_devices {
                simulate_observed(&config, MacMode::Naive, duration, &mut rng, recorder)
            } else {
                simulate(&config, MacMode::Naive, duration, &mut rng)
            };
            (
                sched.wlan_delivery_ratio(),
                naive.wlan_delivery_ratio(),
                sched.backscatter_per(),
                naive.backscatter_per(),
                sched.dummy_overhead(),
            )
        },
    );

    let mut wlan_sched = Vec::new();
    let mut wlan_naive = Vec::new();
    let mut bs_per_sched = Vec::new();
    let mut bs_per_naive = Vec::new();
    let mut dummy_overhead = Vec::new();
    for &(ws, wn, ps, pn, dummy) in &sweep.outputs {
        wlan_sched.push(ws);
        wlan_naive.push(wn);
        bs_per_sched.push(ps);
        bs_per_naive.push(pn);
        dummy_overhead.push(dummy);
    }

    let last = params.device_counts.len() - 1;
    let mut report = ExperimentReport::new(
        "E3",
        "Scheduled backscatter MAC vs naive coexistence (device sweep)",
    );
    report.push(Row::measured_only(
        "WLAN delivery @max devices (scheduled)",
        wlan_sched[last],
        "fraction",
    ));
    report.push(Row::measured_only(
        "WLAN delivery @max devices (naive)",
        wlan_naive[last],
        "fraction",
    ));
    report.push(Row::measured_only(
        "backscatter PER @max devices (scheduled)",
        bs_per_sched[last],
        "fraction",
    ));
    report.push(Row::measured_only(
        "backscatter PER @max devices (naive)",
        bs_per_naive[last],
        "fraction",
    ));
    report.push(Row::measured_only(
        "dummy-carrier overhead @max devices",
        dummy_overhead[last],
        "airtime fraction",
    ));
    report.push_series(
        "device counts",
        params.device_counts.iter().map(|&d| d as f64).collect(),
    );
    report.push_series("wlan delivery (scheduled)", wlan_sched);
    report.push_series("wlan delivery (naive)", wlan_naive);
    report.push_series("backscatter PER (scheduled)", bs_per_sched);
    report.push_series("backscatter PER (naive)", bs_per_naive);
    report.push_series("dummy overhead (scheduled)", dummy_overhead);
    report.attach_metrics(sweep.metrics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_reproduces_the_shape() {
        let report = run(&Params::reduced());
        let wlan_sched = report
            .row("WLAN delivery @max devices (scheduled)")
            .unwrap()
            .measured;
        let wlan_naive = report
            .row("WLAN delivery @max devices (naive)")
            .unwrap()
            .measured;
        let per_sched = report
            .row("backscatter PER @max devices (scheduled)")
            .unwrap()
            .measured;
        let per_naive = report
            .row("backscatter PER @max devices (naive)")
            .unwrap()
            .measured;
        // The protocol's claims: WLAN protected, backscatter reliable.
        assert!(wlan_sched > wlan_naive, "{wlan_sched} vs {wlan_naive}");
        assert!(per_sched < per_naive, "{per_sched} vs {per_naive}");
        assert!(wlan_sched > 0.95);
    }

    #[test]
    fn report_metrics_round_trip_as_jsonl() {
        // What the e3_mac binary writes under `--jsonl` must come back
        // intact through the deserializer.
        let report = run(&Params::reduced());
        let snap = report.export_snapshot();
        assert!(snap.counter_total("mac.grants") > 0, "observed run empty");
        let text = zeiot_obs::to_jsonl(&snap);
        let records = zeiot_obs::from_jsonl(&text).unwrap();
        assert_eq!(records.len(), text.lines().count());
        assert!(records.iter().any(|r| matches!(
            r,
            zeiot_obs::JsonlRecord::Gauge { name, .. } if name.starts_with("bench.")
        )));
    }

    #[test]
    fn naive_wlan_degrades_monotonically_in_the_sweep() {
        let report = run(&Params {
            device_counts: vec![5, 20, 80],
            seconds: 10,
            seed: 3,
        });
        let series = &report
            .series
            .iter()
            .find(|(n, _)| n == "wlan delivery (naive)")
            .unwrap()
            .1;
        assert!(series[0] > series[2], "{series:?}");
    }
}
