//! E11 — causal tracing, latency attribution, and SLO burn rates under
//! load × loss.
//!
//! No table in the paper corresponds to this harness; it closes the
//! observability loop over the serving stack that E10 opened. Every
//! sweep point serves the E10 tenant mix through `zeiot-serve` with
//! **causal tracing** on (a deterministic per-request sample), then
//! answers three questions the aggregate counters cannot:
//!
//! - **where does the time go?** Per-trace attribution
//!   ([`zeiot_obs::analysis::attribution`]) splits each request's
//!   end-to-end latency into queue / batch / infer self-times (the
//!   serve-clock spans tile, so the split sums exactly to the latency)
//!   and rides the fabric-clock hop spans along as message and
//!   retransmission annotations — exported as the `trace.attr.*`
//!   histograms.
//! - **which requests were slow, structurally?** Critical-path
//!   signatures group traces by their dominant span chain (the
//!   `trace-report` CLI renders the same view offline).
//! - **is the service meeting its objectives?** Each point's outcome is
//!   sliced into 1 s windows ([`zeiot_serve::windowed_snapshots`]) and
//!   evaluated against declarative [`SloSpec`]s — p99 latency,
//!   deadline-miss rate, shed rate — with burn-rate thresholds; the
//!   breach stream is part of the report and is byte-reproducible.
//!
//! The sweep crosses offered load (0.5×, 1×, 3×) with fabric loss (0,
//! 2 %, 5 %) under a retransmit-then-stale recovery ladder. The axes
//! separate cleanly, which is itself the finding: load moves the
//! serve-clock SLOs (queueing pushes p99 and then the shed rate), while
//! fabric loss never does — substitution and retransmission cost fabric
//! time, not serve time — so the loss axis is visible *only* in the
//! causal traces (retransmit backoff, hop loss annotations) and the
//! outcome-quality counters (stale/failed answers). Aggregate serving
//! metrics alone would hide that an unreliable fabric is being ridden;
//! the attribution layer is what surfaces it.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_fault::{FaultPlan, RecoveryPolicy};
use zeiot_microdeep::{Assignment, DistributedCnn, WeightUpdate};
use zeiot_nn::tensor::Tensor;
use zeiot_obs::analysis::{attribution, LayerRollup};
use zeiot_obs::slo::{evaluate_all, SloBreach, SloObjective, SloSpec};
use zeiot_obs::trace::{SpanLayer, Trace, TraceSampler, Tracer};
use zeiot_obs::Label;
use zeiot_serve::{
    windowed_snapshots, ArrivalProcess, DegradedServing, ServeConfig, ServeReport, Server, Tenant,
    TenantSpec,
};

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Labelled samples per class (training + tenant request pools).
    pub samples_per_class: usize,
    /// Training epochs for the shared baseline model.
    pub epochs: usize,
    /// Simulated serving horizon per sweep point, in seconds.
    pub horizon_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// Deterministic trace sampling rate in `[0, 1]` (per-unit hop
    /// spans make traced requests heavy; sample, don't take all).
    pub sample_rate: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            samples_per_class: 40,
            epochs: 10,
            horizon_secs: 8,
            seed: 42,
            sample_rate: 0.25,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            samples_per_class: 24,
            epochs: 5,
            horizon_secs: 4,
            seed: 42,
            sample_rate: 0.5,
        }
    }
}

/// Load multipliers swept over the nominal tenant mix.
pub const LOAD_SCALES: [f64; 3] = [0.5, 1.0, 3.0];

/// Per-attempt fabric loss rates swept (0 = lossless serving).
pub const LOSS_RATES: [f64; 3] = [0.0, 0.02, 0.05];

/// Worker time per inference (matches E10).
const SERVICE_TIME: SimDuration = SimDuration::from_millis(40);

/// Fixed worker time per dispatched micro-batch (matches E10).
const BATCH_OVERHEAD: SimDuration = SimDuration::from_millis(10);

/// Relative deadline granted to every request (matches E10).
const DEADLINE: SimDuration = SimDuration::from_millis(400);

/// Fabric clock advance per executed inference (matches E10).
const PASS_PERIOD: SimDuration = SimDuration::from_millis(500);

/// Burn-rate evaluation window.
const WINDOW: SimDuration = SimDuration::from_secs(1);

/// Index of the nominal point (1.0× load, 2 % loss) whose traces feed
/// the attribution rows.
const NOMINAL: usize = 4;

/// The declarative objectives every point is held to, fleet-wide scope.
pub fn slo_specs() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "p99-latency".to_owned(),
            scope: Label::Global,
            objective: SloObjective::P99LatencySecs { target: 0.25 },
            window: WINDOW,
            burn_threshold: 1.0,
        },
        SloSpec {
            name: "deadline-miss".to_owned(),
            scope: Label::Global,
            objective: SloObjective::DeadlineMissRate { target: 0.05 },
            window: WINDOW,
            burn_threshold: 2.0,
        },
        SloSpec {
            name: "shed-rate".to_owned(),
            scope: Label::Global,
            objective: SloObjective::ShedRate { target: 0.01 },
            window: WINDOW,
            burn_threshold: 2.0,
        },
    ]
}

/// `(load scale, loss rate)` of sweep point `index`, row-major over
/// [`LOAD_SCALES`] × [`LOSS_RATES`].
pub fn point(index: usize) -> (f64, f64) {
    (
        LOAD_SCALES[index / LOSS_RATES.len()],
        LOSS_RATES[index % LOSS_RATES.len()],
    )
}

/// Stable row label of sweep point `index`.
fn point_label(index: usize) -> String {
    let (scale, loss) = point(index);
    format!("load {scale:.2}x, loss {loss:.3}")
}

/// The E10 tenant mix, scaled.
fn tenant_specs(load_scale: f64) -> Vec<TenantSpec> {
    let mix = [
        ("motion", ArrivalProcess::poisson(8.0)),
        (
            "doors",
            ArrivalProcess::periodic(SimDuration::from_millis(150)),
        ),
        (
            "hvac",
            ArrivalProcess::bursts(
                3,
                SimDuration::from_millis(5),
                SimDuration::from_millis(400),
            ),
        ),
    ];
    mix.into_iter()
        .map(|(name, arrivals)| TenantSpec::new(name, arrivals.scaled(load_scale), DEADLINE))
        .collect()
}

/// What one sweep point produced.
#[derive(Debug, Clone)]
struct PointResult {
    report: ServeReport,
    traces: Vec<Trace>,
    breaches: Vec<SloBreach>,
}

/// Runs E11 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E11 and discards the trace export (the report keeps the
/// attribution and breach rows).
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    run_with_traces(params, runner).0
}

/// Runs E11: one clean baseline is trained and shared, then every sweep
/// point serves its scaled tenant mix with causal tracing on, slices
/// the outcome into burn-rate windows, and evaluates the SLO specs.
/// Returns the report plus every sampled trace in `(point, tenant,
/// seq)` order — byte-identical across thread counts.
pub fn run_with_traces(params: &Params, runner: &SweepRunner) -> (ExperimentReport, Vec<Trace>) {
    let mut data_rng = SeedRng::with_stream(params.seed, 0xDA7A);
    let data = super::e10_serving::generate_data(params.samples_per_class, &mut data_rng);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);

    let config = super::e10_serving::cnn_config();
    let topo = super::e10_serving::deployment();
    let graph = config.unit_graph().expect("valid config");
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    let mut model_rng = SeedRng::with_stream(params.seed, 0x0DE1);
    let mut baseline = DistributedCnn::new(
        config,
        assignment,
        WeightUpdate::Independent,
        &mut model_rng,
    );
    let mut train_rng = SeedRng::with_stream(params.seed, 0x7124);
    for _ in 0..params.epochs {
        baseline.train_epoch(train, 0.08, 8, &mut train_rng);
    }
    let baseline_json = baseline.to_json().expect("serializable model");

    let horizon = SimDuration::from_secs(params.horizon_secs);
    let plan_seed = params.seed ^ 0xFA17;
    let rate = params.sample_rate.clamp(0.0, 1.0);
    let points = LOAD_SCALES.len() * LOSS_RATES.len();
    let pool: Vec<(Tensor, usize)> = test.to_vec();
    let specs = slo_specs();

    let sweep = runner.run_seeded(params.seed ^ 0xE115, points, |index, _rng, recorder| {
        let (scale, loss) = point(index);
        let tenants: Vec<Tenant> = tenant_specs(scale)
            .into_iter()
            .map(|ts| {
                let net = DistributedCnn::from_json(&baseline_json).expect("validated snapshot");
                Tenant::new(ts, net, pool.clone()).expect("non-empty pool")
            })
            .collect();
        let serve_config = ServeConfig::new(2, 4, 16, SERVICE_TIME)
            .expect("valid config")
            .with_batch_overhead(BATCH_OVERHEAD);
        let mut server = Server::new(serve_config, super::e10_serving::deployment(), tenants)
            .expect("tenants present");
        if loss > 0.0 {
            server = server.with_degraded(DegradedServing {
                plan: FaultPlan::uniform(plan_seed, loss).expect("valid rate"),
                policy: RecoveryPolicy::Retransmit {
                    max_retries: 2,
                    timeout: SimDuration::from_millis(2),
                    backoff: 2.0,
                },
                pass_period: PASS_PERIOD,
                stale_cache: true,
                replace: None,
            });
        }
        // Sampling is a pure function of (seed, point, trace id), so the
        // sampled set is invariant to threads and completion order.
        let mut tracer = Tracer::new(TraceSampler::rate(
            params.seed ^ 0xE11 ^ ((index as u64) << 8),
            rate,
        ));
        let outcome = server.run_traced(params.seed, horizon, Some(recorder), Some(&mut tracer));
        let traces = tracer.take_finished();
        // Per-layer latency attribution histograms, one observation per
        // sampled trace.
        for trace in &traces {
            let attr = attribution(trace);
            recorder.observe("trace.attr.queue", Label::Global, attr.queue.as_secs_f64());
            recorder.observe("trace.attr.batch", Label::Global, attr.batch.as_secs_f64());
            recorder.observe("trace.attr.infer", Label::Global, attr.infer.as_secs_f64());
            recorder.observe("trace.attr.hop", Label::Global, attr.hop_messages as f64);
            recorder.observe(
                "trace.attr.retransmit",
                Label::Global,
                attr.retransmit.as_secs_f64(),
            );
        }
        let windows = windowed_snapshots(&outcome, WINDOW);
        let breaches = evaluate_all(&specs, &windows);
        recorder.add("slo.breaches", Label::Global, breaches.len() as u64);
        PointResult {
            report: outcome.report,
            traces,
            breaches,
        }
    });

    let mut report = ExperimentReport::new(
        "E11",
        "Causal tracing, latency attribution, and SLO burn rates under load x loss",
    );

    let breach_curve: Vec<f64> = sweep
        .outputs
        .iter()
        .map(|p| p.breaches.len() as f64)
        .collect();
    for (index, result) in sweep.outputs.iter().enumerate() {
        let label = point_label(index);
        let total = result.report.total();
        report.push(Row::measured_only(
            format!("p99 latency ({label})"),
            total.p99_latency().unwrap_or(0.0) * 1e3,
            "ms",
        ));
        report.push(Row::measured_only(
            format!("shed rate ({label})"),
            total.shed_rate(),
            "fraction",
        ));
        report.push(Row::measured_only(
            format!("slo breaches ({label})"),
            result.breaches.len() as f64,
            "count",
        ));
        let max_burn = result
            .breaches
            .iter()
            .map(|b| b.burn_rate)
            .filter(|b| b.is_finite())
            .fold(0.0f64, f64::max);
        report.push(Row::measured_only(
            format!("max finite burn rate ({label})"),
            max_burn,
            "x budget",
        ));
        let retransmit: f64 = result
            .traces
            .iter()
            .map(|t| attribution(t).retransmit.as_secs_f64())
            .sum();
        report.push(Row::measured_only(
            format!("mean retransmit backoff per trace ({label})"),
            retransmit * 1e3 / result.traces.len().max(1) as f64,
            "ms",
        ));
        report.push(Row::measured_only(
            format!("stale+failed answers ({label})"),
            (total.stale + total.failed) as f64,
            "count",
        ));
    }
    report.push_series("slo breaches by point", breach_curve);

    // Attribution at the nominal point: where the sampled requests'
    // latency actually went, as mean milliseconds per layer.
    let nominal = &sweep.outputs[NOMINAL];
    let rollup = LayerRollup::of(&nominal.traces);
    let traced = nominal.traces.len().max(1) as f64;
    for layer in [SpanLayer::Queue, SpanLayer::Batch, SpanLayer::Infer] {
        report.push(Row::measured_only(
            format!("mean {} self-time (nominal)", layer.metric_suffix()),
            rollup.self_time[layer as usize].as_secs_f64() * 1e3 / traced,
            "ms",
        ));
    }
    report.push(Row::measured_only(
        "mean hop messages per trace (nominal)",
        rollup.hop_messages as f64 / traced,
        "messages",
    ));
    report.push(Row::measured_only(
        "sampled traces (nominal)",
        nominal.traces.len() as f64,
        "count",
    ));

    report.attach_metrics(sweep.metrics);
    let traces: Vec<Trace> = sweep.outputs.into_iter().flat_map(|p| p.traces).collect();
    (report, traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_traces_attributes_and_breaches() {
        let (report, traces) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        // Sampling produced traces, and every one tiles its latency.
        assert!(!traces.is_empty());
        for trace in &traces {
            let root = trace.root().expect("rooted trace");
            assert_eq!(attribution(trace).total(), root.duration());
        }
        // Overload at 2x trips the shed-rate objective; the light
        // lossless point burns no budget.
        let calm = report
            .row("slo breaches (load 0.50x, loss 0.000)")
            .expect("row present")
            .measured;
        let hot = report
            .row("slo breaches (load 3.00x, loss 0.000)")
            .expect("row present")
            .measured;
        assert_eq!(calm, 0.0, "calm point must not breach");
        assert!(hot > 0.0, "overload must breach");
        // The loss axis never moves the serve clock; it shows up as
        // fabric-clock retransmit backoff in the traces instead.
        let lossless = report
            .row("mean retransmit backoff per trace (load 1.00x, loss 0.000)")
            .expect("row present")
            .measured;
        let lossy = report
            .row("mean retransmit backoff per trace (load 1.00x, loss 0.050)")
            .expect("row present")
            .measured;
        assert_eq!(lossless, 0.0, "no retransmits without loss");
        assert!(lossy > 0.0, "5% loss must retransmit");
        // The attribution histograms made it into the metrics export.
        let snapshot = report.export_snapshot();
        assert!(snapshot
            .histograms
            .iter()
            .any(|h| h.name == "trace.attr.queue"));
        assert!(snapshot
            .histograms
            .iter()
            .any(|h| h.name == "trace.attr.retransmit"));
    }

    #[test]
    fn report_and_traces_are_reproducible() {
        let (report_a, traces_a) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        let (report_b, traces_b) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        assert_eq!(report_a.to_json(), report_b.to_json());
        assert_eq!(traces_a, traces_b);
    }

    #[test]
    fn point_grid_is_row_major() {
        assert_eq!(point(0), (0.5, 0.0));
        assert_eq!(point(NOMINAL), (1.0, 0.02));
        assert_eq!(point(8), (3.0, 0.05));
    }
}
