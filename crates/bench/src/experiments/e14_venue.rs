//! E14 — composite venue scenarios: fused vs single-modality context
//! recognition under faults.
//!
//! No table in the paper corresponds to this harness; it evaluates the
//! `zeiot-scenario` integration layer (DESIGN.md §13) — the paper's
//! §III.B claim that direct and indirect sensing modalities should be
//! *integrated* — end to end through the serving runtime. Both venue
//! archetypes are compiled once (shared across the sweep); every sweep
//! point fixes a venue and a uniform fabric fault level, serves all
//! four modality tenants through one fault fabric, then scores every
//! fusion policy *and* every single-modality baseline against the
//! venue's ground-truth schedule from the same completions:
//!
//! - **does fusion help?** Fused accuracy per policy
//!   (reliability-weighted log-linear pooling, majority vote, best
//!   single) next to each modality alone; the headline `fusion margin`
//!   is reliability-weighted fused minus the best single.
//! - **does reliability weighting earn its keep?** Weights combine
//!   each modality's holdout calibration accuracy with live serving
//!   signals — degradation-state dwell fractions and answer rates — so
//!   a modality whose fabric misbehaves is discounted instead of
//!   poisoning the pool; per-answer stale results are discounted
//!   further, and shed/failed instants contribute zero weight (falling
//!   back gracefully to the surviving modalities).
//! - **is it deterministic?** The report and trace JSONL export are
//!   byte-identical across `--threads 1/4` (CI diffs the `e14_venue`
//!   bin's output), and the reduced report is a golden fixture.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::time::SimDuration;
use zeiot_fault::{DegradeMode, FaultPlan, RecoveryPolicy};
use zeiot_net::Topology;
use zeiot_obs::trace::{Trace, TraceSampler, Tracer};
use zeiot_obs::Label;
use zeiot_scenario::{
    log_posterior, mode_discount, reliability_weight, CompiledScenario, Evidence, FusionEngine,
    FusionPolicy, FusionStats, Scenario, Venue, DEFAULT_EVIDENCE_FLOOR,
};
use zeiot_serve::{DegradedServing, DwellState, Outcome, ServeConfig, Server, ServiceMode};

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Observation instants per venue (one synchronized request per
    /// modality per instant).
    pub observations: usize,
    /// Calibration draws per context level and modality.
    pub training_per_level: usize,
    /// Master seed.
    pub seed: u64,
    /// Deterministic trace sampling rate in `[0, 1]`.
    pub sample_rate: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            observations: 48,
            training_per_level: 30,
            seed: 42,
            sample_rate: 0.25,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            observations: 16,
            training_per_level: 12,
            seed: 42,
            sample_rate: 0.5,
        }
    }
}

/// Instant-`k` answer from one modality: the service mode it arrived
/// in and its raw class scores (absent when the request was shed,
/// failed, or missed the observation window).
type Answer = Option<(ServiceMode, Vec<f64>)>;

/// Uniform per-attempt fabric loss rates swept (0 = clean fabric).
pub const FAULT_LEVELS: [f64; 3] = [0.0, 0.05, 0.15];

/// The nominal operating point the headline acceptance row is read at.
pub const DEFAULT_FAULT: f64 = 0.05;

/// Worker time per inference (matches E10–E13).
const SERVICE_TIME: SimDuration = SimDuration::from_millis(40);

/// Fixed worker time per dispatched micro-batch (matches E10–E13).
const BATCH_OVERHEAD: SimDuration = SimDuration::from_millis(10);

/// Fabric clock advance per executed inference (matches E10–E13).
const PASS_PERIOD: SimDuration = SimDuration::from_millis(500);

/// `(venue index, fault level)` of sweep point `index`, row-major over
/// [`Venue::ALL`] × [`FAULT_LEVELS`].
pub fn point(index: usize) -> (usize, f64) {
    (
        index / FAULT_LEVELS.len(),
        FAULT_LEVELS[index % FAULT_LEVELS.len()],
    )
}

/// Stable label of sweep point `index`.
fn point_label(index: usize) -> String {
    let (venue, fault) = point(index);
    format!(
        "{}, fault {}",
        Venue::ALL[venue].label(),
        fault_label(fault)
    )
}

/// Integer-percent fault tag (stable across float formatting).
fn fault_label(fault: f64) -> String {
    format!("{}%", (fault * 100.0).round() as u32)
}

/// What one sweep point produced.
#[derive(Debug, Clone)]
struct PointResult {
    /// Fused accuracy per [`FusionPolicy::ALL`] entry.
    fused: Vec<f64>,
    /// Accuracy of each modality alone (missing answers count wrong).
    singles: Vec<f64>,
    /// The reliability-weighted stream's counters.
    stats: FusionStats,
    /// Mean full-dwell fraction across the four tenants.
    full_dwell: f64,
    traces: Vec<Trace>,
}

/// Runs E14 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E14 and discards the trace export.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    run_with_traces(params, runner).0
}

/// Runs E14: both venues are compiled once and shared; each sweep point
/// serves the four modality tenants through one uniform-loss fabric,
/// then scores every fusion policy and single-modality baseline from
/// the same completions. Returns the report plus every sampled trace in
/// `(point, tenant, seq)` order — byte-identical across thread counts.
pub fn run_with_traces(params: &Params, runner: &SweepRunner) -> (ExperimentReport, Vec<Trace>) {
    let compiled: Vec<CompiledScenario> = Venue::ALL
        .iter()
        .map(|&venue| {
            Scenario::new(
                venue,
                params.observations,
                params.training_per_level,
                params.seed,
            )
            .compile()
            .expect("valid scenario spec")
        })
        .collect();
    let topo = Topology::grid(3, 3, 2.0, 3.0).expect("valid layout");
    let plan_seed = params.seed ^ 0xFA17;
    let rate = params.sample_rate.clamp(0.0, 1.0);
    let points = Venue::ALL.len() * FAULT_LEVELS.len();

    let sweep = runner.run_seeded(params.seed ^ 0xE14A, points, |index, _rng, recorder| {
        let (venue_index, fault) = point(index);
        let scenario = &compiled[venue_index];
        let venue = Venue::ALL[venue_index];
        let observations = scenario.truth.len();
        let modality_count = scenario.modalities().len();

        let tenants = scenario.make_tenants(topo.len()).expect("compiled pools");
        let config = ServeConfig::new(4, 4, 16, SERVICE_TIME)
            .expect("valid config")
            .with_batch_overhead(BATCH_OVERHEAD);
        let mut server = Server::new(config, topo.clone(), tenants).expect("tenants present");
        // Every point serves through a fabric — fault 0 uses a lossless
        // plan rather than no fabric, so the clean arm exercises the
        // same gather/span machinery it is compared against.
        server = server.with_degraded(DegradedServing {
            plan: FaultPlan::uniform(plan_seed, fault).expect("valid rate"),
            policy: RecoveryPolicy::Degrade {
                mode: DegradeMode::LastValueHold,
            },
            pass_period: PASS_PERIOD,
            stale_cache: true,
            replace: None,
        });
        let mut tracer = Tracer::new(TraceSampler::rate(
            params.seed ^ 0xE14 ^ ((index as u64) << 8),
            rate,
        ));
        let outcome = server.run_traced(
            params.seed,
            scenario.horizon(),
            Some(&mut *recorder),
            Some(&mut tracer),
        );

        // Run-level modality weights: holdout calibration accuracy
        // discounted by each tenant's dwell health and answer rate.
        let weights: Vec<f64> = scenario
            .modalities()
            .iter()
            .zip(&outcome.report.tenants)
            .map(|(m, (_, stats))| reliability_weight(m.calib_accuracy, stats))
            .collect();
        let full_dwell = outcome
            .report
            .tenants
            .iter()
            .map(|(_, s)| s.dwell.fraction(DwellState::Full))
            .sum::<f64>()
            / modality_count as f64;

        // Answer matrix: instant k of modality t (periodic arrivals
        // make seq k the instant-k observation).
        let mut answers: Vec<Vec<Answer>> = vec![vec![None; observations]; modality_count];
        for c in &outcome.completions {
            if let Outcome::Served { mode, logits, .. } = &c.outcome {
                if (c.seq as usize) < observations {
                    answers[c.tenant][c.seq as usize] =
                        Some((*mode, logits.iter().map(|&v| f64::from(v)).collect()));
                }
            }
        }

        let singles: Vec<f64> = answers
            .iter()
            .map(|row| {
                let correct = row
                    .iter()
                    .zip(&scenario.truth)
                    .filter(|(answer, &truth)| match answer {
                        Some((_, scores)) => argmax(scores) == truth,
                        None => false,
                    })
                    .count();
                correct as f64 / observations as f64
            })
            .collect();

        let mut fused = Vec::with_capacity(FusionPolicy::ALL.len());
        let mut rw_stats = FusionStats::default();
        for policy in FusionPolicy::ALL {
            let mut engine = FusionEngine::new(policy);
            let correct = (0..observations)
                .filter(|&k| {
                    let evidence: Vec<Evidence> = (0..modality_count)
                        .map(|t| match &answers[t][k] {
                            // Raw modality scores are magnitude-
                            // incomparable (NB log-likelihoods vs CNN
                            // logits); pool bounded log-posteriors.
                            Some((mode, scores)) => Evidence {
                                log_scores: log_posterior(scores, DEFAULT_EVIDENCE_FLOOR),
                                weight: weights[t] * mode_discount(*mode),
                            },
                            None => Evidence {
                                log_scores: Vec::new(),
                                weight: 0.0,
                            },
                        })
                        .collect();
                    engine.estimate(&evidence) == Some(scenario.truth[k])
                })
                .count();
            fused.push(correct as f64 / observations as f64);
            engine.record_to(
                recorder,
                Label::part(format!(
                    "{}/f{}/{}",
                    venue.label(),
                    (fault * 100.0).round() as u32,
                    policy.label()
                )),
            );
            if policy == FusionPolicy::ReliabilityWeighted {
                rw_stats = engine.stats();
            }
        }

        PointResult {
            fused,
            singles,
            stats: rw_stats,
            full_dwell,
            traces: tracer.take_finished(),
        }
    });

    let mut report = ExperimentReport::new(
        "E14",
        "Composite venue scenarios: fused vs single-modality context recognition x venue x fault level",
    );

    for (venue_index, venue) in Venue::ALL.iter().enumerate() {
        for modality in compiled[venue_index].modalities() {
            report.push(Row::measured_only(
                format!(
                    "calib accuracy ({}, {})",
                    modality.kind.label(),
                    venue.label()
                ),
                modality.calib_accuracy,
                "fraction",
            ));
        }
    }

    for (index, result) in sweep.outputs.iter().enumerate() {
        let label = point_label(index);
        let (venue_index, _) = point(index);
        for (policy, accuracy) in FusionPolicy::ALL.iter().zip(&result.fused) {
            report.push(Row::measured_only(
                format!("fused accuracy ({}, {label})", policy.label()),
                *accuracy,
                "fraction",
            ));
        }
        for (modality, accuracy) in compiled[venue_index]
            .modalities()
            .iter()
            .zip(&result.singles)
        {
            report.push(Row::measured_only(
                format!("single accuracy ({}, {label})", modality.kind.label()),
                *accuracy,
                "fraction",
            ));
        }
        let best_single = result.singles.iter().copied().fold(0.0, f64::max);
        report.push(Row::measured_only(
            format!("fusion margin ({label})"),
            result.fused[0] - best_single,
            "fraction",
        ));
        report.push(Row::measured_only(
            format!("fallback instants ({label})"),
            result.stats.fallback as f64,
            "count",
        ));
        report.push(Row::measured_only(
            format!("abstained instants ({label})"),
            result.stats.abstained as f64,
            "count",
        ));
        report.push(Row::measured_only(
            format!("mean full-dwell fraction ({label})"),
            result.full_dwell,
            "fraction",
        ));
    }

    let margins: Vec<f64> = sweep
        .outputs
        .iter()
        .map(|r| r.fused[0] - r.singles.iter().copied().fold(0.0, f64::max))
        .collect();
    report.push_series("fusion margin by point", margins);

    report.attach_metrics(sweep.metrics);
    let traces: Vec<Trace> = sweep.outputs.into_iter().flat_map(|p| p.traces).collect();
    (report, traces)
}

/// Workspace argmax convention: first class wins ties.
fn argmax(scores: &[f64]) -> usize {
    let mut best = 0usize;
    for (c, score) in scores.iter().enumerate().skip(1) {
        if score.total_cmp(&scores[best]) == std::cmp::Ordering::Greater {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_obs::trace::SpanLayer;

    fn row(report: &ExperimentReport, label: &str) -> f64 {
        report.row(label).expect("row present").measured
    }

    #[test]
    fn point_grid_is_row_major() {
        assert_eq!(point(0), (0, 0.0));
        assert_eq!(point(1), (0, 0.05));
        assert_eq!(point(2), (0, 0.15));
        assert_eq!(point(3), (1, 0.0));
        assert_eq!(point(5), (1, 0.15));
    }

    #[test]
    fn fused_beats_singles_and_degrades_gracefully() {
        let params = Params::reduced();
        let (report, traces) = run_with_traces(&params, &SweepRunner::serial());
        for venue in Venue::ALL {
            // Zero-fault: reliability-weighted fusion at least matches
            // the best single modality.
            let clean = format!("{}, fault 0%", venue.label());
            assert!(
                row(&report, &format!("fusion margin ({clean})")) >= 0.0,
                "fused lost to a single modality on the clean fabric at {clean}"
            );
            assert_eq!(row(&report, &format!("abstained instants ({clean})")), 0.0);
            // Default fault level: fused strictly beats every single.
            let nominal = format!("{}, fault {}", venue.label(), fault_label(DEFAULT_FAULT));
            let fused = row(
                &report,
                &format!("fused accuracy (reliability_weighted, {nominal})"),
            );
            for modality in ["congestion", "counting", "csi", "cnn"] {
                let single = row(&report, &format!("single accuracy ({modality}, {nominal})"));
                assert!(
                    fused > single,
                    "fused ({fused}) did not beat {modality} ({single}) at {nominal}"
                );
            }
        }
        // Faults reduce full dwell below the clean arm's.
        let clean = row(&report, "mean full-dwell fraction (train_rush, fault 0%)");
        let faulty = row(&report, "mean full-dwell fraction (train_rush, fault 15%)");
        assert!(
            faulty < clean,
            "15% loss left dwell untouched: {faulty} vs {clean}"
        );
        // The sensing gathers leave fusion.gather hop spans in the
        // sampled traces.
        assert!(
            traces.iter().any(|t| t
                .spans
                .iter()
                .any(|s| s.layer == SpanLayer::Hop && s.name == "fusion.gather")),
            "no fusion.gather spans sampled"
        );
    }

    #[test]
    fn default_table_fused_beats_every_single_at_the_nominal_fault() {
        // The acceptance criterion is read off the committed
        // EXPERIMENTS.md table, which is produced at default params.
        let (report, _) = run_with_traces(&Params::default(), &SweepRunner::serial());
        for venue in Venue::ALL {
            let nominal = format!("{}, fault {}", venue.label(), fault_label(DEFAULT_FAULT));
            let fused = row(
                &report,
                &format!("fused accuracy (reliability_weighted, {nominal})"),
            );
            for modality in ["congestion", "counting", "csi", "cnn"] {
                let single = row(&report, &format!("single accuracy ({modality}, {nominal})"));
                assert!(
                    fused > single,
                    "fused ({fused}) did not beat {modality} ({single}) at {nominal}"
                );
            }
        }
    }

    #[test]
    fn report_and_traces_are_reproducible() {
        let (report_a, traces_a) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        let (report_b, traces_b) = run_with_traces(&Params::reduced(), &SweepRunner::serial());
        assert_eq!(report_a.to_json(), report_b.to_json());
        assert_eq!(traces_a, traces_b);
    }
}
