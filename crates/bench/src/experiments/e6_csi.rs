//! E6 — CSI-feedback localization (paper §IV.B, ref \[8\]).
//!
//! Paper setting: an IEEE 802.11ac explicit-feedback CSI learning system
//! extracting 624 features per frame, evaluated on device-free user
//! localization over seven positions under six behaviour/antenna
//! patterns. Reported: ≈96 % accuracy "when the behavior of the user is
//! walking and the orientations of the antennas have divergence".

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_data::csi::{AntennaOrientation, CsiGenerator, CsiPattern, CsiSample};
use zeiot_sensing::csi::CsiLocalizer;

/// Tunable experiment size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Training samples per position per pattern.
    pub train_per_position: usize,
    /// Test samples per position per pattern.
    pub test_per_position: usize,
    /// k of the k-NN backend.
    pub k: usize,
    /// Master seed (environment + sampling).
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            train_per_position: 40,
            test_per_position: 15,
            k: 5,
            seed: 19,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            train_per_position: 12,
            test_per_position: 5,
            k: 3,
            seed: 19,
        }
    }
}

fn to_pairs(samples: Vec<CsiSample>) -> Vec<(Vec<f64>, usize)> {
    samples
        .into_iter()
        .map(|s| (s.features, s.position))
        .collect()
}

fn pattern_name(p: CsiPattern) -> String {
    let behaviour = if p.walking { "walking" } else { "stationary" };
    let antenna = match p.antenna {
        AntennaOrientation::Aligned => "aligned",
        AntennaOrientation::Divergent => "divergent",
        AntennaOrientation::Mixed => "mixed",
    };
    format!("{behaviour}/{antenna}")
}

/// Runs E6 serially (equivalent to [`run_with`] at any thread count).
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E6 with one sweep point per behaviour/antenna pattern, each
/// sampling from its own derived stream; results are identical for every
/// thread count.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    let generator = CsiGenerator::new(params.seed).expect("generator");
    let patterns = CsiPattern::all();

    let sweep = runner.run_seeded(
        params.seed ^ 0xABCD,
        patterns.len(),
        |index, rng, _recorder| {
            let (train, test) = generator.split(
                patterns[index],
                params.train_per_position,
                params.test_per_position,
                rng,
            );
            let localizer = CsiLocalizer::fit(&to_pairs(train), params.k).expect("fit");
            localizer.evaluate(&to_pairs(test)).accuracy()
        },
    );

    let mut report = ExperimentReport::new(
        "E6",
        "Device-free localization from 802.11ac CSI feedback (7 positions × 6 patterns)",
    );
    let mut best = (0.0f64, String::new());
    let mut accuracies = Vec::new();
    for (pattern, &acc) in patterns.iter().zip(&sweep.outputs) {
        accuracies.push(acc);
        if acc > best.0 {
            best = (acc, pattern_name(*pattern));
        }
        report.push(Row::measured_only(
            format!("accuracy ({})", pattern_name(*pattern)),
            acc,
            "fraction",
        ));
    }
    report.push(Row::with_paper(
        "best-pattern accuracy",
        0.96,
        best.0,
        "fraction",
    ));
    report.push(Row::measured_only(
        "pattern spread (max − min)",
        accuracies.iter().copied().fold(f64::MIN, f64::max)
            - accuracies.iter().copied().fold(f64::MAX, f64::min),
        "fraction",
    ));
    report.push_series("per-pattern accuracy", accuracies);
    // Record which pattern won for EXPERIMENTS.md.
    report.push(Row::measured_only(
        format!("best pattern is {}", best.1),
        1.0,
        "flag",
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_reproduces_the_shape() {
        let report = run(&Params::reduced());
        let best = report.row("best-pattern accuracy").unwrap().measured;
        assert!(best > 0.85, "best={best}");
        // The walking/divergent pattern should be the winner (or tied).
        let walking_div = report.row("accuracy (walking/divergent)").unwrap().measured;
        assert!(best - walking_div < 0.08, "best={best} wd={walking_div}");
    }

    #[test]
    fn six_pattern_rows_present() {
        let report = run(&Params::reduced());
        let pattern_rows = report
            .rows
            .iter()
            .filter(|r| r.metric.starts_with("accuracy ("))
            .count();
        assert_eq!(pattern_rows, 6);
    }
}
