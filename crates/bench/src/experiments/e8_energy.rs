//! E8 — the zero-energy power budget (paper §I).
//!
//! The framing numbers this workspace must respect everywhere: sensing
//! runs at µW–tens of µW; conventional radio at tens–hundreds of mW;
//! ambient backscatter at ≈10 µW — about **1/10,000** of active radio.
//! This harness also sweeps harvested power against a fixed sensing+
//! backscatter workload to measure the achievable duty cycle of an
//! intermittent device.

use crate::report::{ExperimentReport, Row};
use crate::sweep::SweepRunner;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_core::units::{Joule, Watt};
use zeiot_energy::capacitor::Capacitor;
use zeiot_energy::consumer::{DeviceState, PowerProfile};
use zeiot_energy::harvester::ConstantSource;
use zeiot_energy::intermittent::{IntermittentDevice, Task};
use zeiot_obs::{Label, Recorder};

/// Tunable experiment size.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Harvest powers (µW) to sweep for the duty-cycle curve.
    pub harvest_uw: Vec<f64>,
    /// Simulated seconds per sweep point.
    pub seconds: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            harvest_uw: vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0],
            seconds: 60,
            seed: 23,
        }
    }
}

impl Params {
    /// A fast variant for integration tests.
    pub fn reduced() -> Self {
        Self {
            harvest_uw: vec![10.0, 80.0],
            seconds: 15,
            seed: 23,
        }
    }
}

fn duty_cycle_at(harvest_uw: f64, seconds: u64, rng: &mut SeedRng, recorder: &mut Recorder) -> f64 {
    let mut device = IntermittentDevice::new(
        ConstantSource::new(Watt::new(harvest_uw * 1e-6)).expect("source"),
        Capacitor::new(100e-6, 2.4, 1.8, 3.0).expect("capacitor"),
        PowerProfile::backscatter_tag().expect("profile"),
        SimDuration::from_millis(10),
    )
    .expect("device");
    let task = Task::new(
        u64::MAX / 2, // effectively endless work
        10,
        Joule::from_microjoules(0.5),
        Joule::from_microjoules(0.3),
    )
    .expect("task");
    device
        .run_observed(
            &task,
            SimDuration::from_secs(seconds),
            rng,
            recorder,
            Label::part(format!("{harvest_uw}uW")),
        )
        .duty_cycle
}

/// Runs E8 serially (equivalent to [`run_with`] at any thread count).
///
/// # Panics
///
/// Panics if `params.harvest_uw` is empty.
pub fn run(params: &Params) -> ExperimentReport {
    run_with(params, &SweepRunner::serial())
}

/// Runs E8 with the harvest-power sweep fanned out across threads; each
/// point simulates its own device from its own derived stream and
/// recorder, so results are identical for every thread count.
///
/// # Panics
///
/// Panics if `params.harvest_uw` is empty.
pub fn run_with(params: &Params, runner: &SweepRunner) -> ExperimentReport {
    assert!(!params.harvest_uw.is_empty(), "need at least one point");
    let tag = PowerProfile::backscatter_tag().expect("profile");
    let node = PowerProfile::active_802154_node().expect("profile");
    let ble = PowerProfile::ble_node().expect("profile");

    let bs_power = tag.draw(DeviceState::Backscatter).value();
    let radio_power = 100e-3; // the paper's 100 mW reference radio
    let power_ratio = bs_power / radio_power;

    let bs_epb = tag.energy_per_bit(DeviceState::Backscatter, 250e3).value();
    let radio_epb = node.energy_per_bit(DeviceState::ActiveRadio, 250e3).value();

    // Each sweep point runs its own device whose sim clock restarts at
    // zero, so traces from consecutive points are not globally
    // time-ordered: each point records separately and the runner merges
    // the snapshots in point order.
    let sweep = runner.run_seeded(
        params.seed,
        params.harvest_uw.len(),
        |index, rng, recorder| {
            duty_cycle_at(params.harvest_uw[index], params.seconds, rng, recorder)
        },
    );
    let duty = sweep.outputs;

    let mut report = ExperimentReport::new("E8", "Zero-energy power budget and duty cycles");
    report.push(Row::with_paper(
        "backscatter power",
        10.0,
        bs_power * 1e6,
        "µW",
    ));
    report.push(Row::with_paper(
        "active-radio / backscatter power ratio",
        10_000.0,
        1.0 / power_ratio,
        "ratio",
    ));
    report.push(Row::measured_only(
        "sensing power (tag profile)",
        tag.draw(DeviceState::Sense).value() * 1e6,
        "µW",
    ));
    report.push(Row::measured_only(
        "BLE radio power",
        ble.draw(DeviceState::ActiveRadio).value() * 1e3,
        "mW",
    ));
    report.push(Row::measured_only(
        "802.15.4 radio power",
        node.draw(DeviceState::ActiveRadio).value() * 1e3,
        "mW",
    ));
    report.push(Row::measured_only(
        "energy/bit ratio (active radio / backscatter)",
        radio_epb / bs_epb,
        "ratio",
    ));
    report.push_series("harvest power (µW)", params.harvest_uw.clone());
    report.push_series("duty cycle", duty);
    report.attach_metrics(sweep.metrics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_reproduces_the_paper_taxonomy() {
        let report = run(&Params::reduced());
        let ratio = report
            .row("active-radio / backscatter power ratio")
            .unwrap()
            .measured;
        assert!((ratio - 10_000.0).abs() < 1.0, "ratio={ratio}");
        let epb = report
            .row("energy/bit ratio (active radio / backscatter)")
            .unwrap()
            .measured;
        assert!(epb > 1_000.0, "epb={epb}");
        // Duty cycle grows with harvest power.
        let duty = &report
            .series
            .iter()
            .find(|(n, _)| n == "duty cycle")
            .unwrap()
            .1;
        assert!(duty[1] > duty[0], "{duty:?}");
    }

    /// Traces from consecutive sweep points restart at sim time zero;
    /// a single shared recorder used to panic on the full default
    /// sweep. The merged snapshot must keep every point's metrics.
    #[test]
    fn full_sweep_merges_metrics_across_points() {
        let params = Params::default();
        let report = run(&params);
        let snap = report.metrics.as_ref().expect("metrics attached");
        let labels: std::collections::BTreeSet<_> = snap
            .counters
            .iter()
            .filter(|c| c.name == "energy.harvested_uj")
            .map(|c| c.label.clone())
            .collect();
        assert_eq!(labels.len(), params.harvest_uw.len(), "{labels:?}");
    }
}
