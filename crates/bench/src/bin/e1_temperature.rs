//! E1 harness: `cargo run --release -p zeiot-bench --bin e1_temperature
//! [--samples N] [--epochs N] [--seed N] [--threads N] [--json 1]
//! [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, override_usize, run_experiment};
use zeiot_bench::experiments::e1_temperature::{run_with, Params};

fn main() {
    run_experiment(&["samples", "epochs", "seed"], |map, runner| {
        let mut params = Params::default();
        override_usize(map, "samples", &mut params.samples);
        override_usize(map, "epochs", &mut params.epochs);
        override_u64(map, "seed", &mut params.seed);
        run_with(&params, runner)
    });
}
