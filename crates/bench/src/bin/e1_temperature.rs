//! E1 harness: `cargo run --release -p zeiot-bench --bin e1_temperature
//! [--samples N] [--epochs N] [--seed N] [--json 1]`.

use zeiot_bench::experiments::e1_temperature::{run, Params};
use zeiot_bench::parse_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let map = parse_args(&args, &["samples", "epochs", "seed", "json"]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mut params = Params::default();
    if let Some(&v) = map.get("samples") {
        params.samples = v as usize;
    }
    if let Some(&v) = map.get("epochs") {
        params.epochs = v as usize;
    }
    if let Some(&v) = map.get("seed") {
        params.seed = v as u64;
    }
    let report = run(&params);
    if map.get("json").copied().unwrap_or(0.0) != 0.0 {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}
