//! Ablation-suite harness: `cargo run --release -p zeiot-bench --bin
//! ablations [--samples N] [--epochs N] [--mac_seconds N] [--seed N]
//! [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, override_usize, run_experiment};
use zeiot_bench::experiments::ablations::{run, Params};

fn main() {
    run_experiment(
        &["samples", "epochs", "mac_seconds", "seed"],
        |map, _runner| {
            let mut params = Params::default();
            override_usize(map, "samples", &mut params.samples);
            override_usize(map, "epochs", &mut params.epochs);
            override_u64(map, "mac_seconds", &mut params.mac_seconds);
            override_u64(map, "seed", &mut params.seed);
            run(&params)
        },
    );
}
