//! E6 harness: `cargo run --release -p zeiot-bench --bin e6_csi
//! [--train_per_position N] [--test_per_position N] [--k N] [--seed N]
//! [--threads N] [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, override_usize, run_experiment};
use zeiot_bench::experiments::e6_csi::{run_with, Params};

fn main() {
    run_experiment(
        &["train_per_position", "test_per_position", "k", "seed"],
        |map, runner| {
            let mut params = Params::default();
            override_usize(map, "train_per_position", &mut params.train_per_position);
            override_usize(map, "test_per_position", &mut params.test_per_position);
            override_usize(map, "k", &mut params.k);
            override_u64(map, "seed", &mut params.seed);
            run_with(&params, runner)
        },
    );
}
