//! E5 harness: `cargo run --release -p zeiot-bench --bin e5_counting
//! [--max_people N] [--train_rounds N] [--test_rounds N] [--seed N]
//! [--threads N] [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, override_usize, run_experiment};
use zeiot_bench::experiments::e5_counting::{run_with, Params};

fn main() {
    run_experiment(
        &["max_people", "train_rounds", "test_rounds", "seed"],
        |map, runner| {
            let mut params = Params::default();
            override_usize(map, "max_people", &mut params.max_people);
            override_usize(map, "train_rounds", &mut params.train_rounds);
            override_usize(map, "test_rounds", &mut params.test_rounds);
            override_u64(map, "seed", &mut params.seed);
            run_with(&params, runner)
        },
    );
}
