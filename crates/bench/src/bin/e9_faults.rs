//! E9 harness: `cargo run --release -p zeiot-bench --bin e9_faults
//! [--samples N] [--epochs N] [--seed N] [--threads N] [--json 1]
//! [--jsonl PATH]`.

use zeiot_bench::experiments::e9_faults::{run_with, Params};
use zeiot_bench::{parse_args, runner_from_flags, take_string_flag};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jsonl = take_string_flag(&mut args, "jsonl").unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let map =
        parse_args(&args, &["samples", "epochs", "seed", "threads", "json"]).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let mut params = Params::default();
    if let Some(&v) = map.get("samples") {
        params.samples_per_class = v as usize;
    }
    if let Some(&v) = map.get("epochs") {
        params.epochs = v as usize;
    }
    if let Some(&v) = map.get("seed") {
        params.seed = v as u64;
    }
    let report = run_with(&params, &runner_from_flags(&map));
    if let Some(path) = &jsonl {
        zeiot_obs::write_jsonl(std::path::Path::new(path), &report.export_snapshot())
            .unwrap_or_else(|e| {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            });
    }
    if map.get("json").copied().unwrap_or(0.0) != 0.0 {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}
