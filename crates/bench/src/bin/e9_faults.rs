//! E9 harness: `cargo run --release -p zeiot-bench --bin e9_faults
//! [--samples N] [--epochs N] [--seed N] [--threads N] [--json 1]
//! [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, override_usize, run_experiment};
use zeiot_bench::experiments::e9_faults::{run_with, Params};

fn main() {
    run_experiment(&["samples", "epochs", "seed"], |map, runner| {
        let mut params = Params::default();
        override_usize(map, "samples", &mut params.samples_per_class);
        override_usize(map, "epochs", &mut params.epochs);
        override_u64(map, "seed", &mut params.seed);
        run_with(&params, runner)
    });
}
