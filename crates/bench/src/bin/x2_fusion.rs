//! X2 harness: `cargo run --release -p zeiot-bench --bin x2_fusion
//! [--seed N] [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, run_experiment};
use zeiot_bench::experiments::x2_fusion::{run, Params};

fn main() {
    run_experiment(&["seed"], |map, _runner| {
        let mut params = Params::default();
        override_u64(map, "seed", &mut params.seed);
        run(&params)
    });
}
