//! X2 harness: `cargo run --release -p zeiot-bench --bin x2_fusion
//! [--seed N] [--json 1]`.

use zeiot_bench::experiments::x2_fusion::{run, Params};
use zeiot_bench::parse_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let map = parse_args(&args, &["seed", "json"]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mut params = Params::default();
    if let Some(&v) = map.get("seed") {
        params.seed = v as u64;
    }
    let report = run(&params);
    if map.get("json").copied().unwrap_or(0.0) != 0.0 {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}
