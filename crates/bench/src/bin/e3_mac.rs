//! E3 harness: `cargo run --release -p zeiot-bench --bin e3_mac
//! [--seconds N] [--seed N] [--threads N] [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, run_experiment};
use zeiot_bench::experiments::e3_mac::{run_with, Params};

fn main() {
    run_experiment(&["seconds", "seed"], |map, runner| {
        let mut params = Params::default();
        override_u64(map, "seconds", &mut params.seconds);
        override_u64(map, "seed", &mut params.seed);
        run_with(&params, runner)
    });
}
