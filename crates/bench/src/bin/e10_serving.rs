//! E10 harness: `cargo run --release -p zeiot-bench --bin e10_serving
//! [--samples N] [--epochs N] [--horizon N] [--seed N] [--threads N]
//! [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, override_usize, run_experiment};
use zeiot_bench::experiments::e10_serving::{run_with, Params};

fn main() {
    run_experiment(&["samples", "epochs", "horizon", "seed"], |map, runner| {
        let mut params = Params::default();
        override_usize(map, "samples", &mut params.samples_per_class);
        override_usize(map, "epochs", &mut params.epochs);
        override_u64(map, "horizon", &mut params.horizon_secs);
        override_u64(map, "seed", &mut params.seed);
        run_with(&params, runner)
    });
}
