//! E4 harness: `cargo run --release -p zeiot-bench --bin e4_train
//! [--train_scenes N] [--test_scenes N] [--seed N] [--threads N]
//! [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, override_usize, run_experiment};
use zeiot_bench::experiments::e4_train::{run_with, Params};

fn main() {
    run_experiment(&["train_scenes", "test_scenes", "seed"], |map, runner| {
        let mut params = Params::default();
        override_usize(map, "train_scenes", &mut params.train_scenes);
        override_usize(map, "test_scenes", &mut params.test_scenes);
        override_u64(map, "seed", &mut params.seed);
        run_with(&params, runner)
    });
}
