//! E7 harness: `cargo run --release -p zeiot-bench --bin e7_link
//! [--exciter_to_tag_m M] [--json 1]`.

use zeiot_bench::experiments::e7_link::{run, Params};
use zeiot_bench::parse_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let map = parse_args(&args, &["exciter_to_tag_m", "json"]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mut params = Params::default();
    if let Some(&v) = map.get("exciter_to_tag_m") {
        params.exciter_to_tag_m = v;
    }
    let report = run(&params);
    if map.get("json").copied().unwrap_or(0.0) != 0.0 {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}
