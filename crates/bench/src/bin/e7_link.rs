//! E7 harness: `cargo run --release -p zeiot-bench --bin e7_link
//! [--exciter_to_tag_m M] [--threads N] [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::{override_f64, run_experiment};
use zeiot_bench::experiments::e7_link::{run_with, Params};

fn main() {
    run_experiment(&["exciter_to_tag_m"], |map, runner| {
        let mut params = Params::default();
        override_f64(map, "exciter_to_tag_m", &mut params.exciter_to_tag_m);
        run_with(&params, runner)
    });
}
