//! E14 harness: `cargo run --release -p zeiot-bench --bin e14_venue
//! [--observations N] [--training N] [--seed N] [--rate F]
//! [--threads N] [--json 1] [--jsonl PATH] [--trace-jsonl PATH]`.
//!
//! Sweeps venue scenario (train-line rush hour / stadium event day) ×
//! fabric fault level × fusion policy over the four modality tenants
//! and reports fused vs single-modality context accuracy, the fusion
//! margin, and graceful-fallback counters. `--trace-jsonl PATH`
//! additionally exports every sampled causal trace as JSON Lines (one
//! trace per line, `(point, tenant, seq)` order — byte-identical
//! across `--threads` values; CI diffs it). Inspect the dump with
//! `cargo run -p zeiot-obs --bin trace-report -- PATH`.

use zeiot_bench::cli::{override_f64, override_u64, override_usize, CliError};
use zeiot_bench::experiments::e14_venue::{run_with_traces, Params};
use zeiot_bench::take_string_flag;
use zeiot_obs::trace::{write_traces_jsonl, Trace};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = match take_string_flag(&mut args, "trace-jsonl") {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut traces: Vec<Trace> = Vec::new();
    let result = zeiot_bench::cli::execute(
        args,
        &["observations", "training", "seed", "rate"],
        |map, runner| {
            let mut params = Params::default();
            override_usize(map, "observations", &mut params.observations);
            override_usize(map, "training", &mut params.training_per_level);
            override_u64(map, "seed", &mut params.seed);
            override_f64(map, "rate", &mut params.sample_rate);
            let (report, collected) = run_with_traces(&params, runner);
            traces = collected;
            report
        },
    );
    match result {
        Ok(text) => {
            if let Some(path) = &trace_path {
                if let Err(e) = write_traces_jsonl(std::path::Path::new(path), &traces) {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(CliError::Io(String::new()).exit_code());
                }
            }
            println!("{text}");
        }
        Err(e) => {
            eprintln!("{}", e.message());
            std::process::exit(e.exit_code());
        }
    }
}
