//! X1 harness: `cargo run --release -p zeiot-bench --bin x1_planner
//! [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::run_experiment;
use zeiot_bench::experiments::x1_planner::{run, Params};

fn main() {
    run_experiment(&[], |_map, _runner| run(&Params::default()));
}
