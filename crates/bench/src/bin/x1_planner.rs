//! X1 harness: `cargo run --release -p zeiot-bench --bin x1_planner
//! [--json 1]`.

use zeiot_bench::experiments::x1_planner::{run, Params};
use zeiot_bench::parse_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let map = parse_args(&args, &["json"]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let report = run(&Params::default());
    if map.get("json").copied().unwrap_or(0.0) != 0.0 {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}
