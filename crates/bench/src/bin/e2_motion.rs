//! E2 harness: `cargo run --release -p zeiot-bench --bin e2_motion
//! [--samples N] [--epochs N] [--subjects N] [--seed N] [--threads N]
//! [--json 1] [--jsonl PATH]`.

use zeiot_bench::cli::{override_u64, override_usize, run_experiment};
use zeiot_bench::experiments::e2_motion::{run_with, Params};

fn main() {
    run_experiment(&["samples", "epochs", "subjects", "seed"], |map, runner| {
        let mut params = Params::default();
        override_usize(map, "samples", &mut params.samples);
        override_usize(map, "epochs", &mut params.epochs);
        override_usize(map, "subjects", &mut params.subjects);
        override_u64(map, "seed", &mut params.seed);
        run_with(&params, runner)
    });
}
