//! # zeiot-bench
//!
//! Experiment harnesses regenerating every quantitative result in the
//! paper's evaluation, plus Criterion micro-benchmarks of the hot paths.
//!
//! Each experiment is a library function (`experiments::e1_temperature`
//! … `e10_serving`) returning an [`ExperimentReport`] of
//! paper-vs-measured rows; the `src/bin/e*.rs` binaries are thin
//! wrappers over the shared [`cli::run_experiment`] front end.
//! Integration tests run reduced-size variants of the same functions,
//! so the harness logic itself is under test.
//!
//! Run everything (release mode strongly recommended):
//!
//! ```text
//! cargo run --release -p zeiot-bench --bin e1_temperature
//! cargo run --release -p zeiot-bench --bin e2_motion
//! cargo run --release -p zeiot-bench --bin e3_mac
//! cargo run --release -p zeiot-bench --bin e4_train
//! cargo run --release -p zeiot-bench --bin e5_counting
//! cargo run --release -p zeiot-bench --bin e6_csi
//! cargo run --release -p zeiot-bench --bin e7_link
//! cargo run --release -p zeiot-bench --bin e8_energy
//! cargo run --release -p zeiot-bench --bin e9_faults
//! cargo run --release -p zeiot-bench --bin e10_serving
//! ```

pub mod cli;
pub mod experiments;
pub mod report;
pub mod sweep;

pub use report::{ExperimentReport, Row};
pub use sweep::{SweepOutcome, SweepRunner};

/// Builds the sweep runner a binary's parsed flags ask for: `--threads N`
/// (with `0` or no flag meaning "available parallelism").
pub fn runner_from_flags(map: &std::collections::BTreeMap<String, f64>) -> SweepRunner {
    SweepRunner::new(map.get("threads").copied().unwrap_or(0.0) as usize)
}

/// Parses `--key value` style arguments into overrides; unknown keys are
/// rejected with a helpful message listing `allowed`.
///
/// # Errors
///
/// Returns a human-readable error string on malformed input.
pub fn parse_args(
    args: &[String],
    allowed: &[&str],
) -> Result<std::collections::BTreeMap<String, f64>, String> {
    let mut out = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got {key}"));
        };
        if !allowed.contains(&name) {
            let valid: Vec<String> = allowed.iter().map(|a| format!("--{a}")).collect();
            return Err(format!(
                "unknown flag --{name}; valid flags: {}",
                valid.join(", ")
            ));
        }
        let Some(value) = it.next() else {
            return Err(format!("--{name} needs a value"));
        };
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("--{name} value {value} is not a number"))?;
        out.insert(name.to_owned(), parsed);
    }
    Ok(out)
}

/// Removes a `--name value` string flag from `args` (if present) and
/// returns its value, leaving the numeric flags for [`parse_args`].
///
/// # Errors
///
/// Returns a human-readable error string if the flag is present without
/// a value.
pub fn take_string_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let flag = format!("--{name}");
    let Some(pos) = args.iter().position(|a| *a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("--{name} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_string_flag_extracts_and_leaves_the_rest() {
        let mut args: Vec<String> = ["--seed", "7", "--jsonl", "out.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let path = take_string_flag(&mut args, "jsonl").unwrap();
        assert_eq!(path.as_deref(), Some("out.jsonl"));
        assert_eq!(args, vec!["--seed".to_string(), "7".to_string()]);
        assert_eq!(take_string_flag(&mut args, "jsonl").unwrap(), None);
        let mut dangling: Vec<String> = vec!["--jsonl".to_string()];
        assert!(take_string_flag(&mut dangling, "jsonl").is_err());
    }

    #[test]
    fn runner_from_flags_reads_threads() {
        let mut map = std::collections::BTreeMap::new();
        assert!(runner_from_flags(&map).threads() >= 1);
        map.insert("threads".to_owned(), 3.0);
        assert_eq!(runner_from_flags(&map).threads(), 3);
        map.insert("threads".to_owned(), 0.0);
        assert_eq!(
            runner_from_flags(&map).threads(),
            SweepRunner::default().threads()
        );
    }

    #[test]
    fn parse_args_happy_path() {
        let args: Vec<String> = ["--samples", "100", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let map = parse_args(&args, &["samples", "seed"]).unwrap();
        assert_eq!(map["samples"], 100.0);
        assert_eq!(map["seed"], 7.0);
    }

    #[test]
    fn parse_args_rejects_unknown_and_malformed() {
        let bad: Vec<String> = ["--nope", "1"].iter().map(|s| s.to_string()).collect();
        let err = parse_args(&bad, &["samples", "seed"]).unwrap_err();
        assert!(
            err.contains("--samples") && err.contains("--seed"),
            "unknown-flag error should name the valid flags: {err}"
        );
        assert!(parse_args(&bad, &["samples"]).is_err());
        let dangling: Vec<String> = ["--samples"].iter().map(|s| s.to_string()).collect();
        assert!(parse_args(&dangling, &["samples"]).is_err());
        let not_num: Vec<String> = ["--samples", "abc"].iter().map(|s| s.to_string()).collect();
        assert!(parse_args(&not_num, &["samples"]).is_err());
        let no_dash: Vec<String> = ["samples", "5"].iter().map(|s| s.to_string()).collect();
        assert!(parse_args(&no_dash, &["samples"]).is_err());
    }
}
