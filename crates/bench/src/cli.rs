//! The shared CLI front end of the experiment binaries.
//!
//! Every `src/bin/e*.rs` harness accepts the same flag grammar —
//! experiment-specific numeric overrides plus the common `--threads N`,
//! `--json 1` and `--jsonl PATH` — and renders one [`ExperimentReport`].
//! [`run_experiment`] owns that whole preamble, so a binary reduces to
//! naming its flags and mapping them onto its `Params`:
//!
//! ```no_run
//! use zeiot_bench::cli::{override_u64, run_experiment};
//! # use zeiot_bench::report::ExperimentReport;
//! # struct Params { seed: u64 }
//! # impl Params { fn default() -> Self { Self { seed: 0 } } }
//! run_experiment(&["seed"], |map, runner| {
//!     let mut params = Params::default();
//!     override_u64(map, "seed", &mut params.seed);
//! #   let _ = (params, runner);
//! #   ExperimentReport::new("E0", "doc")
//!     // run_with(&params, runner)
//! });
//! ```

use crate::report::ExperimentReport;
use crate::sweep::SweepRunner;
use crate::{parse_args, runner_from_flags, take_string_flag};
use std::collections::BTreeMap;

/// What went wrong before a report could be rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Malformed or unknown flags (exit code 2).
    Usage(String),
    /// The `--jsonl` export could not be written (exit code 1).
    Io(String),
}

impl CliError {
    /// The process exit code the error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 1,
        }
    }

    /// The message printed to stderr.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Io(m) => m,
        }
    }
}

/// Parses `args`, runs the experiment, honours `--jsonl`, and returns
/// the text `run_experiment` would print (the report's table, or its
/// JSON when `--json 1` is set).
///
/// `param_flags` are the experiment-specific numeric flags; `--threads`,
/// `--json` and `--jsonl` are always accepted. The parsed overrides and
/// the `--threads`-derived [`SweepRunner`] are handed to `run`.
///
/// # Errors
///
/// Returns [`CliError::Usage`] on malformed flags and [`CliError::Io`]
/// when the `--jsonl` export fails.
pub fn execute<F>(mut args: Vec<String>, param_flags: &[&str], run: F) -> Result<String, CliError>
where
    F: FnOnce(&BTreeMap<String, f64>, &SweepRunner) -> ExperimentReport,
{
    let jsonl = take_string_flag(&mut args, "jsonl").map_err(CliError::Usage)?;
    let mut allowed: Vec<&str> = param_flags.to_vec();
    allowed.extend(["threads", "json"]);
    let map = parse_args(&args, &allowed).map_err(CliError::Usage)?;
    let report = run(&map, &runner_from_flags(&map));
    if let Some(path) = &jsonl {
        zeiot_obs::write_jsonl(std::path::Path::new(path), &report.export_snapshot())
            .map_err(|e| CliError::Io(format!("failed to write {path}: {e}")))?;
    }
    Ok(if map.get("json").copied().unwrap_or(0.0) != 0.0 {
        report.to_json()
    } else {
        report.to_string()
    })
}

/// The whole experiment-binary `main`: parse `std::env::args`, run,
/// print. Exits with code 2 on flag errors and 1 on export errors.
pub fn run_experiment<F>(param_flags: &[&str], run: F)
where
    F: FnOnce(&BTreeMap<String, f64>, &SweepRunner) -> ExperimentReport,
{
    let args: Vec<String> = std::env::args().skip(1).collect();
    match execute(args, param_flags, run) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("{}", e.message());
            std::process::exit(e.exit_code());
        }
    }
}

/// Applies a parsed `--name value` override to a `usize` parameter.
pub fn override_usize(map: &BTreeMap<String, f64>, name: &str, field: &mut usize) {
    if let Some(&v) = map.get(name) {
        *field = v as usize;
    }
}

/// Applies a parsed `--name value` override to a `u64` parameter.
pub fn override_u64(map: &BTreeMap<String, f64>, name: &str, field: &mut u64) {
    if let Some(&v) = map.get(name) {
        *field = v as u64;
    }
}

/// Applies a parsed `--name value` override to an `f64` parameter.
pub fn override_f64(map: &BTreeMap<String, f64>, name: &str, field: &mut f64) {
    if let Some(&v) = map.get(name) {
        *field = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Row;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn demo_report(map: &BTreeMap<String, f64>, runner: &SweepRunner) -> ExperimentReport {
        let mut report = ExperimentReport::new("E0", "cli test");
        report.push(Row::measured_only(
            "seed",
            map.get("seed").copied().unwrap_or(-1.0),
            "value",
        ));
        report.push(Row::measured_only(
            "threads",
            runner.threads() as f64,
            "count",
        ));
        report
    }

    #[test]
    fn executes_with_overrides_and_runner() {
        let text = execute(
            args(&["--seed", "9", "--threads", "2"]),
            &["seed"],
            |m, r| {
                assert_eq!(m["seed"], 9.0);
                assert_eq!(r.threads(), 2);
                demo_report(m, r)
            },
        )
        .unwrap();
        assert!(text.contains("seed"));
    }

    #[test]
    fn json_mode_renders_json() {
        let text = execute(args(&["--json", "1"]), &[], demo_report).unwrap();
        assert!(text.trim_start().starts_with('{'), "not JSON: {text}");
    }

    #[test]
    fn usage_errors_exit_2_and_name_valid_flags() {
        let err = execute(args(&["--nope", "1"]), &["seed"], demo_report).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.message().contains("--seed"), "{}", err.message());
        assert!(err.message().contains("--threads"), "{}", err.message());
    }

    #[test]
    fn jsonl_failure_exits_1() {
        let err = execute(
            args(&["--jsonl", "/nonexistent-dir/out.jsonl"]),
            &[],
            demo_report,
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn overrides_apply_only_when_present() {
        let mut map = BTreeMap::new();
        map.insert("samples".to_owned(), 100.0);
        let (mut a, mut b, mut c) = (1usize, 1u64, 1.0f64);
        override_usize(&map, "samples", &mut a);
        override_u64(&map, "missing", &mut b);
        override_f64(&map, "samples", &mut c);
        assert_eq!((a, b, c), (100, 1, 100.0));
    }
}
