//! Golden-report regression tests.
//!
//! E1, E4, E12, E13 and E14 reduced reports at the default seed are committed as
//! JSON fixtures; any change to data generation, training, evaluation, or
//! the sweep layer that shifts a single byte of the report fails here. To
//! re-bless after an intentional change:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p zeiot-bench --test golden_reports
//! ```

use std::path::PathBuf;
use zeiot_bench::experiments::{e12_quant, e13_replace, e14_venue, e1_temperature, e4_train};
use zeiot_bench::SweepRunner;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixtures dir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with BLESS_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden fixture; if intentional, re-bless with BLESS_GOLDEN=1"
    );
}

#[test]
fn e1_reduced_report_matches_golden() {
    let report =
        e1_temperature::run_with(&e1_temperature::Params::reduced(), &SweepRunner::serial());
    check_golden("e1_reduced.json", &report.to_json());
}

#[test]
fn e4_reduced_report_matches_golden() {
    let report = e4_train::run_with(&e4_train::Params::reduced(), &SweepRunner::serial());
    check_golden("e4_reduced.json", &report.to_json());
}

#[test]
fn e12_reduced_report_matches_golden() {
    let report = e12_quant::run_with(&e12_quant::Params::reduced(), &SweepRunner::serial());
    check_golden("e12_reduced.json", &report.to_json());
}

#[test]
fn e13_reduced_report_matches_golden() {
    let report = e13_replace::run_with(&e13_replace::Params::reduced(), &SweepRunner::serial());
    check_golden("e13_reduced.json", &report.to_json());
}

#[test]
fn e14_reduced_report_matches_golden() {
    let report = e14_venue::run_with(&e14_venue::Params::reduced(), &SweepRunner::serial());
    check_golden("e14_reduced.json", &report.to_json());
}
