//! Thread-count invariance tests (see DESIGN.md §7b and `sweep.rs`).
//!
//! A sweep fanned out over 4 worker threads must produce the byte-exact
//! report, metrics snapshot and trace export of the serial run — the
//! contract CI's determinism job re-checks end-to-end by diffing the
//! binaries' `--threads 1` and `--threads 4` output. E13 is the
//! load-bearing entry: its re-placement engine mutates per-tenant
//! placements mid-run, so any hidden cross-point state would surface
//! here first.

use zeiot_bench::experiments::{e13_replace, e14_venue, e1_temperature};
use zeiot_bench::SweepRunner;

#[test]
fn e1_report_is_thread_count_invariant() {
    let params = e1_temperature::Params::reduced();
    let serial = e1_temperature::run_with(&params, &SweepRunner::serial());
    let threaded = e1_temperature::run_with(&params, &SweepRunner::new(4));
    assert_eq!(serial.to_json(), threaded.to_json());
}

#[test]
fn e13_report_snapshot_and_traces_are_thread_count_invariant() {
    let params = e13_replace::Params::reduced();
    let (serial, serial_traces) = e13_replace::run_with_traces(&params, &SweepRunner::serial());
    let (threaded, threaded_traces) = e13_replace::run_with_traces(&params, &SweepRunner::new(4));
    // The metrics snapshot rides inside the report JSON; compare it
    // separately first so a drift there fails with a focused message.
    assert_eq!(
        serial.metrics, threaded.metrics,
        "replace.* counters diverged across thread counts"
    );
    assert_eq!(serial.to_json(), threaded.to_json());
    assert_eq!(
        serial_traces, threaded_traces,
        "sampled traces diverged across thread counts"
    );
}

#[test]
fn e14_report_snapshot_and_traces_are_thread_count_invariant() {
    let params = e14_venue::Params::reduced();
    let (serial, serial_traces) = e14_venue::run_with_traces(&params, &SweepRunner::serial());
    let (threaded, threaded_traces) = e14_venue::run_with_traces(&params, &SweepRunner::new(4));
    assert_eq!(
        serial.metrics, threaded.metrics,
        "fusion.* counters diverged across thread counts"
    );
    assert_eq!(serial.to_json(), threaded.to_json());
    assert_eq!(
        serial_traces, threaded_traces,
        "sampled traces diverged across thread counts"
    );
}
