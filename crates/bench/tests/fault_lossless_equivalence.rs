//! Cross-check of the fault layer against the golden reports: executing
//! the E1 MicroDeep arm *through the lossy fabric* with a lossless fault
//! plan must reproduce the committed golden accuracy exactly. This pins
//! the fault layer's central contract — `FaultPlan::lossless()` is
//! byte-for-byte invisible — against the same fixture that guards the
//! plain pipeline, so the two paths cannot drift apart silently.

use std::path::PathBuf;
use zeiot_bench::experiments::e1_temperature;
use zeiot_bench::ExperimentReport;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_data::temperature::TemperatureFieldGenerator;
use zeiot_fault::{FaultPlan, RecoveryPolicy};
use zeiot_microdeep::lossy::LossyRuntime;
use zeiot_microdeep::{Assignment, DistributedCnn, WeightUpdate};

fn golden_microdeep_accuracy() -> f64 {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/e1_reduced.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e})", path.display()));
    let report: ExperimentReport = serde_json::from_str(&json).expect("parsable fixture");
    report
        .row("accuracy (MicroDeep)")
        .expect("fixture has the MicroDeep row")
        .measured
}

#[test]
fn e1_microdeep_arm_through_lossless_fabric_matches_golden_accuracy() {
    let params = e1_temperature::Params::reduced();

    // Replicate the E1 data pipeline and MicroDeep arm exactly — same
    // seeds, same stream derivation — but run every training and
    // evaluation pass through a LossyRuntime with a lossless plan.
    let mut rng = SeedRng::new(params.seed);
    let generator = TemperatureFieldGenerator::paper_lounge().expect("paper lounge");
    let mut data = generator.generate(params.samples, &mut rng);
    TemperatureFieldGenerator::normalize(&mut data);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);

    let config = e1_temperature::cnn_config();
    let topo = e1_temperature::deployment();
    let graph = config.unit_graph().expect("valid config");
    let assignment = Assignment::balanced_correspondence_threaded(&graph, &topo, 1);

    let mut arm_rng = SeedRng::for_point(params.seed ^ 0xE1A0, 1);
    let mut net = DistributedCnn::new(config, assignment, WeightUpdate::PerUnit, &mut arm_rng);
    let mut rt = LossyRuntime::new(
        FaultPlan::lossless(),
        RecoveryPolicy::FailFast,
        &topo,
        SimDuration::from_millis(500),
    );
    for _ in 0..params.epochs {
        net.train_epoch_lossy(train, 0.05, 16, &mut arm_rng, &mut rt)
            .expect("lossless epoch completes");
    }
    let accuracy = net.accuracy_lossy(test, &mut rt);

    let golden = golden_microdeep_accuracy();
    assert_eq!(
        accuracy, golden,
        "lossless lossy-path accuracy diverged from the golden E1 report"
    );
    // Sanity on the fabric itself: messages flowed, none were touched.
    let stats = rt.stats();
    assert!(stats.sent > 0, "no messages crossed the fabric");
    assert_eq!(stats.drops, 0);
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.aborted, 0);
    assert_eq!(stats.sent, stats.delivered);
}
