//! Differential testing of the int8 inference path against f32.
//!
//! Three properties, checked end-to-end through the public APIs:
//!
//! 1. **Accuracy-preserving**: across a sweep of random topologies,
//!    weight-update modes, seeds and inputs, the quantized forward pass
//!    agrees with the f32 forward pass on the top-1 class almost always,
//!    and every logit stays within a small error band around its f32
//!    value (scaled by the sample's logit spread, since symmetric
//!    per-tensor quantization has input-dependent absolute error).
//! 2. **Thread-invariant**: the E12 report and its trace export are
//!    byte-identical between a serial and a 4-thread sweep runner.
//! 3. **Layout-invariant**: serving the identical int8 tenant workload
//!    through 1 shard and through 3 shards yields bit-identical logits
//!    per `(tenant, seq)` — integer accumulation leaves no room for
//!    scheduling-dependent rounding.

use std::collections::BTreeMap;

use zeiot_bench::experiments::e12_quant;
use zeiot_bench::sweep::SweepRunner;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, QuantizedCnn, WeightUpdate};
use zeiot_net::Topology;
use zeiot_nn::tensor::Tensor;
use zeiot_obs::trace::traces_to_jsonl;
use zeiot_serve::{ArrivalProcess, Outcome, QuantMode, ServeConfig, Server, Tenant, TenantSpec};

/// Two-class 8×8 synthetic scenes: class 0 lights the upper-left
/// quadrant, class 1 the lower-right, with small Gaussian jitter.
/// (The e10 generator is crate-private; this is the integration-test
/// equivalent.)
fn labelled_scenes(per_class: usize, rng: &mut SeedRng) -> Vec<(Tensor, usize)> {
    let mut scenes = Vec::with_capacity(per_class * 2);
    for _ in 0..per_class {
        for class in 0..2usize {
            let mut img = Tensor::zeros(vec![1, 8, 8]);
            for y in 0..4 {
                for x in 0..4 {
                    let (yy, xx) = if class == 0 { (y, x) } else { (y + 4, x + 4) };
                    img.set(&[0, yy, xx], 1.0 + rng.normal_with(0.0, 0.1) as f32);
                }
            }
            scenes.push((img, class));
        }
    }
    scenes
}

/// Trains a small deployment and returns `(f32 model, int8 model, test
/// set)` sharing identical learned weights.
fn trained_pair(
    seed: u64,
    topo: Topology,
    update: WeightUpdate,
) -> (DistributedCnn, QuantizedCnn, Vec<(Tensor, usize)>) {
    let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
    let graph = config.unit_graph().unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topo);

    let mut data_rng = SeedRng::with_stream(seed, 0xD1FF);
    let data = labelled_scenes(24, &mut data_rng);
    let split = data.len() * 4 / 5;
    let (train, test) = data.split_at(split);

    let mut model_rng = SeedRng::with_stream(seed, 0x10DE);
    let mut net = DistributedCnn::new(config, assignment, update, &mut model_rng);
    let mut train_rng = SeedRng::with_stream(seed, 0x7E57);
    for _ in 0..6 {
        net.train_epoch(train, 0.08, 8, &mut train_rng);
    }

    let calibration: Vec<Tensor> = train.iter().map(|(x, _)| x.clone()).collect();
    let mut frozen = net.clone();
    let quantized = QuantizedCnn::new(&mut frozen, &calibration);
    (net, quantized, test.to_vec())
}

#[test]
fn int8_tracks_f32_across_topologies_and_seeds() {
    let cases: Vec<(u64, Topology, WeightUpdate)> = vec![
        (
            11,
            Topology::grid(3, 3, 2.0, 3.0).unwrap(),
            WeightUpdate::Independent,
        ),
        (
            29,
            Topology::grid(4, 4, 2.0, 3.0).unwrap(),
            WeightUpdate::Independent,
        ),
        (
            47,
            Topology::grid(3, 3, 2.0, 3.0).unwrap(),
            WeightUpdate::PerUnit,
        ),
        (
            83,
            Topology::grid(2, 5, 2.0, 3.0).unwrap(),
            WeightUpdate::Independent,
        ),
    ];

    let mut total = 0usize;
    let mut agreed = 0usize;
    for (seed, topo, update) in cases {
        let (mut f32_model, mut int8_model, test) = trained_pair(seed, topo, update);
        let mut case_agreed = 0usize;
        for (x, _) in &test {
            let f = f32_model.forward(x);
            let q = int8_model.forward_quantized(x);
            if f.argmax() == q.argmax() {
                case_agreed += 1;
            }
            // Per-logit band: quantization error scales with the logit
            // magnitude the activation/weight scales were chosen for.
            let span = f.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
            for (&a, &b) in f.data().iter().zip(q.data()) {
                let delta = (a - b).abs();
                assert!(
                    delta <= 0.15 * span,
                    "seed {seed}: logit drifted {delta} (f32 {a}, int8 {b}, span {span})"
                );
            }
        }
        assert!(
            case_agreed * 10 >= test.len() * 8,
            "seed {seed}: top-1 agreement {case_agreed}/{}",
            test.len()
        );
        total += test.len();
        agreed += case_agreed;
    }
    assert!(
        agreed * 10 >= total * 9,
        "aggregate top-1 agreement too low: {agreed}/{total}"
    );
}

#[test]
fn e12_report_and_traces_are_bit_exact_across_thread_counts() {
    let params = e12_quant::Params::reduced();
    let (serial_report, serial_traces) =
        e12_quant::run_with_traces(&params, &SweepRunner::serial());
    let (threaded_report, threaded_traces) =
        e12_quant::run_with_traces(&params, &SweepRunner::new(4));
    assert_eq!(serial_report.to_json(), threaded_report.to_json());
    assert_eq!(
        traces_to_jsonl(&serial_traces),
        traces_to_jsonl(&threaded_traces)
    );
    assert!(!serial_traces.is_empty());
}

#[test]
fn int8_serving_logits_are_bit_exact_across_shard_layouts() {
    let deadline = SimDuration::from_millis(400);
    let horizon = SimDuration::from_secs(3);
    let service_time = SimDuration::from_millis(20);
    let topo = Topology::grid(3, 3, 2.0, 3.0).unwrap();

    let completions_with = |shards: usize| {
        let mut data_rng = SeedRng::with_stream(5, 0xD1FF);
        let pool = labelled_scenes(12, &mut data_rng);
        let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
        let graph = config.unit_graph().unwrap();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        let mut model_rng = SeedRng::with_stream(5, 0x10DE);
        let net = DistributedCnn::new(
            config,
            assignment,
            WeightUpdate::Independent,
            &mut model_rng,
        );
        let spec = TenantSpec::new("diff", ArrivalProcess::poisson(6.0), deadline)
            .with_quant(QuantMode::Int8);
        let tenant = Tenant::new(spec, net, pool).unwrap();
        let serve_config = ServeConfig::new(shards, 2, 32, service_time).unwrap();
        let mut server = Server::new(serve_config, topo.clone(), vec![tenant]).unwrap();
        server.run(77, horizon, None)
    };

    let one = completions_with(1);
    let three = completions_with(3);

    // Index logits by (tenant, seq): shard layout may reorder
    // completion times, but every answered request must carry the
    // identical bit pattern.
    let logits_by_seq = |outcome: &zeiot_serve::ServeOutcome| {
        let mut map: BTreeMap<(usize, u64), Vec<u32>> = BTreeMap::new();
        for c in &outcome.completions {
            if let Outcome::Served { logits, .. } = &c.outcome {
                map.insert(
                    (c.tenant, c.seq),
                    logits.iter().map(|v| v.to_bits()).collect(),
                );
            }
        }
        map
    };
    let one_map = logits_by_seq(&one);
    let three_map = logits_by_seq(&three);
    assert!(!one_map.is_empty());
    for (key, bits) in &one_map {
        if let Some(other) = three_map.get(key) {
            assert_eq!(bits, other, "request {key:?} answered differently");
        }
    }
    // Light load, no fabric: both layouts answer every request.
    assert_eq!(one_map.len(), three_map.len());
}
