//! The simulation time axis.
//!
//! Discrete-event simulation needs a totally ordered, exactly representable
//! clock: floating-point seconds accumulate rounding error and break event
//! determinism. [`SimTime`] and [`SimDuration`] are nanosecond-resolution
//! integers, wide enough for about 584 years of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use zeiot_core::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: Self = Self(0);

    /// The greatest representable instant.
    pub const MAX: Self = Self(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "seconds must be finite and non-negative, got {secs}"
        );
        let nanos = secs * 1e9;
        assert!(nanos <= u64::MAX as f64, "time overflow: {secs} s");
        Self(nanos.round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: {earlier:?} > {self:?}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> Self {
        Self(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("simulation time underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use zeiot_core::time::SimDuration;
/// let slot = SimDuration::from_micros(320);   // an 802.15.4-ish slot
/// assert_eq!((slot * 10).as_micros(), 3200);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: Self = Self(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "seconds must be finite and non-negative, got {secs}"
        );
        let nanos = secs * 1e9;
        assert!(nanos <= u64::MAX as f64, "duration overflow: {secs} s");
        Self(nanos.round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: Self) -> Option<Self> {
        self.0.checked_sub(other.0).map(Self)
    }

    /// Multiplies by a non-negative fractional factor, rounding to
    /// nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative, NaN or the product overflows.
    pub fn mul_f64(self, k: f64) -> Self {
        assert!(k.is_finite() && k >= 0.0, "factor must be non-negative");
        let nanos = self.0 as f64 * k;
        assert!(nanos <= u64::MAX as f64, "duration overflow");
        Self(nanos.round() as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2e9 as u64)
        );
    }

    #[test]
    fn f64_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d).as_nanos(), 13_000_000_000);
        assert_eq!((t - d).as_nanos(), 7_000_000_000);
        assert_eq!(t + d - t, d);
    }

    #[test]
    fn duration_since_is_exact() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(b.duration_since(a), SimDuration::from_nanos(150));
    }

    #[test]
    fn ordering_is_total() {
        let mut times = [
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        times.sort();
        assert_eq!(times[0], SimTime::ZERO);
        assert_eq!(times[2], SimTime::from_secs(3));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_millis(), 30);
        assert_eq!((d / 2).as_millis(), 5);
        assert_eq!(d.mul_f64(0.5).as_millis(), 5);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total.as_secs_f64(), 10.0);
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        let small = SimDuration::from_nanos(1);
        let big = SimDuration::from_nanos(2);
        assert_eq!(small.checked_sub(big), None);
        assert_eq!(big.checked_sub(small), Some(SimDuration::from_nanos(1)));
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }
}
