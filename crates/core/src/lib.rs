//! # zeiot-core
//!
//! Shared vocabulary for the `zeiot` workspace — the Rust reproduction of
//! *"Context Recognition of Humans and Objects by Distributed Zero-Energy
//! IoT Devices"* (Higashino et al., ICDCS 2019).
//!
//! Everything in this crate is deliberately small and dependency-light:
//! identifier newtypes, planar/solid geometry for device placement, physical
//! units with checked conversions, a simulation time axis, and deterministic
//! random-number plumbing shared by every stochastic component in the
//! workspace.
//!
//! # Example
//!
//! ```
//! use zeiot_core::geometry::Point2;
//! use zeiot_core::units::{Dbm, MilliWatt};
//!
//! let tx = Point2::new(0.0, 0.0);
//! let rx = Point2::new(3.0, 4.0);
//! assert_eq!(tx.distance(rx), 5.0);
//!
//! let p = Dbm::new(0.0);
//! assert!((p.to_milliwatt().value() - 1.0).abs() < 1e-12);
//! ```

pub mod error;
pub mod geometry;
pub mod id;
pub mod rng;
pub mod time;
pub mod units;

pub use error::{ConfigError, Result};
pub use geometry::{Grid2, Point2, Point3};
pub use id::{DeviceId, LinkId, NodeId};
pub use rng::SeedRng;
pub use time::{SimDuration, SimTime};
pub use units::{Dbm, Decibel, Hertz, Joule, MilliWatt, Watt};
