//! Deterministic random-number plumbing.
//!
//! Every stochastic component in the workspace (fading draws, sensor noise,
//! traffic arrivals, weight initialization) takes an explicit RNG so that
//! experiments are reproducible bit-for-bit from a seed. [`SeedRng`] is a
//! small, fast, splittable PCG-XSH-RR 64/32 generator implemented in-house
//! so the workspace does not depend on `rand`'s optional `small_rng`
//! feature; it also implements [`rand::RngCore`] for interoperability.
//!
//! Distribution helpers (normal, exponential, Poisson) live here as methods
//! because `rand_distr` is outside the approved dependency set.

use rand::RngCore;

const PCG_MULT: u64 = 6364136223846793005;

/// A deterministic, seedable, splittable PCG32 random-number generator.
///
/// # Example
///
/// ```
/// use zeiot_core::rng::SeedRng;
/// let mut a = SeedRng::new(42);
/// let mut b = SeedRng::new(42);
/// assert_eq!(a.uniform(), b.uniform());  // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedRng {
    state: u64,
    inc: u64,
}

impl SeedRng {
    /// Creates a generator from a seed, using the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e39cb94b95bdb)
    }

    /// Creates a generator from a seed on a specific stream; generators with
    /// the same seed but different streams produce independent sequences.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(seed);
        rng.step();
        rng
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated device its own stream while keeping one master seed.
    pub fn split(&mut self) -> Self {
        let seed = self.next_u64();
        let stream = self.next_u64();
        Self::with_stream(seed, stream)
    }

    /// The generator for sweep point `index` of a run seeded with
    /// `master`. Unlike [`SeedRng::split`] this is a pure function of
    /// `(master, index)` — it consumes no state from any other generator —
    /// so every sweep point gets the same stream no matter which thread
    /// evaluates it or in what order. This is the primitive behind the
    /// bench harness's thread-count-invariant parallel sweeps.
    ///
    /// # Example
    ///
    /// ```
    /// use zeiot_core::rng::SeedRng;
    /// let mut early = SeedRng::for_point(42, 3);
    /// let mut late = SeedRng::for_point(42, 3);
    /// assert_eq!(early.uniform(), late.uniform());
    /// assert_ne!(
    ///     SeedRng::for_point(42, 3).uniform(),
    ///     SeedRng::for_point(42, 4).uniform(),
    /// );
    /// ```
    pub fn for_point(master: u64, index: u64) -> Self {
        // Two splitmix64 finalizations decorrelate consecutive indices and
        // give seed/stream independent diffusion of the same input.
        let base = master ^ index.wrapping_mul(0x9e3779b97f4a7c15);
        let seed = splitmix64(base);
        let stream = splitmix64(base ^ 0x6a09e667f3bcc909);
        Self::with_stream(seed, stream)
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// The next `u32` from the stream.
    pub fn next_u32_raw(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        let hi = (self.next_u32_raw() as u64) << 21;
        let lo = (self.next_u32_raw() as u64) >> 11;
        ((hi | lo) as f64) * (1.0 / 9007199254740992.0)
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Multiply-shift rejection-free mapping is fine for simulation use.
        ((self.uniform() * n as f64) as usize).min(n - 1)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// A standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.uniform();
            if u1 > f64::MIN_POSITIVE {
                let u2 = self.uniform();
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        mean + std_dev * self.normal()
    }

    /// An exponential sample with the given rate λ.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        loop {
            let u = self.uniform();
            if u > 0.0 {
                return -u.ln() / rate;
            }
        }
    }

    /// A Poisson sample with the given mean λ (Knuth's method for small λ,
    /// normal approximation above 30).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda > 0.0, "lambda must be positive");
        if lambda > 30.0 {
            let x = self.normal_with(lambda, lambda.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// A Rayleigh-distributed sample with scale σ; the envelope of a
    /// zero-mean complex Gaussian, used for non-line-of-sight fading.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive.
    pub fn rayleigh(&mut self, sigma: f64) -> f64 {
        assert!(sigma > 0.0, "sigma must be positive");
        loop {
            let u = self.uniform();
            if u > 0.0 {
                return sigma * (-2.0 * u.ln()).sqrt();
            }
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }
}

/// The splitmix64 finalizer: a full-avalanche bijection on `u64`.
///
/// Exported because other deterministic derivations in the workspace
/// (sweep-point seeding here, trace-id derivation and trace sampling in
/// `zeiot-obs`) want the same well-studied mixer rather than each
/// inventing an ad-hoc hash.
///
/// # Example
///
/// ```
/// use zeiot_core::rng::splitmix64;
/// assert_eq!(splitmix64(7), splitmix64(7)); // pure function
/// assert_ne!(splitmix64(7), splitmix64(8)); // full avalanche
/// ```
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl RngCore for SeedRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u32_raw()
    }

    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32_raw() as u64;
        let lo = self.next_u32_raw() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeedRng::new(7);
        let mut b = SeedRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeedRng::new(1);
        let mut b = SeedRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SeedRng::new(99);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn for_point_is_a_pure_function_of_master_and_index() {
        let mut a = SeedRng::for_point(7, 2);
        // Deriving other points in between must not disturb point 2.
        let _ = SeedRng::for_point(7, 0).next_u64();
        let _ = SeedRng::for_point(7, 1).next_u64();
        let mut b = SeedRng::for_point(7, 2);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn for_point_streams_are_mutually_independent() {
        for (i, j) in [(0u64, 1u64), (1, 2), (0, 63), (500, 501)] {
            let mut a = SeedRng::for_point(99, i);
            let mut b = SeedRng::for_point(99, j);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert!(same < 4, "points {i} and {j} correlate");
        }
    }

    #[test]
    fn for_point_differs_across_masters() {
        let mut a = SeedRng::for_point(1, 0);
        let mut b = SeedRng::for_point(2, 0);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SeedRng::new(5);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SeedRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeedRng::new(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SeedRng::new(17);
        let rate = 4.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = SeedRng::new(19);
        for lambda in [0.5, 3.0, 50.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn rayleigh_mean() {
        let mut rng = SeedRng::new(23);
        let sigma = 2.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.rayleigh(sigma)).sum::<f64>() / n as f64;
        let expected = sigma * (std::f64::consts::PI / 2.0).sqrt();
        assert!((mean - expected).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn below_covers_all_values() {
        let mut rng = SeedRng::new(29);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SeedRng::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SeedRng::new(37);
        let empty: &[u8] = &[];
        assert!(rng.choose(empty).is_none());
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SeedRng::new(41);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        // Overwhelmingly unlikely to remain all zeros.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
