//! Planar and solid geometry for device placement.
//!
//! MicroDeep assigns CNN units to sensor nodes laid out on XY coordinates
//! (paper Fig. 8); RF propagation needs 2D/3D distances; the temperature
//! experiment uses a 25×17 cell grid over a 1,400 m² lounge. This module
//! provides the point types and the [`Grid2`] cell lattice those systems
//! share.

use crate::error::{require_positive, ConfigError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the plane, in metres.
///
/// # Example
///
/// ```
/// use zeiot_core::geometry::Point2;
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Self = Self::new(0.0, 0.0);

    /// Euclidean distance to `other` in metres.
    pub fn distance(self, other: Self) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other`, avoiding the square root.
    pub fn distance_squared(self, other: Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other` in metres.
    pub fn manhattan_distance(self, other: Self) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise midpoint between `self` and `other`.
    pub fn midpoint(self, other: Self) -> Self {
        Self::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    pub fn lerp(self, other: Self, t: f64) -> Self {
        Self::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Lifts this point to 3D at height `z`.
    pub fn with_z(self, z: f64) -> Point3 {
        Point3::new(self.x, self.y, z)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Self::new(x, y)
    }
}

/// A point in 3D space, in metres.
///
/// # Example
///
/// ```
/// use zeiot_core::geometry::Point3;
/// let a = Point3::new(0.0, 0.0, 0.0);
/// let b = Point3::new(1.0, 2.0, 2.0);
/// assert_eq!(a.distance(b), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Depth coordinate in metres.
    pub y: f64,
    /// Height coordinate in metres.
    pub z: f64,
}

impl Point3 {
    /// Creates a point from coordinates in metres.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(self, other: Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Projects onto the XY plane, discarding height.
    pub fn xy(self) -> Point2 {
        Point2::new(self.x, self.y)
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl From<(f64, f64, f64)> for Point3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Self::new(x, y, z)
    }
}

/// A rectangular lattice of `cols × rows` cells covering a physical area.
///
/// Cell `(0, 0)` is the south-west corner. Cells are addressed in
/// column-major `(col, row)` order to mirror the paper's XY assignment of
/// sensor readings to coordinates (Fig. 8). The temperature experiment's
/// lounge is `Grid2::new(25, 17, width_m, height_m)`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_core::geometry::Grid2;
/// let grid = Grid2::new(25, 17, 50.0, 28.0)?;
/// assert_eq!(grid.cell_count(), 425);
/// let c = grid.cell_center(0, 0);
/// assert!((c.x - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid2 {
    cols: usize,
    rows: usize,
    width_m: f64,
    height_m: f64,
}

impl Grid2 {
    /// Creates a grid of `cols × rows` cells spanning `width_m × height_m`
    /// metres.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either cell count is zero or either
    /// physical dimension is not strictly positive.
    pub fn new(cols: usize, rows: usize, width_m: f64, height_m: f64) -> Result<Self> {
        if cols == 0 || rows == 0 {
            return Err(ConfigError::new("cols/rows", "grid must be non-empty"));
        }
        let width_m = require_positive("width_m", width_m)?;
        let height_m = require_positive("height_m", height_m)?;
        Ok(Self {
            cols,
            rows,
            width_m,
            height_m,
        })
    }

    /// Number of cell columns.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Number of cell rows.
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells.
    pub const fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Physical width in metres.
    pub const fn width_m(&self) -> f64 {
        self.width_m
    }

    /// Physical height in metres.
    pub const fn height_m(&self) -> f64 {
        self.height_m
    }

    /// Width of one cell in metres.
    pub fn cell_width_m(&self) -> f64 {
        self.width_m / self.cols as f64
    }

    /// Height of one cell in metres.
    pub fn cell_height_m(&self) -> f64 {
        self.height_m / self.rows as f64
    }

    /// The physical centre of cell `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols()` or `row >= rows()`.
    pub fn cell_center(&self, col: usize, row: usize) -> Point2 {
        assert!(
            col < self.cols,
            "col {col} out of range (cols={})",
            self.cols
        );
        assert!(
            row < self.rows,
            "row {row} out of range (rows={})",
            self.rows
        );
        Point2::new(
            (col as f64 + 0.5) * self.cell_width_m(),
            (row as f64 + 0.5) * self.cell_height_m(),
        )
    }

    /// The cell containing physical point `p`, clamped to the grid border.
    pub fn cell_of(&self, p: Point2) -> (usize, usize) {
        let col = (p.x / self.cell_width_m()).floor();
        let row = (p.y / self.cell_height_m()).floor();
        let col = col.clamp(0.0, (self.cols - 1) as f64) as usize;
        let row = row.clamp(0.0, (self.rows - 1) as f64) as usize;
        (col, row)
    }

    /// Flattens `(col, row)` to a dense index in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols()` or `row >= rows()`.
    pub fn flat_index(&self, col: usize, row: usize) -> usize {
        assert!(col < self.cols && row < self.rows);
        row * self.cols + col
    }

    /// Inverse of [`Grid2::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= cell_count()`.
    pub fn unflatten(&self, index: usize) -> (usize, usize) {
        assert!(index < self.cell_count());
        (index % self.cols, index / self.cols)
    }

    /// Iterates over all `(col, row)` cell coordinates in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.cols;
        (0..self.cell_count()).map(move |i| (i % cols, i / cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point2_distances() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
        assert_eq!(a.manhattan_distance(b), 7.0);
    }

    #[test]
    fn point2_midpoint_and_lerp() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), Point2::new(1.0, 2.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point2::new(0.5, 1.0));
    }

    #[test]
    fn point3_distance_and_projection() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 3.0, 6.0);
        assert_eq!(a.distance(b), 7.0);
        assert_eq!(b.xy(), Point2::new(2.0, 3.0));
        assert_eq!(Point2::new(2.0, 3.0).with_z(6.0), b);
    }

    #[test]
    fn grid_rejects_degenerate_inputs() {
        assert!(Grid2::new(0, 17, 1.0, 1.0).is_err());
        assert!(Grid2::new(25, 0, 1.0, 1.0).is_err());
        assert!(Grid2::new(25, 17, 0.0, 1.0).is_err());
        assert!(Grid2::new(25, 17, 1.0, -1.0).is_err());
    }

    #[test]
    fn grid_lounge_dimensions() {
        // The paper's 1,400 m² lounge split into 25×17 cells.
        let grid = Grid2::new(25, 17, 50.0, 28.0).unwrap();
        assert_eq!(grid.cell_count(), 425);
        assert!((grid.cell_width_m() - 2.0).abs() < 1e-12);
        assert!((grid.width_m() * grid.height_m() - 1400.0).abs() < 1e-9);
    }

    #[test]
    fn grid_cell_center_and_cell_of_round_trip() {
        let grid = Grid2::new(25, 17, 50.0, 34.0).unwrap();
        for (col, row) in grid.cells() {
            let c = grid.cell_center(col, row);
            assert_eq!(grid.cell_of(c), (col, row));
        }
    }

    #[test]
    fn grid_cell_of_clamps_outside_points() {
        let grid = Grid2::new(4, 4, 4.0, 4.0).unwrap();
        assert_eq!(grid.cell_of(Point2::new(-1.0, -1.0)), (0, 0));
        assert_eq!(grid.cell_of(Point2::new(100.0, 100.0)), (3, 3));
    }

    #[test]
    fn grid_flat_index_round_trip() {
        let grid = Grid2::new(5, 3, 5.0, 3.0).unwrap();
        for i in 0..grid.cell_count() {
            let (c, r) = grid.unflatten(i);
            assert_eq!(grid.flat_index(c, r), i);
        }
    }

    #[test]
    #[should_panic]
    fn grid_cell_center_panics_out_of_range() {
        let grid = Grid2::new(2, 2, 2.0, 2.0).unwrap();
        let _ = grid.cell_center(2, 0);
    }
}
