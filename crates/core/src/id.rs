//! Identifier newtypes for devices, network nodes and links.
//!
//! The paper distinguishes *IoT devices* (zero-energy endpoints such as
//! backscatter tags) from *sensor nodes* (wireless sensor network members
//! that carry CNN units in MicroDeep). Keeping the identifiers as distinct
//! newtypes prevents a tag id from being used where a WSN node id is
//! expected.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index as an identifier.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index backing this identifier.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as a `usize`, convenient for dense indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a wireless sensor network node (a MicroDeep host).
    ///
    /// # Example
    ///
    /// ```
    /// use zeiot_core::id::NodeId;
    /// let n = NodeId::new(7);
    /// assert_eq!(n.index(), 7);
    /// assert_eq!(n.to_string(), "node-7");
    /// ```
    NodeId,
    "node-"
);

define_id!(
    /// Identifier of a zero-energy IoT device (e.g. a backscatter tag).
    ///
    /// # Example
    ///
    /// ```
    /// use zeiot_core::id::DeviceId;
    /// let d = DeviceId::new(3);
    /// assert_eq!(d.to_string(), "dev-3");
    /// ```
    DeviceId,
    "dev-"
);

/// Identifier of a directed link between two nodes.
///
/// # Example
///
/// ```
/// use zeiot_core::id::{LinkId, NodeId};
/// let l = LinkId::new(NodeId::new(0), NodeId::new(1));
/// assert_eq!(l.to_string(), "node-0->node-1");
/// assert_eq!(l.reversed().src(), NodeId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId {
    src: NodeId,
    dst: NodeId,
}

impl LinkId {
    /// Creates a directed link identifier from `src` to `dst`.
    pub const fn new(src: NodeId, dst: NodeId) -> Self {
        Self { src, dst }
    }

    /// The transmitting endpoint.
    pub const fn src(self) -> NodeId {
        self.src
    }

    /// The receiving endpoint.
    pub const fn dst(self) -> NodeId {
        self.dst
    }

    /// The same link in the opposite direction.
    pub const fn reversed(self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Whether the link is a self-loop.
    pub const fn is_loopback(self) -> bool {
        self.src.raw() == self.dst.raw()
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_u32() {
        let n = NodeId::from(42u32);
        assert_eq!(u32::from(n), 42);
        let d = DeviceId::from(7u32);
        assert_eq!(u32::from(d), 7);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(DeviceId::new(0) < DeviceId::new(10));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<NodeId> = (0..10).map(NodeId::new).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn link_reversal_swaps_endpoints() {
        let l = LinkId::new(NodeId::new(3), NodeId::new(9));
        let r = l.reversed();
        assert_eq!(r.src(), NodeId::new(9));
        assert_eq!(r.dst(), NodeId::new(3));
        assert_eq!(r.reversed(), l);
    }

    #[test]
    fn loopback_detection() {
        assert!(LinkId::new(NodeId::new(1), NodeId::new(1)).is_loopback());
        assert!(!LinkId::new(NodeId::new(1), NodeId::new(2)).is_loopback());
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(5).to_string(), "node-5");
        assert_eq!(DeviceId::new(5).to_string(), "dev-5");
        assert_eq!(
            LinkId::new(NodeId::new(1), NodeId::new(2)).to_string(),
            "node-1->node-2"
        );
    }
}
