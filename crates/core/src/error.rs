//! Workspace-wide error primitives.
//!
//! Crates in the workspace define their own error enums; this module only
//! hosts [`ConfigError`], the error produced when a constructor or builder is
//! handed an invalid parameter, because parameter validation occurs in every
//! crate and deserves one shared, well-behaved type.

use std::fmt;

/// Convenient alias used by constructors across the workspace.
pub type Result<T, E = ConfigError> = std::result::Result<T, E>;

/// An invalid configuration value was supplied to a constructor or builder.
///
/// The message names the offending parameter first so that errors bubbling
/// through several layers remain actionable, e.g.
/// `"path_loss_exponent: must be positive, got -2"`.
///
/// # Example
///
/// ```
/// use zeiot_core::error::ConfigError;
///
/// let err = ConfigError::new("tx_power_dbm", "must be finite");
/// assert_eq!(err.parameter(), "tx_power_dbm");
/// assert_eq!(err.to_string(), "tx_power_dbm: must be finite");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    parameter: String,
    message: String,
}

impl ConfigError {
    /// Creates a new configuration error for `parameter` with a reason.
    pub fn new(parameter: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            parameter: parameter.into(),
            message: message.into(),
        }
    }

    /// The name of the offending parameter.
    pub fn parameter(&self) -> &str {
        &self.parameter
    }

    /// The human-readable reason the parameter was rejected.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.parameter, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Validates that `value` is finite, returning it on success.
///
/// # Errors
///
/// Returns [`ConfigError`] when `value` is NaN or infinite.
pub fn require_finite(parameter: &str, value: f64) -> Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ConfigError::new(
            parameter,
            format!("must be finite, got {value}"),
        ))
    }
}

/// Validates that `value` is finite and strictly positive.
///
/// # Errors
///
/// Returns [`ConfigError`] when `value` is NaN, infinite, zero or negative.
pub fn require_positive(parameter: &str, value: f64) -> Result<f64> {
    let value = require_finite(parameter, value)?;
    if value > 0.0 {
        Ok(value)
    } else {
        Err(ConfigError::new(
            parameter,
            format!("must be positive, got {value}"),
        ))
    }
}

/// Validates that `value` is finite and non-negative.
///
/// # Errors
///
/// Returns [`ConfigError`] when `value` is NaN, infinite or negative.
pub fn require_non_negative(parameter: &str, value: f64) -> Result<f64> {
    let value = require_finite(parameter, value)?;
    if value >= 0.0 {
        Ok(value)
    } else {
        Err(ConfigError::new(
            parameter,
            format!("must be non-negative, got {value}"),
        ))
    }
}

/// Validates that `value` lies in the inclusive range `[lo, hi]`.
///
/// # Errors
///
/// Returns [`ConfigError`] when `value` is NaN or outside the range.
pub fn require_in_range(parameter: &str, value: f64, lo: f64, hi: f64) -> Result<f64> {
    let value = require_finite(parameter, value)?;
    if (lo..=hi).contains(&value) {
        Ok(value)
    } else {
        Err(ConfigError::new(
            parameter,
            format!("must be in [{lo}, {hi}], got {value}"),
        ))
    }
}

/// Validates that an integer count is non-zero.
///
/// # Errors
///
/// Returns [`ConfigError`] when `value` is zero.
pub fn require_nonzero_usize(parameter: &str, value: usize) -> Result<usize> {
    if value > 0 {
        Ok(value)
    } else {
        Err(ConfigError::new(parameter, "must be non-zero"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_parameter_then_message() {
        let err = ConfigError::new("alpha", "must be positive, got -1");
        assert_eq!(err.to_string(), "alpha: must be positive, got -1");
    }

    #[test]
    fn require_finite_rejects_nan_and_inf() {
        assert!(require_finite("x", f64::NAN).is_err());
        assert!(require_finite("x", f64::INFINITY).is_err());
        assert!(require_finite("x", f64::NEG_INFINITY).is_err());
        assert_eq!(require_finite("x", 1.5).unwrap(), 1.5);
    }

    #[test]
    fn require_positive_rejects_zero_and_negative() {
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", -1.0).is_err());
        assert_eq!(require_positive("x", 2.0).unwrap(), 2.0);
    }

    #[test]
    fn require_non_negative_accepts_zero() {
        assert_eq!(require_non_negative("x", 0.0).unwrap(), 0.0);
        assert!(require_non_negative("x", -0.1).is_err());
    }

    #[test]
    fn require_in_range_is_inclusive() {
        assert_eq!(require_in_range("x", 0.0, 0.0, 1.0).unwrap(), 0.0);
        assert_eq!(require_in_range("x", 1.0, 0.0, 1.0).unwrap(), 1.0);
        assert!(require_in_range("x", 1.01, 0.0, 1.0).is_err());
        assert!(require_in_range("x", f64::NAN, 0.0, 1.0).is_err());
    }

    #[test]
    fn require_nonzero_usize_rejects_zero() {
        assert!(require_nonzero_usize("n", 0).is_err());
        assert_eq!(require_nonzero_usize("n", 3).unwrap(), 3);
    }

    #[test]
    fn config_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
