//! Physical units with checked conversions.
//!
//! Link budgets mix logarithmic (dBm, dB) and linear (mW, W) power scales;
//! the energy model needs joules; PHY models need hertz. Newtypes keep those
//! scales from being confused (a classic source of silent RF-simulation
//! bugs: adding two dBm values as if they were linear).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Power on the logarithmic dBm scale (decibels relative to 1 mW).
///
/// `Dbm` supports adding/subtracting [`Decibel`] gains and losses, which is
/// how link budgets compose; adding two `Dbm` values directly is
/// intentionally not provided.
///
/// # Example
///
/// ```
/// use zeiot_core::units::{Dbm, Decibel};
/// let tx = Dbm::new(20.0);              // 100 mW transmitter
/// let rx = tx - Decibel::new(60.0);     // 60 dB path loss
/// assert_eq!(rx.value(), -40.0);
/// assert!((rx.to_milliwatt().value() - 1e-4).abs() < 1e-16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(f64);

impl Dbm {
    /// Wraps a power level in dBm.
    pub const fn new(dbm: f64) -> Self {
        Self(dbm)
    }

    /// The raw dBm value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    pub fn to_milliwatt(self) -> MilliWatt {
        MilliWatt::new(10f64.powf(self.0 / 10.0))
    }

    /// Converts to linear watts.
    pub fn to_watt(self) -> Watt {
        Watt::new(10f64.powf(self.0 / 10.0) * 1e-3)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl Add<Decibel> for Dbm {
    type Output = Dbm;
    fn add(self, gain: Decibel) -> Dbm {
        Dbm(self.0 + gain.0)
    }
}

impl Sub<Decibel> for Dbm {
    type Output = Dbm;
    fn sub(self, loss: Decibel) -> Dbm {
        Dbm(self.0 - loss.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Decibel;
    /// The ratio of two powers is a gain in dB.
    fn sub(self, other: Dbm) -> Decibel {
        Decibel(self.0 - other.0)
    }
}

impl AddAssign<Decibel> for Dbm {
    fn add_assign(&mut self, gain: Decibel) {
        self.0 += gain.0;
    }
}

impl SubAssign<Decibel> for Dbm {
    fn sub_assign(&mut self, loss: Decibel) {
        self.0 -= loss.0;
    }
}

/// A dimensionless ratio on the decibel scale: gains, losses, SNR.
///
/// # Example
///
/// ```
/// use zeiot_core::units::Decibel;
/// let snr = Decibel::new(10.0);
/// assert!((snr.to_linear() - 10.0).abs() < 1e-12);
/// assert!((Decibel::from_linear(100.0).value() - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Decibel(f64);

impl Decibel {
    /// Wraps a ratio in dB.
    pub const fn new(db: f64) -> Self {
        Self(db)
    }

    /// The raw dB value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts this dB ratio to a linear power ratio.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates a dB ratio from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is not strictly positive.
    pub fn from_linear(linear: f64) -> Self {
        assert!(linear > 0.0, "linear ratio must be positive, got {linear}");
        Self(10.0 * linear.log10())
    }
}

impl fmt::Display for Decibel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl Add for Decibel {
    type Output = Decibel;
    fn add(self, other: Decibel) -> Decibel {
        Decibel(self.0 + other.0)
    }
}

impl Sub for Decibel {
    type Output = Decibel;
    fn sub(self, other: Decibel) -> Decibel {
        Decibel(self.0 - other.0)
    }
}

impl Neg for Decibel {
    type Output = Decibel;
    fn neg(self) -> Decibel {
        Decibel(-self.0)
    }
}

impl Sum for Decibel {
    fn sum<I: Iterator<Item = Decibel>>(iter: I) -> Decibel {
        Decibel(iter.map(|d| d.0).sum())
    }
}

macro_rules! define_linear_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The raw value.
            pub const fn value(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.4} ", $suffix), self.0)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, other: $name) -> $name {
                $name(self.0 + other.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, other: $name) -> $name {
                $name(self.0 - other.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, k: f64) -> $name {
                $name(self.0 * k)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, k: f64) -> $name {
                $name(self.0 / k)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, other: $name) {
                self.0 += other.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, other: $name) {
                self.0 -= other.0;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }
    };
}

define_linear_unit!(
    /// Power in linear milliwatts.
    ///
    /// # Example
    ///
    /// ```
    /// use zeiot_core::units::MilliWatt;
    /// let p = MilliWatt::new(100.0);
    /// assert!((p.to_dbm().value() - 20.0).abs() < 1e-12);
    /// ```
    MilliWatt,
    "mW"
);

define_linear_unit!(
    /// Power in linear watts.
    Watt,
    "W"
);

define_linear_unit!(
    /// Energy in joules.
    ///
    /// # Example
    ///
    /// ```
    /// use zeiot_core::units::{Joule, Watt};
    /// use zeiot_core::time::SimDuration;
    /// let e = Watt::new(0.5).energy_over(SimDuration::from_secs_f64(2.0));
    /// assert!((e.value() - 1.0).abs() < 1e-9);
    /// ```
    Joule,
    "J"
);

define_linear_unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

impl MilliWatt {
    /// Converts to the logarithmic dBm scale.
    ///
    /// # Panics
    ///
    /// Panics if the power is not strictly positive (zero power has no dBm
    /// representation).
    pub fn to_dbm(self) -> Dbm {
        assert!(self.0 > 0.0, "power must be positive to convert to dBm");
        Dbm(10.0 * self.0.log10())
    }

    /// Converts to watts.
    pub fn to_watt(self) -> Watt {
        Watt(self.0 * 1e-3)
    }
}

impl Watt {
    /// Converts to milliwatts.
    pub fn to_milliwatt(self) -> MilliWatt {
        MilliWatt(self.0 * 1e3)
    }

    /// Converts to dBm.
    ///
    /// # Panics
    ///
    /// Panics if the power is not strictly positive.
    pub fn to_dbm(self) -> Dbm {
        self.to_milliwatt().to_dbm()
    }

    /// Energy drawn at this power over `duration`.
    pub fn energy_over(self, duration: crate::time::SimDuration) -> Joule {
        Joule(self.0 * duration.as_secs_f64())
    }
}

impl Joule {
    /// Microjoules representation, convenient for µW-scale devices.
    pub fn as_microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// Creates energy from microjoules.
    pub fn from_microjoules(uj: f64) -> Self {
        Self(uj * 1e-6)
    }

    /// Average power when this energy is spent over `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn average_power(self, duration: crate::time::SimDuration) -> Watt {
        let secs = duration.as_secs_f64();
        assert!(secs > 0.0, "duration must be non-zero");
        Watt(self.0 / secs)
    }
}

impl Hertz {
    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// Free-space wavelength in metres for this carrier frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn wavelength_m(self) -> f64 {
        assert!(self.0 > 0.0, "frequency must be positive");
        299_792_458.0 / self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn dbm_milliwatt_round_trip() {
        for dbm in [-90.0, -40.0, 0.0, 10.0, 30.0] {
            let p = Dbm::new(dbm);
            let back = p.to_milliwatt().to_dbm();
            assert!((back.value() - dbm).abs() < 1e-9, "{dbm}");
        }
    }

    #[test]
    fn link_budget_composition() {
        let tx = Dbm::new(20.0);
        let gains = Decibel::new(2.0) + Decibel::new(3.0);
        let rx = tx + gains - Decibel::new(70.0);
        assert!((rx.value() - (-45.0)).abs() < 1e-12);
    }

    #[test]
    fn dbm_difference_is_decibel() {
        let g = Dbm::new(-30.0) - Dbm::new(-60.0);
        assert_eq!(g.value(), 30.0);
        assert!((g.to_linear() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn decibel_linear_round_trip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 30.0] {
            let lin = Decibel::new(db).to_linear();
            assert!((Decibel::from_linear(lin).value() - db).abs() < 1e-9);
        }
    }

    #[test]
    fn decibel_sum_over_iterator() {
        let total: Decibel = [1.0, 2.0, 3.0].into_iter().map(Decibel::new).sum();
        assert_eq!(total.value(), 6.0);
    }

    #[test]
    fn watt_milliwatt_conversions() {
        let w = Watt::new(0.1);
        assert!((w.to_milliwatt().value() - 100.0).abs() < 1e-12);
        assert!((w.to_dbm().value() - 20.0).abs() < 1e-9);
        assert!((MilliWatt::new(100.0).to_watt().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn energy_power_duration_triangle() {
        let d = SimDuration::from_secs_f64(10.0);
        let e = Watt::new(2.0).energy_over(d);
        assert!((e.value() - 20.0).abs() < 1e-9);
        assert!((e.average_power(d).value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn microjoule_round_trip() {
        let e = Joule::from_microjoules(12.5);
        assert!((e.as_microjoules() - 12.5).abs() < 1e-9);
        assert!((e.value() - 12.5e-6).abs() < 1e-15);
    }

    #[test]
    fn wavelength_at_2_4_ghz() {
        let wl = Hertz::from_ghz(2.4).wavelength_m();
        assert!((wl - 0.12491).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn zero_power_has_no_dbm() {
        let _ = MilliWatt::new(0.0).to_dbm();
    }

    #[test]
    fn backscatter_power_factor_claim() {
        // Paper §I: backscatter ≈ 10 µW vs conventional radio ≈ 100 mW
        // — a factor of about 1/10,000.
        let backscatter = Watt::new(10e-6);
        let radio = MilliWatt::new(100.0).to_watt();
        let ratio = backscatter.value() / radio.value();
        assert!((ratio - 1e-4).abs() < 1e-12);
    }
}
