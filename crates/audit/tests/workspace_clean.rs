//! The acceptance gate: the workspace itself audits clean under
//! `--deny all`, and every surviving allow annotation carries a
//! justification. CI runs the binary too; this test keeps the
//! guarantee inside `cargo test`.

use std::path::PathBuf;
use zeiot_audit::{audit_workspace, AllowStatus, AuditConfig};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_zero_unannotated_findings() {
    let report = audit_workspace(&repo_root(), &AuditConfig::default(), None).unwrap();
    let active: Vec<String> = report.active().map(|f| f.to_string()).collect();
    assert!(
        active.is_empty(),
        "active audit findings:\n{}",
        active.join("\n")
    );
}

#[test]
fn every_allow_annotation_carries_a_justification() {
    let report = audit_workspace(&repo_root(), &AuditConfig::default(), None).unwrap();
    let mut suppressed = 0;
    for f in &report.findings {
        if let AllowStatus::Suppressed { justification } = &f.status {
            suppressed += 1;
            assert!(
                justification.split_whitespace().count() >= 3,
                "{}: justification too thin: {justification:?}",
                f.file
            );
        }
    }
    // The two deliberate wall-clock sites (sim engine probe timing,
    // obs WallSpan) are annotated today; more may join, none may lose
    // their justification.
    assert!(suppressed >= 2, "expected the known annotated sites");
}
