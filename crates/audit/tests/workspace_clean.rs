//! The acceptance gate: the workspace itself audits clean under
//! `--deny all` with the committed baseline, and every surviving allow
//! annotation carries a justification. CI runs the binary too; this
//! test keeps the guarantee inside `cargo test`.

use std::path::PathBuf;
use zeiot_audit::{audit_workspace, AllowStatus, AuditConfig, Baseline};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn committed_baseline() -> Baseline {
    Baseline::load(&repo_root().join("audit-baseline.json")).expect("committed baseline loads")
}

#[test]
fn workspace_has_zero_unannotated_findings() {
    let baseline = committed_baseline();
    let report = audit_workspace(&repo_root(), &AuditConfig::default(), Some(&baseline)).unwrap();
    let active: Vec<String> = report.active().map(|f| f.to_string()).collect();
    assert!(
        active.is_empty(),
        "active audit findings:\n{}",
        active.join("\n")
    );
}

#[test]
fn baseline_only_grandfathers_legacy_microdeep_p1() {
    // The baseline is a ratchet, not a dumping ground: only the legacy
    // microdeep kernel files ride it, only for p1, and it must still
    // cover something (a baseline that covers nothing means the debt
    // was paid — delete the stale rows).
    let baseline = committed_baseline();
    let report = audit_workspace(&repo_root(), &AuditConfig::default(), Some(&baseline)).unwrap();
    let baselined: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.status == AllowStatus::Baselined)
        .collect();
    assert!(!baselined.is_empty(), "baseline covers nothing — delete it");
    for f in &baselined {
        assert_eq!(f.rule, "p1", "{}: only p1 may be baselined", f.file);
        assert!(
            f.file.starts_with("crates/microdeep/src/"),
            "{}: baseline is reserved for legacy microdeep kernels",
            f.file
        );
    }
}

#[test]
fn every_allow_annotation_carries_a_justification() {
    let report = audit_workspace(&repo_root(), &AuditConfig::default(), None).unwrap();
    let mut suppressed = 0;
    for f in &report.findings {
        if let AllowStatus::Suppressed { justification } = &f.status {
            suppressed += 1;
            assert!(
                justification.split_whitespace().count() >= 3,
                "{}: justification too thin: {justification:?}",
                f.file
            );
        }
    }
    // The two deliberate wall-clock sites (sim engine probe timing,
    // obs WallSpan) plus the p1 allow sites added with the reachability
    // rule; more may join, none may lose their justification.
    assert!(suppressed >= 20, "expected the known annotated sites");
}

#[test]
fn registry_round_trip_holds_workspace_wide() {
    // o1 both ways: every emitted literal is registered and every
    // registered name is emitted. Run without the baseline so a future
    // baseline row can never mask an o1 regression.
    let report = audit_workspace(&repo_root(), &AuditConfig::default(), None).unwrap();
    let o1: Vec<String> = report
        .active()
        .filter(|f| f.rule == "o1")
        .map(|f| f.to_string())
        .collect();
    assert!(o1.is_empty(), "o1 findings:\n{}", o1.join("\n"));
}
