//! The audit's own regression corpus: one known-bad fixture per rule
//! proving the rule fires on exactly its target pattern, plus
//! annotated fixtures proving suppression, staleness detection, and
//! malformed-annotation policing. Fixtures live under `fixtures/` as
//! plain text — they are never compiled.

use zeiot_audit::{analyze_source, AuditConfig, Baseline, Finding, Layer};

fn audit_as(crate_name: &str, rel: &str, src: &str) -> Vec<Finding> {
    analyze_source(&AuditConfig::default(), crate_name, rel, Layer::Lib, src)
}

fn active<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.status.is_active())
        .collect()
}

#[test]
fn d1_fires_on_hash_collections_only_outside_tests() {
    let src = include_str!("../fixtures/d1_hash_collections.rs");
    let findings = audit_as("zeiot-sim", "fixtures/d1_hash_collections.rs", src);
    let d1 = active(&findings, "d1");
    // Two imports + two constructor lines; the string/comment decoys
    // and the #[cfg(test)] HashMap stay silent.
    assert_eq!(d1.len(), 4, "{findings:#?}");
    assert!(d1.iter().all(|f| f.line < 19));
    assert_eq!(findings.len(), d1.len(), "only d1 may fire: {findings:#?}");
}

#[test]
fn d2_fires_on_every_wall_clock_and_env_pattern() {
    let src = include_str!("../fixtures/d2_wall_clock.rs");
    let findings = audit_as("zeiot-rf", "fixtures/d2_wall_clock.rs", src);
    let d2 = active(&findings, "d2");
    // Instant::now, SystemTime, thread_rng, thread::current, env::var —
    // one per offending function.
    assert_eq!(d2.len(), 5, "{findings:#?}");
    assert_eq!(findings.len(), d2.len());
    let snippets: String = d2.iter().map(|f| f.snippet.as_str()).collect();
    for pattern in [
        "Instant::now",
        "SystemTime::now",
        "thread_rng",
        "thread::current",
        "env::var",
    ] {
        assert!(snippets.contains(pattern), "missing {pattern}");
    }
}

#[test]
fn d2_is_waived_in_the_cli_layer() {
    let src = include_str!("../fixtures/d2_wall_clock.rs");
    let findings = analyze_source(
        &AuditConfig::default(),
        "zeiot-rf",
        "src/bin/tool.rs",
        Layer::Bin,
        src,
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn d3_fires_on_parallel_float_accumulation_not_serial() {
    let src = include_str!("../fixtures/d3_parallel_float_sum.rs");
    let findings = audit_as("zeiot-sim", "fixtures/d3_parallel_float_sum.rs", src);
    let d3 = active(&findings, "d3");
    assert_eq!(d3.len(), 2, "{findings:#?}");
    // The same-line `.sum()` and the fluent-chain `.fold(`…
    assert!(d3[0].snippet.contains(".sum()"));
    assert!(d3[1].snippet.contains(".fold("));
    // …but the serial `iter().sum()` at the bottom never fires,
    assert!(d3
        .iter()
        .all(|f| !f.snippet.contains("iter().map(|s| s * s).sum()")
            || f.snippet.contains("par_iter")));
    // …and neither does the parallel integer sum: `.sum::<i32>()` is
    // order-insensitive (the quantized kernels' thread-invariance
    // argument), so d3 exempts it without an allow annotation.
    assert!(d3.iter().all(|f| !f.snippet.contains("sum::<i32>")));
    assert_eq!(findings.len(), d3.len());
}

#[test]
fn h1_fires_on_unwrap_and_expect_in_typed_error_crates() {
    let src = include_str!("../fixtures/h1_unwrap.rs");
    let findings = audit_as("zeiot-serve", "fixtures/h1_unwrap.rs", src);
    let h1 = active(&findings, "h1");
    // One `.unwrap()`, one `.expect(` — the total `unwrap_or` and the
    // test-module unwrap stay silent.
    assert_eq!(h1.len(), 2, "{findings:#?}");
    // The same sites double as p1 hits: each pub fn reaches its own
    // panic with a one-step chain.
    let p1 = active(&findings, "p1");
    assert_eq!(p1.len(), 2, "{findings:#?}");
    assert!(p1.iter().all(|f| f.chain.len() == 1), "{p1:#?}");
    assert_eq!(findings.len(), h1.len() + p1.len());
    // The same file in a crate without typed errors is silent.
    assert!(audit_as("zeiot-nn", "fixtures/h1_unwrap.rs", src).is_empty());
}

#[test]
fn h2_fires_only_on_undocumented_public_result_fns() {
    let src = include_str!("../fixtures/h2_missing_errors_doc.rs");
    let findings = audit_as("zeiot-serve", "fixtures/h2_missing_errors_doc.rs", src);
    let h2 = active(&findings, "h2");
    assert_eq!(h2.len(), 1, "{findings:#?}");
    assert!(h2[0].snippet.contains("parse_rate"));
    assert_eq!(findings.len(), h2.len());
}

#[test]
fn allow_annotations_suppress_with_their_justification() {
    let src = include_str!("../fixtures/allow_suppressed.rs");
    let findings = audit_as("zeiot-plan", "fixtures/allow_suppressed.rs", src);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    for f in &findings {
        assert_eq!(f.rule, "d1");
        assert!(!f.status.is_active(), "{f}");
        match &f.status {
            zeiot_audit::AllowStatus::Suppressed { justification } => {
                assert!(justification.contains("sorted") || justification.contains("order"));
            }
            other => panic!("expected suppression, got {other:?}"),
        }
    }
}

#[test]
fn stale_allow_annotations_are_flagged() {
    let src = include_str!("../fixtures/allow_unused.rs");
    let findings = audit_as("zeiot-plan", "fixtures/allow_unused.rs", src);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "unused-allow");
    assert!(findings[0].status.is_active());
}

#[test]
fn malformed_allow_annotations_are_flagged_and_do_not_suppress() {
    let src = include_str!("../fixtures/allow_malformed.rs");
    let findings = audit_as("zeiot-plan", "fixtures/allow_malformed.rs", src);
    let malformed = active(&findings, "malformed-allow");
    assert_eq!(malformed.len(), 2, "{findings:#?}");
    assert!(malformed[0].message.contains("justification"));
    assert!(malformed[1].message.contains("unknown rule `d9`"));
    // The HashMaps the broken annotations sat next to still count.
    assert_eq!(active(&findings, "d1").len(), 2);
}

#[test]
fn baselines_grandfather_without_silencing_the_report() {
    let src = include_str!("../fixtures/d1_hash_collections.rs");
    let mut findings = audit_as("zeiot-sim", "fixtures/d1_hash_collections.rs", src);
    let baseline = Baseline::from_json(
        r#"[{"file":"fixtures/d1_hash_collections.rs","rule":"d1","line":null}]"#,
    )
    .unwrap();
    baseline.apply(&mut findings);
    assert!(findings.iter().all(|f| !f.status.is_active()));
    assert!(findings
        .iter()
        .all(|f| f.status == zeiot_audit::AllowStatus::Baselined));
    assert_eq!(findings.len(), 4);
}

#[test]
fn p1_reports_transitive_panics_with_their_call_chain() {
    let src = include_str!("../fixtures/p1_reachability.rs");
    let findings = audit_as("zeiot-serve", "fixtures/p1_reachability.rs", src);
    // `inner` panics and is reachable from the public root `entry`:
    // one active p1 finding carrying the two-step chain.
    let p1 = active(&findings, "p1");
    assert_eq!(p1.len(), 1, "{findings:#?}");
    assert_eq!(p1[0].chain.len(), 2, "{p1:#?}");
    assert!(p1[0].chain[0].contains("entry"), "{:?}", p1[0].chain);
    assert!(p1[0].chain[1].contains("inner"), "{:?}", p1[0].chain);
    assert!(p1[0].message.contains("unwrap"), "{}", p1[0].message);
    // The dead `never_called` indexes out of bounds but no public root
    // reaches it: silent.
    assert!(
        findings.iter().all(|f| !f.snippet.contains("empty[0]")),
        "{findings:#?}"
    );
    // `guarded`'s indexing is justified: suppressed, not active.
    let suppressed: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "p1" && !f.status.is_active())
        .collect();
    assert_eq!(suppressed.len(), 1, "{findings:#?}");
    assert!(suppressed[0].snippet.contains("values[0]"));
    // The unwrap doubles as h1; nothing else fires.
    assert_eq!(active(&findings, "h1").len(), 1);
    assert_eq!(findings.len(), 3, "{findings:#?}");
}

#[test]
fn p1_is_scoped_to_typed_error_crates() {
    let src = include_str!("../fixtures/p1_reachability.rs");
    let findings = audit_as("zeiot-nn", "fixtures/p1_reachability.rs", src);
    // No typed-error contract, no roots — only the now-stale allow
    // annotation surfaces.
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "unused-allow");
}

#[test]
fn d4_distinguishes_literal_seeds_derivation_and_rng_roots() {
    let src = include_str!("../fixtures/d4_rng_discipline.rs");
    let findings = audit_as("zeiot-sim", "fixtures/d4_rng_discipline.rs", src);
    let d4 = active(&findings, "d4");
    // Two literal seeds plus one fresh stream outside an RNG root; the
    // `for_point` derivation and the test-module seed stay silent.
    assert_eq!(d4.len(), 3, "{findings:#?}");
    let literals = d4
        .iter()
        .filter(|f| f.message.contains("literal seed"))
        .count();
    assert_eq!(literals, 2, "{d4:#?}");
    assert_eq!(findings.len(), d4.len() + 1, "{findings:#?}");
    // The justified independent stream is suppressed, not active.
    assert!(findings
        .iter()
        .any(|f| f.rule == "d4" && !f.status.is_active()));
}

#[test]
fn d4_permits_fresh_streams_inside_rng_root_crates() {
    let src = include_str!("../fixtures/d4_rng_discipline.rs");
    let findings = audit_as("zeiot-bench", "fixtures/d4_rng_discipline.rs", src);
    // An RNG root may mint fresh streams, but literal seeds still
    // fire, and the now-unneeded allow annotation is flagged stale.
    let d4 = active(&findings, "d4");
    assert_eq!(d4.len(), 2, "{findings:#?}");
    assert!(d4.iter().all(|f| f.message.contains("literal seed")));
    assert_eq!(active(&findings, "unused-allow").len(), 1, "{findings:#?}");
}

#[test]
fn o1_checks_emitted_names_against_the_registry() {
    let src = include_str!("../fixtures/o1_observability_names.rs");
    let findings = audit_as("zeiot-scenario", "fixtures/o1_observability_names.rs", src);
    let o1 = active(&findings, "o1");
    // Two bad metric names and one bad span name; the registered
    // names, the dynamic family, and the test-module scratch name all
    // pass.
    assert_eq!(o1.len(), 3, "{findings:#?}");
    let typo = o1
        .iter()
        .find(|f| f.message.contains("serve.offerd"))
        .expect("typo finding");
    assert!(
        typo.message.contains("did you mean \"serve.offered\""),
        "{}",
        typo.message
    );
    let span_typo = o1
        .iter()
        .find(|f| f.message.contains("serve.inferr"))
        .expect("span typo finding");
    assert!(
        span_typo.message.contains("did you mean \"serve.infer\""),
        "{}",
        span_typo.message
    );
    assert!(o1.iter().any(|f| f.message.contains("made.up.metric")));
    // The justified off-registry name is suppressed, not active.
    assert!(findings
        .iter()
        .any(|f| f.rule == "o1" && !f.status.is_active()));
    assert_eq!(findings.len(), o1.len() + 1, "{findings:#?}");
}
