//! Item-level parsing: functions, impl blocks, and visibility.
//!
//! Built on the [`crate::lexer`] line classification — no `syn`, no
//! token stream. The parser tracks brace depth across lexed `code`
//! lines, recognises `impl` headers (to qualify methods with their
//! self type) and `fn` headers (with their visibility), and records
//! each function's body as a line range. Nested functions are items of
//! their own; a line belongs to its *innermost* enclosing function.
//!
//! The parse is deliberately conservative in the directions the rules
//! need: a function it cannot attribute (macro-generated items, exotic
//! signatures) simply produces no item, which can only *miss* findings
//! (p1 under-approximates), never invent them.

use crate::lexer::Line;

/// One parsed function item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `Type::name` for methods, `name` for free functions.
    pub qualified: String,
    /// Self type when declared inside an `impl` block.
    pub self_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// `pub` without a restriction — visible outside the crate.
    pub is_pub: bool,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// 0-based body line range (header line through closing brace),
    /// empty for bodyless trait declarations.
    pub body_start: usize,
    /// Exclusive end of the body range.
    pub body_end: usize,
}

/// A file's parsed items plus the line → innermost-function map.
#[derive(Debug, Clone, Default)]
pub struct ItemMap {
    /// Every function item, in source order.
    pub fns: Vec<FnItem>,
    /// For each line, the index into `fns` of the innermost function
    /// whose body contains it.
    pub owner: Vec<Option<usize>>,
}

/// Tokens that may precede `fn` in a declaration header.
fn is_fn_prefix_token(tok: &str) -> bool {
    tok.starts_with("pub")
        || matches!(
            tok,
            "const" | "async" | "unsafe" | "extern" | "default" | "\"\""
        )
}

/// Extracts the self type from an `impl` header line: the last path
/// segment of the implemented type, generics stripped.
fn impl_self_type(code: &str) -> Option<String> {
    let after = code.trim_start().strip_prefix("impl")?;
    if after.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
        return None; // an identifier like `implement`
    }
    // Skip the generic parameter list of the impl itself.
    let mut rest = after;
    if rest.starts_with('<') {
        let mut depth = 0usize;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[cut..];
    }
    // `impl Trait for Type` — the self type is after the last ` for `.
    let target = match rest.find(" for ") {
        Some(pos) => &rest[pos + 5..],
        None => rest,
    };
    let target = target.trim_start().trim_start_matches('&');
    let name: String = target
        .chars()
        .skip_while(|c| *c == '\'' || c.is_whitespace())
        .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == ':')
        .collect();
    let last = name.rsplit("::").next().unwrap_or(&name).to_string();
    (!last.is_empty()).then_some(last)
}

/// Finds a `fn` header on `code`: returns (name, is_pub) when the line
/// declares a function (only visibility/qualifier tokens before `fn`).
fn fn_header(code: &str) -> Option<(String, bool)> {
    let at = crate::lexer::find_word(code, "fn")?;
    let prefix = code[..at].trim();
    if !prefix.is_empty() && !prefix.split_whitespace().all(is_fn_prefix_token) {
        return None;
    }
    let name: String = code[at + 2..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let is_pub = prefix.split_whitespace().any(|t| t == "pub");
    Some((name, is_pub))
}

/// Parses every function item in a lexed file.
pub fn parse_items(lines: &[Line], in_test: &[bool]) -> ItemMap {
    let mut map = ItemMap {
        fns: Vec::new(),
        owner: vec![None; lines.len()],
    };
    // (depth the block opened at, self type) for open impl blocks, and
    // (fn index, depth just inside its body) for open fn bodies.
    let mut impls: Vec<(i64, String)> = Vec::new();
    let mut open_fns: Vec<(usize, i64)> = Vec::new();
    let mut depth: i64 = 0;

    let mut i = 0;
    let mut col = 0usize; // byte offset to resume scanning at on line i
    while i < lines.len() {
        let code = lines[i].code.as_str();
        if col == 0 {
            if let Some(ty) = impl_self_type(code) {
                impls.push((depth, ty));
            }
            if let Some((name, is_pub)) = fn_header(code) {
                // Locate the body-opening `{` (or `;` for a bodyless
                // trait declaration): (line, byte position).
                let mut paren = 0i64;
                let mut open_at = None;
                'sig: for (j, l) in lines.iter().enumerate().skip(i).take(30) {
                    for (pos, c) in l.code.char_indices() {
                        match c {
                            '(' | '[' => paren += 1,
                            ')' | ']' => paren -= 1,
                            '{' if paren == 0 => {
                                open_at = Some((j, pos));
                                break 'sig;
                            }
                            ';' if paren == 0 => break 'sig,
                            _ => {}
                        }
                    }
                }
                let self_type = impls.last().map(|(_, t)| t.clone());
                let qualified = match &self_type {
                    Some(t) => format!("{t}::{name}"),
                    None => name.clone(),
                };
                let idx = map.fns.len();
                map.fns.push(FnItem {
                    name,
                    qualified,
                    self_type,
                    line: i,
                    is_pub,
                    in_test: in_test.get(i).copied().unwrap_or(false),
                    body_start: i,
                    body_end: i + 1, // grown when the body closes
                });
                if let Some((open_line, pos)) = open_at {
                    // Signature lines belong to the new fn; the body
                    // brace raises the depth the fn stays open at.
                    for o in map.owner.iter_mut().take(open_line + 1).skip(i) {
                        *o = Some(idx);
                    }
                    depth += 1;
                    open_fns.push((idx, depth));
                    i = open_line;
                    col = pos + 1;
                    continue;
                }
                // Bodyless declaration: header-only item; fall through
                // so enclosing-block tracking still sees this line.
            }
        }
        if map.owner[i].is_none() {
            if let Some(&(fn_idx, _)) = open_fns.last() {
                map.owner[i] = Some(fn_idx);
            }
        }
        for c in code[col.min(code.len())..].chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    while let Some(&(fn_idx, d)) = open_fns.last() {
                        if depth < d {
                            map.fns[fn_idx].body_end = i + 1;
                            open_fns.pop();
                        } else {
                            break;
                        }
                    }
                    while impls.last().is_some_and(|&(d, _)| depth <= d) {
                        impls.pop();
                    }
                }
                _ => {}
            }
        }
        i += 1;
        col = 0;
    }
    // Close anything left open at EOF.
    while let Some((fn_idx, _)) = open_fns.pop() {
        map.fns[fn_idx].body_end = lines.len();
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{split_lines, test_mask};

    fn parse(src: &str) -> ItemMap {
        let lines = split_lines(src);
        let mask = test_mask(&lines);
        parse_items(&lines, &mask)
    }

    #[test]
    fn free_and_method_items_with_visibility() {
        let src = "\
pub fn alpha() -> u32 { 1 }
fn beta() {}
struct S;
impl S {
    pub fn gamma(&self) { beta(); }
    pub(crate) fn delta() {}
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
";
        let map = parse(src);
        let names: Vec<(&str, &str, bool)> = map
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.qualified.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("alpha", "alpha", true),
                ("beta", "beta", false),
                ("gamma", "S::gamma", true),
                ("delta", "S::delta", false), // pub(crate) is not pub
                ("fmt", "S::fmt", false),
            ]
        );
        assert_eq!(map.fns[2].self_type.as_deref(), Some("S"));
        assert_eq!(map.fns[4].self_type.as_deref(), Some("S"));
    }

    #[test]
    fn bodies_and_line_ownership_track_nesting() {
        let src = "\
pub fn outer() {
    let x = 1;
    fn inner() {
        let y = 2;
    }
    let z = 3;
}
";
        let map = parse(src);
        assert_eq!(map.fns.len(), 2);
        let outer = &map.fns[0];
        let inner = &map.fns[1];
        assert_eq!((outer.body_start, outer.body_end), (0, 7));
        assert_eq!((inner.body_start, inner.body_end), (2, 5));
        assert_eq!(map.owner[1], Some(0)); // `let x` → outer
        assert_eq!(map.owner[3], Some(1)); // `let y` → inner
        assert_eq!(map.owner[5], Some(0)); // `let z` → outer
    }

    #[test]
    fn multiline_signatures_and_test_items() {
        let src = "\
pub fn long(
    a: usize,
    b: usize,
) -> usize {
    a + b
}
#[cfg(test)]
mod tests {
    fn helper() { let _ = 1; }
}
";
        let map = parse(src);
        assert_eq!(map.fns.len(), 2);
        assert_eq!((map.fns[0].body_start, map.fns[0].body_end), (0, 6));
        assert_eq!(map.owner[4], Some(0));
        assert!(map.fns[1].in_test);
        assert!(!map.fns[0].in_test);
    }

    #[test]
    fn trait_declarations_without_bodies_are_header_only() {
        let src = "\
trait T {
    fn required(&self) -> usize;
    fn provided(&self) -> usize { 1 }
}
";
        let map = parse(src);
        assert_eq!(map.fns.len(), 2);
        assert_eq!(map.fns[0].body_end, map.fns[0].body_start + 1);
        assert_eq!((map.fns[1].body_start, map.fns[1].body_end), (2, 3));
    }

    #[test]
    fn impl_headers_resolve_generics_and_trait_impls() {
        assert_eq!(
            impl_self_type("impl<T: Clone> Foo<T> {"),
            Some("Foo".into())
        );
        assert_eq!(
            impl_self_type("impl fmt::Display for Rule {"),
            Some("Rule".into())
        );
        assert_eq!(
            impl_self_type("impl SpanScope<'_> {"),
            Some("SpanScope".into())
        );
        assert_eq!(impl_self_type("let implemented = 3;"), None);
    }
}
