//! Baseline files: grandfathered findings that don't fail the run.
//!
//! A baseline is a JSON array of entries; a finding matching an entry's
//! `file` and `rule` (and `line`, when non-null) is reported with
//! [`AllowStatus::Baselined`] instead of failing the run. Baselines are
//! for adopting a new rule over a large surface without a flag day —
//! new code should use allow annotations, which carry a justification
//! and are checked for staleness.

use crate::finding::{AllowStatus, Finding};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One grandfathered site. `line` is `null` to match the whole file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Workspace-relative path, as reported in findings.
    pub file: String,
    /// Rule identifier the entry covers.
    pub rule: String,
    /// Specific line, or `null` for any line in the file.
    pub line: Option<usize>,
}

/// A loaded baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses a baseline from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        Ok(Self {
            entries: serde_json::from_str(text)?,
        })
    }

    /// Loads a baseline file from disk.
    ///
    /// # Errors
    ///
    /// Fails on unreadable files or malformed JSON.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Whether `finding` is grandfathered.
    pub fn covers(&self, finding: &Finding) -> bool {
        self.entries.iter().any(|e| {
            e.file == finding.file
                && e.rule == finding.rule
                && e.line.is_none_or(|l| l == finding.line)
        })
    }

    /// Downgrades active findings covered by the baseline.
    pub fn apply(&self, findings: &mut [Finding]) {
        for f in findings {
            if f.status.is_active() && self.covers(f) {
                f.status = AllowStatus::Baselined;
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &str, line: usize) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule: rule.into(),
            snippet: String::new(),
            message: String::new(),
            status: AllowStatus::Active,
            chain: Vec::new(),
        }
    }

    #[test]
    fn baseline_matches_file_rule_and_optional_line() {
        let base = Baseline::from_json(
            r#"[{"file":"crates/sim/src/engine.rs","rule":"d2","line":null},
                {"file":"crates/plan/src/schedule.rs","rule":"d1","line":203}]"#,
        )
        .unwrap();
        assert_eq!(base.len(), 2);
        assert!(base.covers(&finding("crates/sim/src/engine.rs", "d2", 99)));
        assert!(!base.covers(&finding("crates/sim/src/engine.rs", "d1", 99)));
        assert!(base.covers(&finding("crates/plan/src/schedule.rs", "d1", 203)));
        assert!(!base.covers(&finding("crates/plan/src/schedule.rs", "d1", 204)));
    }

    #[test]
    fn apply_downgrades_covered_findings_only() {
        let base = Baseline::from_json(r#"[{"file":"a.rs","rule":"h1","line":null}]"#).unwrap();
        let mut findings = vec![finding("a.rs", "h1", 3), finding("b.rs", "h1", 3)];
        base.apply(&mut findings);
        assert_eq!(findings[0].status, AllowStatus::Baselined);
        assert!(findings[1].status.is_active());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::from_json("{not json").is_err());
        assert!(Baseline::load(Path::new("/nonexistent/baseline.json")).is_err());
    }
}
