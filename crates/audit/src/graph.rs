//! The conservative intra-workspace call graph.
//!
//! Nodes are the [`FnItem`]s of every scanned file; edges are resolved
//! *by name*, which over-approximates in exactly the direction a
//! reachability rule wants:
//!
//! * a method call `.poll(…)` edges to **every** workspace function
//!   named `poll` (trait dispatch cannot be resolved lexically, so all
//!   candidate implementations are assumed callable);
//! * a path call `Type::poll(…)` edges only to functions of a known
//!   `impl Type` block, falling back to every `poll` when the type is
//!   not a workspace `impl` target;
//! * a bare call `poll(…)` also edges to every function named `poll`.
//!
//! Calls on receivers outside the workspace (`Vec::push`, `.iter()`)
//! resolve to nothing unless a workspace function shares the name —
//! a harmless extra edge. The graph therefore never *misses* a real
//! intra-workspace call edge for non-macro code (over-approximation),
//! while panic-site detection inside function bodies is purely lexical
//! (under-approximating macro-generated panics).

use crate::items::ItemMap;
use crate::lexer::Line;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};

/// How a panic site can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum PanicKind {
    /// `.unwrap()` on Option/Result.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` / `assert…!`.
    Macro,
    /// Slice or array indexing `x[i]`.
    Indexing,
}

impl PanicKind {
    /// Human label used in findings.
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::Macro => "panicking macro",
            PanicKind::Indexing => "indexing",
        }
    }
}

/// One potential panic inside a function body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PanicSite {
    /// 0-based source line.
    pub line: usize,
    /// What kind of panic.
    pub kind: PanicKind,
}

/// A function call reference found in a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallRef {
    /// `name(…)` — a free call.
    Bare(String),
    /// `.name(…)` — a method call.
    Method(String),
    /// `qualifier::name(…)` — a path call.
    Path(String, String),
}

/// One file's contribution to the graph.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Cargo package the file belongs to.
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel: String,
    /// Parsed function items and line ownership.
    pub items: ItemMap,
    /// Per function (indexed like `items.fns`): calls out of its body.
    pub calls: Vec<Vec<CallRef>>,
    /// Per function: potential panic sites in its body.
    pub panics: Vec<Vec<PanicSite>>,
}

const KEYWORDS: [&str; 20] = [
    "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "in", "as", "move",
    "ref", "mut", "impl", "where", "unsafe", "async", "await", "dyn",
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extracts the call references on one line of code.
pub fn calls_on_line(code: &str) -> Vec<CallRef> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        // Read the identifier immediately before the `(`.
        let mut start = i;
        while start > 0 && is_ident_char(bytes[start - 1] as char) {
            start -= 1;
        }
        if start == i {
            continue; // `(` with no preceding identifier
        }
        let name = &code[start..i];
        if name.as_bytes()[0].is_ascii_digit() || KEYWORDS.contains(&name) {
            continue;
        }
        // Classify by what precedes the identifier.
        if start >= 1 && bytes[start - 1] == b'.' {
            out.push(CallRef::Method(name.to_string()));
            continue;
        }
        if start >= 2 && &bytes[start - 2..start] == b"::" {
            let mut qstart = start - 2;
            while qstart > 0 && is_ident_char(bytes[qstart - 1] as char) {
                qstart -= 1;
            }
            let qualifier = &code[qstart..start - 2];
            if !qualifier.is_empty() {
                out.push(CallRef::Path(qualifier.to_string(), name.to_string()));
                continue;
            }
            out.push(CallRef::Bare(name.to_string()));
            continue;
        }
        // Skip the declaration itself (`fn name(`) and macro bangs.
        let before = code[..start].trim_end();
        if before.ends_with("fn") || before.ends_with('!') {
            continue;
        }
        out.push(CallRef::Bare(name.to_string()));
    }
    out
}

/// Panic-family macros (matched with the trailing `!`).
const PANIC_MACROS: [&str; 7] = [
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Detects potential panic sites on one line of code. `debug_assert`
/// family macros are compiled out of release binaries and are not
/// counted.
pub fn panics_on_line(code: &str) -> Vec<PanicKind> {
    let mut out = Vec::new();
    if code.contains(".unwrap()") {
        out.push(PanicKind::Unwrap);
    }
    if code.contains(".expect(") {
        out.push(PanicKind::Expect);
    }
    if PANIC_MACROS
        .iter()
        .any(|m| code.contains(m) && !code.contains(&format!("debug_{m}")))
    {
        out.push(PanicKind::Macro);
    }
    // Indexing: `[` whose preceding character ends a value expression.
    // `&[u8]` (types), `#[attr]`, and slice patterns never match.
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'[' && i > 0 {
            let p = bytes[i - 1] as char;
            if is_ident_char(p) || p == ')' || p == ']' {
                // Attribute lines are never value indexing.
                if !code.trim_start().starts_with("#[") {
                    out.push(PanicKind::Indexing);
                    break;
                }
            }
        }
    }
    out
}

/// Builds one file's [`FileFacts`] from its lexed lines and items.
pub fn file_facts(crate_name: &str, rel: &str, lines: &[Line], items: ItemMap) -> FileFacts {
    let mut calls = vec![Vec::new(); items.fns.len()];
    let mut panics = vec![Vec::new(); items.fns.len()];
    for (i, line) in lines.iter().enumerate() {
        let Some(owner) = items.owner.get(i).copied().flatten() else {
            continue;
        };
        calls[owner].extend(calls_on_line(&line.code));
        for kind in panics_on_line(&line.code) {
            // The declaration line of a fn named like a panic pattern
            // cannot panic; body lines can.
            panics[owner].push(PanicSite { line: i, kind });
        }
    }
    FileFacts {
        crate_name: crate_name.to_string(),
        rel: rel.to_string(),
        items,
        calls,
        panics,
    }
}

/// One node of the workspace graph.
#[derive(Debug, Clone, Serialize)]
pub struct FnNode {
    /// Cargo package.
    pub crate_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
    /// `Type::name` or `name`.
    pub qualified: String,
    /// Externally visible (`pub` without restriction).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Potential panic sites in the body.
    pub panics: Vec<PanicSite>,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct SymbolGraph {
    /// Every function node, in walk order.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[i]` are the callees of node `i` (sorted,
    /// deduplicated).
    pub edges: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qualified: BTreeMap<String, Vec<usize>>,
    impl_types: std::collections::BTreeSet<String>,
}

impl SymbolGraph {
    /// Builds the graph from every file's facts.
    pub fn build(files: &[FileFacts]) -> Self {
        let mut graph = SymbolGraph::default();
        // First pass: nodes and name indexes.
        let mut node_of: Vec<Vec<usize>> = Vec::with_capacity(files.len());
        for file in files {
            let mut ids = Vec::with_capacity(file.items.fns.len());
            for (fi, item) in file.items.fns.iter().enumerate() {
                let id = graph.nodes.len();
                ids.push(id);
                graph.nodes.push(FnNode {
                    crate_name: file.crate_name.clone(),
                    file: file.rel.clone(),
                    line: item.line + 1,
                    qualified: item.qualified.clone(),
                    is_pub: item.is_pub,
                    in_test: item.in_test,
                    panics: file.panics[fi].clone(),
                });
                graph.by_name.entry(item.name.clone()).or_default().push(id);
                graph
                    .by_qualified
                    .entry(item.qualified.clone())
                    .or_default()
                    .push(id);
                if let Some(t) = &item.self_type {
                    graph.impl_types.insert(t.clone());
                }
            }
            node_of.push(ids);
        }
        // Second pass: resolve call references to edges.
        graph.edges = vec![Vec::new(); graph.nodes.len()];
        for (file_idx, file) in files.iter().enumerate() {
            for (fi, refs) in file.calls.iter().enumerate() {
                let from = node_of[file_idx][fi];
                for call in refs {
                    for to in graph.resolve(call) {
                        if to != from {
                            graph.edges[from].push(to);
                        }
                    }
                }
            }
        }
        for adj in &mut graph.edges {
            adj.sort_unstable();
            adj.dedup();
        }
        graph
    }

    /// Candidate callees for one call reference.
    pub fn resolve(&self, call: &CallRef) -> Vec<usize> {
        match call {
            CallRef::Bare(name) | CallRef::Method(name) => {
                self.by_name.get(name).cloned().unwrap_or_default()
            }
            CallRef::Path(qualifier, name) => {
                if self.impl_types.contains(qualifier) {
                    self.by_qualified
                        .get(&format!("{qualifier}::{name}"))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    self.by_name.get(name).cloned().unwrap_or_default()
                }
            }
        }
    }

    /// BFS from `roots`: returns, for each node, the predecessor on a
    /// shortest path from some root (roots point to themselves).
    /// Unreachable nodes map to `None`. Cycle-safe.
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if parent[m].is_none() {
                    parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// The shortest root-to-node chain recorded by
    /// [`SymbolGraph::reachable_from`], rendered as
    /// `crate::Type::fn (file:line)` steps.
    pub fn chain_to(&self, parent: &[Option<usize>], node: usize) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = node;
        loop {
            rev.push(cur);
            match parent[cur] {
                Some(p) if p != cur => cur = p,
                _ => break,
            }
        }
        rev.reverse();
        rev.iter()
            .map(|&n| {
                let node = &self.nodes[n];
                format!(
                    "{}::{} ({}:{})",
                    node.crate_name, node.qualified, node.file, node.line
                )
            })
            .collect()
    }

    /// Serializes the graph as pretty JSON for `--emit-graph`.
    pub fn to_json(&self) -> String {
        // The vendored serde derive cannot handle borrowed generic
        // wrappers, so the export struct owns its data.
        #[derive(Serialize)]
        struct Export {
            nodes: Vec<FnNode>,
            edges: Vec<Vec<usize>>,
        }
        serde_json::to_string_pretty(&Export {
            nodes: self.nodes.clone(),
            edges: self.edges.clone(),
        })
        .expect("graph is serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::{split_lines, test_mask};

    fn facts(crate_name: &str, rel: &str, src: &str) -> FileFacts {
        let lines = split_lines(src);
        let mask = test_mask(&lines);
        let items = parse_items(&lines, &mask);
        file_facts(crate_name, rel, &lines, items)
    }

    #[test]
    fn call_extraction_classifies_bare_method_and_path() {
        let calls = calls_on_line("let x = helper(a).finish(); Shard::poll(s); f(1)[0];");
        assert!(calls.contains(&CallRef::Bare("helper".into())));
        assert!(calls.contains(&CallRef::Method("finish".into())));
        assert!(calls.contains(&CallRef::Path("Shard".into(), "poll".into())));
        assert!(calls.contains(&CallRef::Bare("f".into())));
        // Declarations, keywords, and macros are not calls.
        assert!(calls_on_line("pub fn helper(a: usize) {").is_empty());
        assert!(calls_on_line("if (a) { panic!(\"\") }").is_empty());
    }

    #[test]
    fn panic_sites_cover_all_kinds_without_type_noise() {
        assert_eq!(panics_on_line("x.unwrap();"), vec![PanicKind::Unwrap]);
        assert_eq!(panics_on_line("x.expect(\"m\");"), vec![PanicKind::Expect]);
        assert_eq!(panics_on_line("panic!(\"m\");"), vec![PanicKind::Macro]);
        assert_eq!(panics_on_line("let y = xs[i];"), vec![PanicKind::Indexing]);
        assert!(panics_on_line("fn f(x: &[u8]) -> [u8; 4] {").is_empty());
        assert!(panics_on_line("#[derive(Debug)]").is_empty());
        assert!(panics_on_line("debug_assert!(ok);").is_empty());
        assert!(panics_on_line("x.unwrap_or(0);").is_empty());
    }

    #[test]
    fn cross_crate_edges_resolve_and_cycles_terminate() {
        let a = facts(
            "crate-a",
            "a/src/lib.rs",
            "pub fn entry() { step(); }\nfn step() { entry(); other_poll(); }\n",
        );
        let b = facts(
            "crate-b",
            "b/src/lib.rs",
            "pub fn other_poll() { danger(); }\nfn danger() { xs[0].unwrap(); }\n",
        );
        let graph = SymbolGraph::build(&[a, b]);
        let entry = graph
            .nodes
            .iter()
            .position(|n| n.qualified == "entry")
            .unwrap();
        let parent = graph.reachable_from(&[entry]);
        let danger = graph
            .nodes
            .iter()
            .position(|n| n.qualified == "danger")
            .unwrap();
        // entry → step → other_poll (cross-crate) → danger, despite the
        // entry↔step cycle.
        assert!(parent[danger].is_some());
        let chain = graph.chain_to(&parent, danger);
        assert_eq!(chain.len(), 4);
        assert!(chain[0].starts_with("crate-a::entry"));
        assert!(chain[3].starts_with("crate-b::danger (b/src/lib.rs:2)"));
        assert_eq!(
            graph.nodes[danger].panics,
            vec![
                PanicSite {
                    line: 1,
                    kind: PanicKind::Unwrap
                },
                PanicSite {
                    line: 1,
                    kind: PanicKind::Indexing
                }
            ]
        );
    }

    #[test]
    fn trait_method_calls_edge_to_every_same_named_impl() {
        let src = "\
struct A;
struct B;
impl A {
    fn poll(&self) {}
}
impl B {
    fn poll(&self) {
        data[0];
    }
}
pub fn drive(x: &dyn Probe) {
    x.poll();
}
";
        let graph = SymbolGraph::build(&[facts("c", "c/src/lib.rs", src)]);
        let drive = graph
            .nodes
            .iter()
            .position(|n| n.qualified == "drive")
            .unwrap();
        // Conservatism: the method call resolves to both impls.
        let callees: Vec<&str> = graph.edges[drive]
            .iter()
            .map(|&n| graph.nodes[n].qualified.as_str())
            .collect();
        assert_eq!(callees, vec!["A::poll", "B::poll"]);
        // Path calls pin to the impl when the type is known.
        let pinned = graph.resolve(&CallRef::Path("B".into(), "poll".into()));
        assert_eq!(pinned.len(), 1);
        assert_eq!(graph.nodes[pinned[0]].qualified, "B::poll");
    }

    #[test]
    fn graph_json_export_carries_nodes_and_edges() {
        let graph = SymbolGraph::build(&[facts(
            "c",
            "c/src/lib.rs",
            "pub fn a() { b(); }\nfn b() {}\n",
        )]);
        let json = graph.to_json();
        assert!(json.contains("\"qualified\": \"a\""));
        assert!(json.contains("\"qualified\": \"b\""));
        assert!(json.contains("\"edges\""));
        // a (node 0) calls b (node 1): the adjacency list shows it.
        assert_eq!(json.matches("\"crate_name\"").count(), 2);
    }
}
