//! Findings: what a rule reports, with its allow/baseline status.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a finding stands after annotation and baseline matching.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllowStatus {
    /// The finding stands: no annotation or baseline covers it.
    Active,
    /// Suppressed by a `// zeiot-audit: allow(<rule>) -- <why>` comment.
    Suppressed {
        /// The annotation's mandatory justification text.
        justification: String,
    },
    /// Grandfathered by an entry in the baseline file.
    Baselined,
}

impl AllowStatus {
    /// Whether the finding still counts against the run.
    pub fn is_active(&self) -> bool {
        matches!(self, AllowStatus::Active)
    }

    /// Short tag used in metric labels and human output.
    pub fn tag(&self) -> &'static str {
        match self {
            AllowStatus::Active => "active",
            AllowStatus::Suppressed { .. } => "suppressed",
            AllowStatus::Baselined => "baselined",
        }
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`d1`…`h2`, `unused-allow`, `malformed-allow`).
    pub rule: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// What the rule objects to.
    pub message: String,
    /// Allow/baseline status.
    pub status: AllowStatus,
    /// For graph rules (p1): the call chain from a public API to the
    /// offending site, outermost first, as `crate::fn (file:line)`
    /// steps. Empty for per-line rules.
    pub chain: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{} {} ({})\n    {}",
            self.rule,
            self.file,
            self.line,
            self.message,
            self.status.tag(),
            self.snippet
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    via {}", self.chain.join("\n     -> "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_serialize_with_structured_fields() {
        let f = Finding {
            file: "crates/sim/src/engine.rs".into(),
            line: 12,
            rule: "d1".into(),
            snippet: "use std::collections::HashMap;".into(),
            message: "hash collection in a deterministic crate".into(),
            status: AllowStatus::Active,
            chain: Vec::new(),
        };
        let json = serde_json::to_string(&f).unwrap();
        for field in [
            "\"file\"",
            "\"line\"",
            "\"rule\"",
            "\"snippet\"",
            "\"status\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let back: Finding = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn chains_render_and_round_trip_without_bloating_flat_findings() {
        let mut f = Finding {
            file: "crates/serve/src/shard.rs".into(),
            line: 40,
            rule: "p1".into(),
            snippet: "let v = xs[i];".into(),
            message: "indexing reachable from public API".into(),
            status: AllowStatus::Active,
            chain: Vec::new(),
        };
        // A chain-less finding renders flat — no `via` trailer.
        assert!(!f.to_string().contains("via"));
        f.chain = vec![
            "zeiot-serve::Server::run (crates/serve/src/server.rs:163)".into(),
            "zeiot-serve::Shard::poll (crates/serve/src/shard.rs:30)".into(),
        ];
        let text = f.to_string();
        assert!(text.contains("via zeiot-serve::Server::run"));
        assert!(text.contains("-> zeiot-serve::Shard::poll"));
        let json = serde_json::to_string(&f).unwrap();
        let back: Finding = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn status_tags_and_activity() {
        assert!(AllowStatus::Active.is_active());
        let s = AllowStatus::Suppressed {
            justification: "bounded".into(),
        };
        assert!(!s.is_active());
        assert_eq!(s.tag(), "suppressed");
        assert_eq!(AllowStatus::Baselined.tag(), "baselined");
    }
}
