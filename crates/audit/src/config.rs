//! Rule identifiers, per-rule actions, and the workspace rule scopes.

use std::fmt;

/// The audit's rule set. `UnusedAllow`/`MalformedAllow` police the
/// annotation mechanism itself so suppressions cannot rot silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash collections (`HashMap`/`HashSet`) in deterministic crates.
    D1,
    /// Wall-clock, thread-identity, OS randomness, or env-dependent
    /// branching outside the CLI layer.
    D2,
    /// Float accumulation over parallel-iterator results without a
    /// documented total-order merge.
    D3,
    /// `unwrap()`/`expect()` in library code of typed-error crates.
    H1,
    /// `pub fn … -> Result` without a `# Errors` doc section.
    H2,
    /// An allow annotation that suppressed nothing.
    UnusedAllow,
    /// An allow annotation with a missing justification or unknown rule.
    MalformedAllow,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 7] = [
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::H1,
    Rule::H2,
    Rule::UnusedAllow,
    Rule::MalformedAllow,
];

impl Rule {
    /// The identifier used in annotations, CLI flags, and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::D3 => "d3",
            Rule::H1 => "h1",
            Rule::H2 => "h2",
            Rule::UnusedAllow => "unused-allow",
            Rule::MalformedAllow => "malformed-allow",
        }
    }

    /// Parses a rule identifier.
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// What the run does with an active finding of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Action {
    /// Fail the run (non-zero exit).
    #[default]
    Deny,
    /// Report without failing.
    Warn,
    /// Skip the rule entirely.
    Off,
}

/// Which layer of a crate a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Library code — the full rule set applies.
    Lib,
    /// CLI layer (`src/bin/*`, `main.rs`) — exempt from D2 and H1:
    /// binaries may read the environment and fail loudly.
    Bin,
}

/// Rule scopes and actions for one audit run.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Crates whose results must be byte-identical across thread counts
    /// and machines; D1 and D3 apply to their library *and* bin code.
    pub deterministic_crates: Vec<String>,
    /// Crates whose library code routes failures through typed errors;
    /// H1 forbids `unwrap()`/`expect()` there.
    pub typed_error_crates: Vec<String>,
    /// Crates whose `pub fn … -> Result` APIs must document `# Errors`.
    pub errors_doc_crates: Vec<String>,
    /// Per-rule action, indexed by [`ALL_RULES`] order.
    actions: [Action; ALL_RULES.len()],
}

impl Default for AuditConfig {
    fn default() -> Self {
        let dets = [
            "zeiot-core",
            "zeiot-sim",
            "zeiot-microdeep",
            "zeiot-fault",
            "zeiot-serve",
            "zeiot-plan",
            "zeiot-obs",
            "zeiot-bench",
        ];
        Self {
            deterministic_crates: dets.iter().map(|s| s.to_string()).collect(),
            typed_error_crates: vec!["zeiot-serve".into(), "zeiot-fault".into()],
            errors_doc_crates: vec!["zeiot-serve".into(), "zeiot-fault".into()],
            actions: [Action::Deny; ALL_RULES.len()],
        }
    }
}

impl AuditConfig {
    /// The action configured for `rule`.
    pub fn action(&self, rule: Rule) -> Action {
        self.actions[ALL_RULES
            .iter()
            .position(|&r| r == rule)
            .expect("rule in ALL_RULES")]
    }

    /// Sets the action for `rule`.
    pub fn set_action(&mut self, rule: Rule, action: Action) {
        self.actions[ALL_RULES
            .iter()
            .position(|&r| r == rule)
            .expect("rule in ALL_RULES")] = action;
    }

    /// Sets every rule's action.
    pub fn set_all(&mut self, action: Action) {
        self.actions = [action; ALL_RULES.len()];
    }

    /// Whether `crate_name` is in the deterministic (D1/D3) scope.
    pub fn is_deterministic(&self, crate_name: &str) -> bool {
        self.deterministic_crates.iter().any(|c| c == crate_name)
    }

    /// Whether H1 applies to `crate_name`.
    pub fn is_typed_error(&self, crate_name: &str) -> bool {
        self.typed_error_crates.iter().any(|c| c == crate_name)
    }

    /// Whether H2 applies to `crate_name`.
    pub fn wants_errors_doc(&self, crate_name: &str) -> bool {
        self.errors_doc_crates.iter().any(|c| c == crate_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::parse(rule.id()), Some(rule));
        }
        assert_eq!(Rule::parse("d9"), None);
    }

    #[test]
    fn default_config_scopes_match_the_determinism_contract() {
        let cfg = AuditConfig::default();
        assert!(cfg.is_deterministic("zeiot-sim"));
        assert!(!cfg.is_deterministic("zeiot-rf"));
        assert!(cfg.is_typed_error("zeiot-serve"));
        assert!(!cfg.is_typed_error("zeiot-nn"));
        assert_eq!(cfg.action(Rule::D1), Action::Deny);
    }

    #[test]
    fn actions_are_per_rule() {
        let mut cfg = AuditConfig::default();
        cfg.set_action(Rule::D3, Action::Warn);
        assert_eq!(cfg.action(Rule::D3), Action::Warn);
        assert_eq!(cfg.action(Rule::D2), Action::Deny);
        cfg.set_all(Action::Off);
        assert_eq!(cfg.action(Rule::H2), Action::Off);
    }
}
