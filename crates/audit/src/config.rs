//! Rule identifiers, per-rule actions, and the workspace rule scopes.

use std::fmt;

/// The audit's rule set. `UnusedAllow`/`MalformedAllow` police the
/// annotation mechanism itself so suppressions cannot rot silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash collections (`HashMap`/`HashSet`) in deterministic crates.
    D1,
    /// Wall-clock, thread-identity, OS randomness, or env-dependent
    /// branching outside the CLI layer.
    D2,
    /// Float accumulation over parallel-iterator results without a
    /// documented total-order merge.
    D3,
    /// RNG discipline: fresh or literal-seeded `SeedRng` construction
    /// in library code of deterministic crates, outside the blessed
    /// root crates — derived streams (`for_point`, `with_stream` from a
    /// passed seed, `split`, `splitmix64`) are the only sanctioned way
    /// to mint randomness mid-stack.
    D4,
    /// `unwrap()`/`expect()` in library code of typed-error crates.
    H1,
    /// `pub fn … -> Result` without a `# Errors` doc section.
    H2,
    /// Panic reachability: a potential panic site (unwrap/expect/
    /// panicking macro/indexing) transitively reachable from a public
    /// API of a typed-error crate, reported with the call chain.
    P1,
    /// Observability-name registry: every metric/span name flowing into
    /// recorder/tracer APIs must be declared in `zeiot-obs::registry`,
    /// and every declared name must be emitted somewhere.
    O1,
    /// An allow annotation that suppressed nothing.
    UnusedAllow,
    /// An allow annotation with a missing justification or unknown rule.
    MalformedAllow,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 10] = [
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::D4,
    Rule::H1,
    Rule::H2,
    Rule::P1,
    Rule::O1,
    Rule::UnusedAllow,
    Rule::MalformedAllow,
];

impl Rule {
    /// The identifier used in annotations, CLI flags, and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::D3 => "d3",
            Rule::D4 => "d4",
            Rule::H1 => "h1",
            Rule::H2 => "h2",
            Rule::P1 => "p1",
            Rule::O1 => "o1",
            Rule::UnusedAllow => "unused-allow",
            Rule::MalformedAllow => "malformed-allow",
        }
    }

    /// Parses a rule identifier.
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// What the run does with an active finding of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Action {
    /// Fail the run (non-zero exit).
    #[default]
    Deny,
    /// Report without failing.
    Warn,
    /// Skip the rule entirely.
    Off,
}

/// Which layer of a crate a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Library code — the full rule set applies.
    Lib,
    /// CLI layer (`src/bin/*`, `main.rs`) — exempt from D2 and H1:
    /// binaries may read the environment and fail loudly.
    Bin,
}

/// Rule scopes and actions for one audit run.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Crates whose results must be byte-identical across thread counts
    /// and machines; D1 and D3 apply to their library *and* bin code.
    pub deterministic_crates: Vec<String>,
    /// Crates whose library code routes failures through typed errors;
    /// H1 forbids `unwrap()`/`expect()` there.
    pub typed_error_crates: Vec<String>,
    /// Crates whose `pub fn … -> Result` APIs must document `# Errors`.
    pub errors_doc_crates: Vec<String>,
    /// Crates whose panic sites P1 *reports* when reachable. The call
    /// graph still traverses every crate; limiting the reporting scope
    /// keeps the rule's findings on the serving/fault/re-placement
    /// surface the paper's claims ride on (nn kernel indexing is
    /// shape-checked at the model boundary — a documented
    /// under-approximation, see DESIGN.md §7b).
    pub panic_scope_crates: Vec<String>,
    /// Crates allowed to construct fresh root RNGs (`SeedRng::new`)
    /// in library code: the experiment harness mints master seeds;
    /// everything downstream must derive.
    pub rng_root_crates: Vec<String>,
    /// Per-rule action, indexed by [`ALL_RULES`] order.
    actions: [Action; ALL_RULES.len()],
}

impl Default for AuditConfig {
    fn default() -> Self {
        let dets = [
            "zeiot-core",
            "zeiot-sim",
            "zeiot-microdeep",
            "zeiot-fault",
            "zeiot-serve",
            "zeiot-plan",
            "zeiot-obs",
            "zeiot-bench",
        ];
        Self {
            deterministic_crates: dets.iter().map(|s| s.to_string()).collect(),
            typed_error_crates: vec!["zeiot-serve".into(), "zeiot-fault".into()],
            errors_doc_crates: vec!["zeiot-serve".into(), "zeiot-fault".into()],
            panic_scope_crates: vec![
                "zeiot-serve".into(),
                "zeiot-fault".into(),
                "zeiot-microdeep".into(),
            ],
            rng_root_crates: vec!["zeiot-bench".into()],
            actions: [Action::Deny; ALL_RULES.len()],
        }
    }
}

impl AuditConfig {
    /// The action configured for `rule`.
    pub fn action(&self, rule: Rule) -> Action {
        self.actions[ALL_RULES
            .iter()
            .position(|&r| r == rule)
            .expect("rule in ALL_RULES")]
    }

    /// Sets the action for `rule`.
    pub fn set_action(&mut self, rule: Rule, action: Action) {
        self.actions[ALL_RULES
            .iter()
            .position(|&r| r == rule)
            .expect("rule in ALL_RULES")] = action;
    }

    /// Sets every rule's action.
    pub fn set_all(&mut self, action: Action) {
        self.actions = [action; ALL_RULES.len()];
    }

    /// Whether `crate_name` is in the deterministic (D1/D3) scope.
    pub fn is_deterministic(&self, crate_name: &str) -> bool {
        self.deterministic_crates.iter().any(|c| c == crate_name)
    }

    /// Whether H1 applies to `crate_name`.
    pub fn is_typed_error(&self, crate_name: &str) -> bool {
        self.typed_error_crates.iter().any(|c| c == crate_name)
    }

    /// Whether H2 applies to `crate_name`.
    pub fn wants_errors_doc(&self, crate_name: &str) -> bool {
        self.errors_doc_crates.iter().any(|c| c == crate_name)
    }

    /// Whether P1 reports reachable panic sites inside `crate_name`.
    pub fn in_panic_scope(&self, crate_name: &str) -> bool {
        self.panic_scope_crates.iter().any(|c| c == crate_name)
    }

    /// Whether `crate_name` may construct fresh root RNGs (D4).
    pub fn is_rng_root(&self, crate_name: &str) -> bool {
        self.rng_root_crates.iter().any(|c| c == crate_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::parse(rule.id()), Some(rule));
        }
        assert_eq!(Rule::parse("d9"), None);
    }

    #[test]
    fn default_config_scopes_match_the_determinism_contract() {
        let cfg = AuditConfig::default();
        assert!(cfg.is_deterministic("zeiot-sim"));
        assert!(!cfg.is_deterministic("zeiot-rf"));
        assert!(cfg.is_typed_error("zeiot-serve"));
        assert!(!cfg.is_typed_error("zeiot-nn"));
        assert_eq!(cfg.action(Rule::D1), Action::Deny);
    }

    #[test]
    fn actions_are_per_rule() {
        let mut cfg = AuditConfig::default();
        cfg.set_action(Rule::D3, Action::Warn);
        assert_eq!(cfg.action(Rule::D3), Action::Warn);
        assert_eq!(cfg.action(Rule::D2), Action::Deny);
        cfg.set_all(Action::Off);
        assert_eq!(cfg.action(Rule::H2), Action::Off);
    }
}
