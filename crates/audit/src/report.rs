//! Structured output: findings as JSONL through the `zeiot-obs` layer.
//!
//! The dump has two sections in one stream, both one JSON object per
//! line:
//!
//! 1. every [`Finding`] (file, line, rule, snippet, message,
//!    allow-status), in walk order;
//! 2. the audit's own metrics — `audit.findings.<status>` counters
//!    labeled per rule, an `audit.files_scanned` counter, and one
//!    `Trace` record per *active* finding — rendered through
//!    [`zeiot_obs::jsonl`], so audit dumps splice into the same
//!    tooling as every other workspace metrics stream.

use crate::finding::{AllowStatus, Finding};
use zeiot_core::time::SimTime;
use zeiot_obs::{Label, Recorder, Severity};

/// Summary of one audit run.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Every finding, suppressed and baselined included, in walk order.
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// Findings that still count against the run.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.status.is_active())
    }

    /// Records the run into a fresh obs [`Recorder`].
    pub fn recorder(&self) -> Recorder {
        let mut rec = Recorder::new();
        rec.add(
            "audit.files_scanned",
            Label::Global,
            self.files_scanned as u64,
        );
        for f in &self.findings {
            let metric = format!("audit.findings.{}", f.status.tag());
            rec.add(&metric, Label::part(f.rule.clone()), 1);
            if f.status.is_active() {
                rec.trace(
                    SimTime::ZERO,
                    Severity::Error,
                    Label::part(f.file.clone()),
                    format!("[{}] line {}: {}", f.rule, f.line, f.message),
                );
            }
        }
        rec
    }

    /// Serializes the run as JSON Lines (findings, then obs records).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&serde_json::to_string(f).expect("findings are serializable"));
            out.push('\n');
        }
        out.push_str(&zeiot_obs::jsonl::to_jsonl(&self.recorder().snapshot()));
        out
    }

    /// Counts of (active, suppressed, baselined) findings.
    pub fn tallies(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for f in &self.findings {
            match f.status {
                AllowStatus::Active => t.0 += 1,
                AllowStatus::Suppressed { .. } => t.1 += 1,
                AllowStatus::Baselined => t.2 += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AuditReport {
        AuditReport {
            findings: vec![
                Finding {
                    file: "crates/sim/src/engine.rs".into(),
                    line: 3,
                    rule: "d1".into(),
                    snippet: "use std::collections::HashMap;".into(),
                    message: "hash collection".into(),
                    status: AllowStatus::Active,
                    chain: Vec::new(),
                },
                Finding {
                    file: "crates/obs/src/span.rs".into(),
                    line: 9,
                    rule: "d2".into(),
                    snippet: "Instant::now()".into(),
                    message: "wall clock".into(),
                    status: AllowStatus::Suppressed {
                        justification: "profiling only".into(),
                    },
                    chain: Vec::new(),
                },
            ],
            files_scanned: 2,
        }
    }

    #[test]
    fn jsonl_carries_findings_then_obs_records() {
        let text = report().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"rule\"") && lines[0].contains("d1"));
        assert!(lines[1].contains("Suppressed"));
        // Obs section: counters and the trace for the active finding.
        assert!(text.contains("audit.findings.active"));
        assert!(text.contains("audit.findings.suppressed"));
        assert!(text.contains("audit.files_scanned"));
        assert!(text.contains("\"Trace\""));
        // Both sections re-parse: findings via serde, the obs tail via
        // the obs reader.
        for line in &lines[..2] {
            assert!(serde_json::from_str::<Finding>(line).is_ok());
        }
        let obs_tail: String = lines[2..].join("\n");
        assert!(zeiot_obs::from_jsonl(&obs_tail).is_ok());
    }

    #[test]
    fn tallies_split_by_status() {
        assert_eq!(report().tallies(), (1, 1, 0));
        assert_eq!(report().active().count(), 1);
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(report().to_jsonl(), report().to_jsonl());
    }
}
