//! The `zeiot-audit` CLI: audit the workspace, print findings, exit
//! non-zero when a denied rule fires.
//!
//! ```text
//! cargo run -p zeiot-audit -- --deny all
//! cargo run -p zeiot-audit -- --warn d3,h2 --jsonl audit.jsonl
//! cargo run -p zeiot-audit -- --emit-graph graph.json
//! ```
//!
//! An `audit-baseline.json` at the workspace root is loaded
//! automatically (pass `--no-baseline` to audit without it, or
//! `--baseline PATH` for a different file).

use std::path::PathBuf;
use std::process::ExitCode;
use zeiot_audit::{audit_workspace_full, Action, AuditConfig, Baseline, Rule, ALL_RULES};

const USAGE: &str = "\
zeiot-audit — workspace determinism & hygiene linter

USAGE: zeiot-audit [--deny all|RULES] [--warn all|RULES] [--off RULES]
                   [--baseline PATH] [--no-baseline] [--jsonl PATH]
                   [--emit-graph PATH] [--root PATH] [--quiet]

RULES is a comma-separated list of: d1 d2 d3 d4 h1 h2 p1 o1 unused-allow malformed-allow
Every rule defaults to deny; audit-baseline.json at the workspace root
is applied unless --no-baseline. Exit code: 0 clean, 1 denied findings,
2 usage.";

#[derive(Debug)]
struct Cli {
    config: AuditConfig,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    jsonl: Option<PathBuf>,
    emit_graph: Option<PathBuf>,
    root: Option<PathBuf>,
    quiet: bool,
}

fn apply_rules(config: &mut AuditConfig, spec: &str, action: Action) -> Result<(), String> {
    if spec == "all" {
        config.set_all(action);
        return Ok(());
    }
    for id in spec.split(',').filter(|s| !s.is_empty()) {
        let rule = Rule::parse(id).ok_or_else(|| {
            let valid: Vec<&str> = ALL_RULES.iter().map(|r| r.id()).collect();
            format!("unknown rule `{id}` (valid: {})", valid.join(", "))
        })?;
        config.set_action(rule, action);
    }
    Ok(())
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        config: AuditConfig::default(),
        baseline: None,
        no_baseline: false,
        jsonl: None,
        emit_graph: None,
        root: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--deny" => apply_rules(&mut cli.config, &value("--deny")?, Action::Deny)?,
            "--warn" => apply_rules(&mut cli.config, &value("--warn")?, Action::Warn)?,
            "--off" => apply_rules(&mut cli.config, &value("--off")?, Action::Off)?,
            "--baseline" => cli.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--no-baseline" => cli.no_baseline = true,
            "--jsonl" => cli.jsonl = Some(PathBuf::from(value("--jsonl")?)),
            "--emit-graph" => cli.emit_graph = Some(PathBuf::from(value("--emit-graph")?)),
            "--root" => cli.root = Some(PathBuf::from(value("--root")?)),
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok(cli)
}

/// Walks upward from the current directory to the workspace root (the
/// directory whose `Cargo.toml` declares `[workspace]`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run(cli: &Cli) -> Result<ExitCode, String> {
    let root = match &cli.root {
        Some(r) => r.clone(),
        None => find_root().ok_or("not inside a cargo workspace (pass --root)")?,
    };
    let baseline = match &cli.baseline {
        Some(path) => Some(Baseline::load(path)?),
        None if !cli.no_baseline => {
            // The committed workspace baseline applies by default so
            // `--deny all` means "no *new* debt", not "no debt ever".
            let default_path = root.join("audit-baseline.json");
            if default_path.is_file() {
                Some(Baseline::load(&default_path)?)
            } else {
                None
            }
        }
        None => None,
    };
    let (report, graph) = audit_workspace_full(&root, &cli.config, baseline.as_ref())
        .map_err(|e| format!("audit failed: {e}"))?;

    if let Some(path) = &cli.jsonl {
        std::fs::write(path, report.to_jsonl()).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    if let Some(path) = &cli.emit_graph {
        std::fs::write(path, graph.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
    }

    let mut denied = 0usize;
    let mut warned = 0usize;
    for f in report.active() {
        let rule = Rule::parse(&f.rule).unwrap_or(Rule::MalformedAllow);
        match cli.config.action(rule) {
            Action::Deny => {
                denied += 1;
                println!("error: {f}");
            }
            Action::Warn => {
                warned += 1;
                println!("warning: {f}");
            }
            Action::Off => {}
        }
    }
    let (active, suppressed, baselined) = report.tallies();
    if !cli.quiet {
        println!(
            "audited {} files: {active} active ({denied} denied, {warned} warned), \
             {suppressed} suppressed, {baselined} baselined",
            report.files_scanned
        );
    }
    Ok(if denied > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn deny_warn_off_reconfigure_rules() {
        let cli = parse_cli(&args(&["--warn", "d3,h2", "--off", "d1"])).unwrap();
        assert_eq!(cli.config.action(Rule::D3), Action::Warn);
        assert_eq!(cli.config.action(Rule::H2), Action::Warn);
        assert_eq!(cli.config.action(Rule::D1), Action::Off);
        assert_eq!(cli.config.action(Rule::D2), Action::Deny);
    }

    #[test]
    fn deny_all_is_the_default_and_explicit_form() {
        let default = parse_cli(&[]).unwrap();
        let explicit = parse_cli(&args(&["--deny", "all"])).unwrap();
        for rule in ALL_RULES {
            assert_eq!(default.config.action(rule), Action::Deny);
            assert_eq!(explicit.config.action(rule), Action::Deny);
        }
    }

    #[test]
    fn graph_and_baseline_flags_parse() {
        let cli = parse_cli(&args(&["--emit-graph", "g.json", "--no-baseline"])).unwrap();
        assert_eq!(cli.emit_graph, Some(PathBuf::from("g.json")));
        assert!(cli.no_baseline);
        assert!(parse_cli(&args(&["--deny", "p1,o1,d4"])).is_ok());
    }

    #[test]
    fn unknown_rules_and_flags_list_alternatives() {
        let err = parse_cli(&args(&["--deny", "d9"])).unwrap_err();
        assert!(err.contains("unknown rule") && err.contains("d1"));
        let err = parse_cli(&args(&["--frob"])).unwrap_err();
        assert!(err.contains("unknown flag") && err.contains("--deny"));
    }
}
