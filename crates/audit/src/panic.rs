//! Rule `p1`: panic reachability over the workspace call graph.
//!
//! A typed-error crate promises its callers a `Result`, not an abort —
//! so any `unwrap`/`expect`/panicking-macro/indexing site that a public
//! API of such a crate can reach transitively is a broken promise,
//! even when the site lives in another crate. This pass walks the
//! conservative [`SymbolGraph`] (edges over-approximate real calls,
//! see [`crate::graph`]) from every public, non-test, library-layer
//! function of the typed-error crates and reports each reachable panic
//! site together with the shortest call chain that proves
//! reachability.
//!
//! Reporting is limited to the [`AuditConfig::panic_scope_crates`]:
//! the graph traverses everything, but only sites on the
//! serve/fault/re-placement surface become findings — one per
//! (function, panic kind), anchored at the first site so an
//! `allow(p1)` annotation on that line covers the function's sites of
//! that kind.

use crate::config::{Action, AuditConfig, Layer, Rule};
use crate::graph::{FileFacts, PanicKind, SymbolGraph};
use crate::rules::RawFinding;
use std::collections::VecDeque;

/// All panic kinds, in report order.
const KINDS: [PanicKind; 4] = [
    PanicKind::Unwrap,
    PanicKind::Expect,
    PanicKind::Macro,
    PanicKind::Indexing,
];

/// Scans the built graph for reachable panic sites. `facts` and
/// `layers` are parallel (one entry per scanned file, in graph build
/// order); returns `(file_index, finding)` pairs so the caller can
/// route each finding through its file's annotation pipeline.
pub(crate) fn scan(
    config: &AuditConfig,
    facts: &[FileFacts],
    layers: &[Layer],
    graph: &SymbolGraph,
) -> Vec<(usize, RawFinding)> {
    if config.action(Rule::P1) == Action::Off {
        return Vec::new();
    }
    // Node → file index (nodes were pushed in facts order).
    let mut node_file = Vec::with_capacity(graph.nodes.len());
    for (fi, f) in facts.iter().enumerate() {
        node_file.extend(std::iter::repeat_n(fi, f.items.fns.len()));
    }
    debug_assert_eq!(node_file.len(), graph.nodes.len());

    // Roots: the promise-making surface.
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(id, n)| {
            n.is_pub
                && !n.in_test
                && config.is_typed_error(&n.crate_name)
                && layers[node_file[*id]] == Layer::Lib
        })
        .map(|(id, _)| id)
        .collect();

    // BFS that never routes a chain through test code: a `#[cfg(test)]`
    // helper calling a panicking fn proves nothing about release paths.
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for &r in &roots {
        if parent[r].is_none() {
            parent[r] = Some(r);
            queue.push_back(r);
        }
    }
    while let Some(n) = queue.pop_front() {
        for &m in &graph.edges[n] {
            if parent[m].is_none() && !graph.nodes[m].in_test {
                parent[m] = Some(n);
                queue.push_back(m);
            }
        }
    }

    let mut out = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if parent[id].is_none()
            || node.panics.is_empty()
            || !config.in_panic_scope(&node.crate_name)
            || layers[node_file[id]] != Layer::Lib
        {
            continue;
        }
        let chain = graph.chain_to(&parent, id);
        let root = chain.first().cloned().unwrap_or_default();
        for kind in KINDS {
            let sites: Vec<usize> = node
                .panics
                .iter()
                .filter(|p| p.kind == kind)
                .map(|p| p.line)
                .collect();
            let Some(&first) = sites.first() else {
                continue;
            };
            let mut f = RawFinding::new(
                Rule::P1,
                first,
                format!(
                    "{} site{} ({} in `{}::{}`) reachable from public API {}: \
                     return a typed error, or prove unreachability with an \
                     allow(p1) annotation on this line",
                    kind.label(),
                    if sites.len() == 1 { "" } else { "s" },
                    sites.len(),
                    node.crate_name,
                    node.qualified,
                    root,
                ),
            );
            f.chain = chain.clone();
            out.push((node_file[id], f));
        }
    }
    // Deterministic order: file, then line, then message.
    out.sort_by(|a, b| (a.0, a.1.line, &a.1.message).cmp(&(b.0, b.1.line, &b.1.message)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::file_facts;
    use crate::items::parse_items;
    use crate::lexer::{split_lines, test_mask};

    fn facts(crate_name: &str, rel: &str, src: &str) -> FileFacts {
        let lines = split_lines(src);
        let mask = test_mask(&lines);
        let items = parse_items(&lines, &mask);
        file_facts(crate_name, rel, &lines, items)
    }

    #[test]
    fn reachable_panics_report_with_the_full_chain() {
        // zeiot-serve is typed-error; zeiot-microdeep is in panic scope.
        let serve = facts(
            "zeiot-serve",
            "crates/serve/src/lib.rs",
            "pub fn admit(x: u32) -> Result<(), ()> {\n    replace_poll(x);\n    Ok(())\n}\n",
        );
        let micro = facts(
            "zeiot-microdeep",
            "crates/microdeep/src/replace.rs",
            "pub fn replace_poll(x: u32) {\n    inner(x);\n}\n\
             fn inner(x: u32) {\n    let v = [1, 2][x as usize];\n    let _ = v;\n}\n",
        );
        let all = [serve, micro];
        let graph = SymbolGraph::build(&all);
        let hits = scan(
            &AuditConfig::default(),
            &all,
            &[Layer::Lib, Layer::Lib],
            &graph,
        );
        // `inner` has the only panic site (indexing).
        assert_eq!(hits.len(), 1, "{hits:#?}");
        let (file, f) = &hits[0];
        assert_eq!(*file, 1);
        assert_eq!(f.rule, Rule::P1);
        assert_eq!(f.line, 4); // 0-based: the indexing line
        assert!(f.message.contains("indexing"), "{}", f.message);
        assert!(f.message.contains("zeiot-serve::admit"), "{}", f.message);
        assert_eq!(f.chain.len(), 3, "{:?}", f.chain);
        assert!(f.chain[0].starts_with("zeiot-serve::admit"));
        assert!(f.chain[2].starts_with("zeiot-microdeep::inner"));
    }

    #[test]
    fn unreachable_and_out_of_scope_panics_stay_silent() {
        // Reachable only from a private fn → no root reaches it.
        let private = facts(
            "zeiot-serve",
            "crates/serve/src/lib.rs",
            "fn hidden() {\n    helper();\n}\nfn helper() {\n    x.unwrap();\n}\n",
        );
        let graph = SymbolGraph::build(std::slice::from_ref(&private));
        assert!(scan(
            &AuditConfig::default(),
            std::slice::from_ref(&private),
            &[Layer::Lib],
            &graph
        )
        .is_empty());

        // A reachable panic in a crate outside panic_scope_crates
        // (zeiot-nn is not in scope) is traversed but not reported.
        let serve = facts(
            "zeiot-serve",
            "crates/serve/src/lib.rs",
            "pub fn admit() {\n    kernel();\n}\n",
        );
        let nn = facts(
            "zeiot-nn",
            "crates/nn/src/conv.rs",
            "pub fn kernel() {\n    w[0];\n}\n",
        );
        let all = [serve, nn];
        let graph = SymbolGraph::build(&all);
        assert!(scan(
            &AuditConfig::default(),
            &all,
            &[Layer::Lib, Layer::Lib],
            &graph
        )
        .is_empty());
    }

    #[test]
    fn chains_never_route_through_test_helpers() {
        let src = "\
pub fn entry() -> Result<(), ()> {
    Ok(())
}
#[cfg(test)]
mod tests {
    fn entry() {
        boom();
    }
}
fn boom() {
    panic!(\"no\");
}
";
        let f = facts("zeiot-serve", "crates/serve/src/lib.rs", src);
        let graph = SymbolGraph::build(std::slice::from_ref(&f));
        // The only path to `boom` goes through the test-mod `entry`;
        // the pub `entry` itself calls nothing. No finding.
        let hits = scan(
            &AuditConfig::default(),
            std::slice::from_ref(&f),
            &[Layer::Lib],
            &graph,
        );
        assert!(hits.is_empty(), "{hits:#?}");
    }

    #[test]
    fn one_finding_per_function_and_kind_counts_all_sites() {
        let serve = facts(
            "zeiot-serve",
            "crates/serve/src/lib.rs",
            "pub fn admit(xs: &[u32]) {\n    let a = xs[0];\n    let b = xs[1];\n    \
             let c = xs.first().unwrap();\n    let _ = (a, b, c);\n}\n",
        );
        let graph = SymbolGraph::build(std::slice::from_ref(&serve));
        let hits = scan(
            &AuditConfig::default(),
            std::slice::from_ref(&serve),
            &[Layer::Lib],
            &graph,
        );
        // Two findings: one Indexing (2 sites, anchored at the first),
        // one Unwrap.
        assert_eq!(hits.len(), 2, "{hits:#?}");
        let idx = hits
            .iter()
            .find(|(_, f)| f.message.contains("indexing"))
            .unwrap();
        assert_eq!(idx.1.line, 1);
        assert!(idx.1.message.contains("(2 in"), "{}", idx.1.message);
    }
}
