//! Rule `o1`: the observability-name registry round-trip.
//!
//! Metric and span names are stringly-typed joins: a typo'd emission
//! silently vanishes from every dashboard, report, and SLO that reads
//! the dump. `zeiot-obs::registry` declares the full vocabulary; this
//! pass checks both directions of the contract:
//!
//! * **membership** — every string literal flowing into a
//!   recorder/tracer API must be a registered name (a near-miss gets a
//!   "did you mean" suggestion);
//! * **round-trip** — every registered name must occur as a literal
//!   somewhere in the workspace outside the registry itself, so the
//!   table cannot accumulate dead rows.
//!
//! Extraction is lexical and deliberately one-sided: a *dynamic* name
//! (`format!`, a variable) is skipped — the runtime validation in
//! `zeiot_obs::jsonl::write_jsonl` is the backstop there — while a
//! literal name is always checked. Wildcard registry rows (`bench.*`)
//! license dynamic families and are exempt from the round-trip.

use crate::config::{Action, AuditConfig, Rule};
use crate::lexer::Line;
use crate::rules::{FileScan, RawFinding};
use std::collections::BTreeSet;
use zeiot_obs::registry::{is_registered_metric, is_registered_span, METRICS, SPANS};

/// The registry's own file — excluded from round-trip evidence.
pub(crate) const REGISTRY_REL: &str = "crates/obs/src/registry.rs";

/// Recorder/snapshot methods whose *first* argument is a metric name.
const METRIC_CALLS: [&str; 18] = [
    ".add(",
    ".inc(",
    ".counter(",
    ".counter_value(",
    ".counter_total(",
    ".counter_max(",
    ".counter_mean(",
    ".counters_named(",
    ".set_gauge(",
    ".gauge(",
    ".histogram(",
    ".histogram_ref(",
    ".observe(",
    ".series(",
    ".series_ref(",
    ".series_named(",
    ".series_value_stats(",
    ".sample(",
];

/// Tracer methods carrying a span name at varying argument positions —
/// the name is the only string argument, so "first literal inside the
/// call" finds it.
const SPAN_CALLS: [&str; 2] = [".push_span(", ".begin("];

/// Span constructors whose first argument is the name.
const SPAN_CTORS: [&str; 2] = ["WallSpan::start(", "SimSpan::start("];

/// One name literal flowing into an observability API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Emission {
    /// 0-based line of the call.
    pub(crate) line: usize,
    /// The literal name.
    pub(crate) name: String,
    /// Span name (vs metric name).
    pub(crate) is_span: bool,
}

/// Finds the first string literal inside the call whose `(` sits at
/// byte `open` of line `start`. With `first_arg_only`, any non-literal
/// first argument abandons the call as dynamic. Scans at most 10 lines.
fn literal_in_call(
    lines: &[Line],
    start: usize,
    open: usize,
    first_arg_only: bool,
) -> Option<String> {
    let mut depth = 0i32;
    for (li, line) in lines.iter().enumerate().skip(start).take(10) {
        let code = line.code.as_bytes();
        let mut idx = if li == start { open } else { 0 };
        while idx < code.len() {
            match code[idx] {
                b'"' => {
                    if let Some((_, text)) = line.strings.iter().find(|(o, _)| *o == idx) {
                        if depth >= 1 {
                            return Some(text.clone());
                        }
                    }
                }
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    depth -= 1;
                    if depth <= 0 {
                        return None;
                    }
                }
                c => {
                    if first_arg_only && depth == 1 && !(c as char).is_whitespace() {
                        return None; // dynamic name — runtime validation owns it
                    }
                }
            }
            idx += 1;
        }
    }
    None
}

/// Extracts every literal name emission from one file's lexed lines.
pub(crate) fn emissions(lines: &[Line]) -> Vec<Emission> {
    let mut out = Vec::new();
    let groups: [(&[&str], bool, bool); 3] = [
        (&METRIC_CALLS, false, true),
        (&SPAN_CALLS, true, false),
        (&SPAN_CTORS, true, true),
    ];
    for (i, line) in lines.iter().enumerate() {
        for (pats, is_span, first_only) in groups {
            for pat in pats {
                let mut from = 0;
                while let Some(rel) = line.code[from..].find(pat) {
                    let open = from + rel + pat.len() - 1;
                    if let Some(name) = literal_in_call(lines, i, open, first_only) {
                        out.push(Emission {
                            line: i,
                            name,
                            is_span,
                        });
                    }
                    from = from + rel + pat.len();
                }
            }
        }
    }
    out
}

/// Classic two-row Levenshtein distance, for typo suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Nearest registered name within edit distance 2, for the
/// "did you mean" hint.
fn nearest(name: &str, is_span: bool) -> Option<&'static str> {
    let table: &[&str] = if is_span { SPANS } else { METRICS };
    table
        .iter()
        .copied()
        .filter(|c| !c.ends_with(".*"))
        .map(|c| (edit_distance(name, c), c))
        .filter(|&(d, _)| d <= 2)
        .min()
        .map(|(_, c)| c)
}

/// Membership direction: every non-test literal emission in one file
/// must name a registered metric/span.
pub(crate) fn scan_membership(config: &AuditConfig, scan: &FileScan) -> Vec<RawFinding> {
    if config.action(Rule::O1) == Action::Off {
        return Vec::new();
    }
    let mut out = Vec::new();
    for e in emissions(&scan.lines) {
        if scan.in_test.get(e.line).copied().unwrap_or(false) {
            continue;
        }
        let (registered, kind) = if e.is_span {
            (is_registered_span(&e.name), "span")
        } else {
            (is_registered_metric(&e.name), "metric")
        };
        if registered {
            continue;
        }
        let hint = nearest(&e.name, e.is_span)
            .map(|s| format!("; did you mean \"{s}\"?"))
            .unwrap_or_default();
        out.push(RawFinding::new(
            Rule::O1,
            e.line,
            format!(
                "{kind} name \"{}\" is not declared in zeiot-obs::registry{hint}",
                e.name
            ),
        ));
    }
    out
}

/// Round-trip direction: every concrete registered name must occur as
/// a string literal somewhere in the workspace outside the registry
/// file itself (tests count — a name exercised only by a test is still
/// wired up). Returns `(file_index, finding)` pairs anchored at the
/// registry declaration lines.
pub(crate) fn scan_roundtrip(
    config: &AuditConfig,
    rels: &[&str],
    scans: &[FileScan],
) -> Vec<(usize, RawFinding)> {
    if config.action(Rule::O1) == Action::Off {
        return Vec::new();
    }
    let Some(reg) = rels.iter().position(|r| *r == REGISTRY_REL) else {
        return Vec::new(); // no registry in scope (single-file runs)
    };
    let mut evidence: BTreeSet<&str> = BTreeSet::new();
    for (i, scan) in scans.iter().enumerate() {
        if i == reg {
            continue;
        }
        for line in &scan.lines {
            evidence.extend(line.strings.iter().map(|(_, s)| s.as_str()));
        }
    }
    // Anchor each missing name at its declaration line in the registry.
    let decl_line = |name: &str| {
        scans[reg]
            .lines
            .iter()
            .position(|l| l.strings.iter().any(|(_, s)| s == name))
            .unwrap_or(0)
    };
    let mut out = Vec::new();
    for (table, kind) in [(METRICS, "metric"), (SPANS, "span")] {
        for &name in table {
            if name.ends_with(".*") || evidence.contains(name) {
                continue;
            }
            out.push((
                reg,
                RawFinding::new(
                    Rule::O1,
                    decl_line(name),
                    format!(
                        "registered {kind} name \"{name}\" is never emitted anywhere \
                         in the workspace: delete the registry row or wire up the \
                         emission it promises"
                    ),
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Layer;
    use crate::rules::scan_file;

    fn scan(src: &str) -> FileScan {
        scan_file(&AuditConfig::default(), "zeiot-sim", Layer::Lib, src)
    }

    #[test]
    fn emissions_capture_first_arg_metrics_and_any_arg_spans() {
        let src = "\
fn f(rec: &mut Recorder, tracer: &mut Tracer) {
    rec.add(\"mac.grants\", Label::Global, 1);
    rec.observe(
        \"serve.latency\",
        Label::Global,
        0.5,
    );
    tracer.begin(0, 7, \"serve.request\", SpanLayer::Request, t);
    rec.add(&dynamic_name, Label::Global, 1);
}
";
        let got = emissions(&scan(src).lines);
        let names: Vec<(&str, bool)> = got.iter().map(|e| (e.name.as_str(), e.is_span)).collect();
        assert_eq!(
            names,
            vec![
                ("mac.grants", false),
                ("serve.latency", false),
                ("serve.request", true),
            ],
            "{got:#?}"
        );
    }

    #[test]
    fn membership_flags_typos_with_a_suggestion() {
        let src = "fn f(rec: &mut Recorder) { rec.add(\"mac.grant\", Label::Global, 1); }\n";
        let s = scan(src);
        let hits = scan_membership(&AuditConfig::default(), &s);
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert!(hits[0].message.contains("\"mac.grant\""));
        assert!(
            hits[0].message.contains("did you mean \"mac.grants\""),
            "{}",
            hits[0].message
        );
    }

    #[test]
    fn membership_accepts_registered_and_wildcard_names_and_skips_tests() {
        let src = "\
fn f(rec: &mut Recorder) {
    rec.add(\"mac.grants\", Label::Global, 1);
    rec.add(\"bench.anything_goes\", Label::Global, 1);
}
#[cfg(test)]
mod tests {
    fn g(rec: &mut Recorder) {
        rec.add(\"made.up.for.a.test\", Label::Global, 1);
    }
}
";
        let s = scan(src);
        assert!(scan_membership(&AuditConfig::default(), &s).is_empty());
    }

    #[test]
    fn roundtrip_reports_registered_but_never_emitted_names() {
        // A fake registry file declaring one emitted and one orphaned
        // name; the orphan must be reported at its declaration line.
        let registry = "pub const METRICS: &[&str] = &[\n    \"mac.grants\",\n];\n";
        let user = "fn f(rec: &mut Recorder) { rec.add(\"mac.grants\", Label::Global, 1); }\n";
        let cfg = AuditConfig::default();
        let scans = vec![scan(registry), scan(user)];
        let rels = vec![REGISTRY_REL, "crates/sim/src/lib.rs"];
        let hits = scan_roundtrip(&cfg, &rels, &scans);
        // Every real registry name except mac.grants is unreferenced in
        // this two-file workspace, so the pass flags all of them — and
        // anchors them in the registry file.
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|(file, _)| *file == 0));
        assert!(hits
            .iter()
            .all(|(_, f)| !f.message.contains("\"mac.grants\"")));
        assert!(hits
            .iter()
            .any(|(_, f)| f.message.contains("never emitted")));
        // Wildcard rows are exempt.
        assert!(hits.iter().all(|(_, f)| !f.message.contains(".*\"")));
    }

    #[test]
    fn edit_distance_is_symmetric_and_small_for_typos() {
        assert_eq!(edit_distance("serve.latency", "serve.latency"), 0);
        assert_eq!(edit_distance("serve.latncy", "serve.latency"), 1);
        assert_eq!(edit_distance("a", "abc"), 2);
        assert_eq!(nearest("hop.convv", true), Some("hop.conv"));
        assert_eq!(nearest("completely.unrelated", true), None);
    }
}
