//! The determinism & hygiene rule set and the per-file analysis pass.
//!
//! Rules are pattern searches over lexed *code* (comments and string
//! interiors never fire — see [`crate::lexer`]), scoped per crate and
//! per layer by the [`AuditConfig`]:
//!
//! | rule | scope | pattern |
//! |------|-------|---------|
//! | `d1` | deterministic crates | `HashMap` / `HashSet` (iteration order is seed-dependent) |
//! | `d2` | every crate, library layer | `Instant::now` / `SystemTime` / `thread_rng` / `thread::current` / `env::var` |
//! | `d3` | deterministic crates | `.sum(` / `.reduce(` / `.fold(` within 5 lines of a `par_iter`-family call; integer turbofish sums (`.sum::<i32>()` …) are exempt — integer addition is associative, so reduction order cannot change the result |
//! | `d4` | deterministic crates, library layer | `SeedRng::new(` / `SeedRng::with_stream(` with a literal seed, or any fresh construction outside the blessed RNG-root crates — derived streams (`for_point`, `split`) keep the seed tree rooted at the master seed |
//! | `h1` | typed-error crates, library layer | `.unwrap()` / `.expect(` outside tests |
//! | `h2` | serve/fault | `pub fn … -> Result` without a `# Errors` doc section |
//!
//! Two further rules operate on the whole workspace rather than single
//! lines — `p1` (panic reachability over the [`crate::graph`] call
//! graph) and `o1` (the [observability-name registry] round-trip, see
//! [`crate::obsnames`]) — and feed their hits through the same
//! annotation/baseline pipeline via [`finalize`].
//!
//! [observability-name registry]: ../../obs/src/registry.rs
//!
//! A site that is deliberate carries a trailing or preceding
//! `// zeiot-audit: allow(<rule>) -- <justification>` comment; the
//! justification is mandatory, and annotations that suppress nothing
//! (`unused-allow`) or are malformed (`malformed-allow`) are findings
//! themselves, so suppressions cannot outlive the code they excuse.

use crate::config::{Action, AuditConfig, Layer, Rule};
use crate::finding::{AllowStatus, Finding};
use crate::lexer::{find_word, split_lines, test_mask, Line};

/// One parsed `// zeiot-audit: allow(…)` comment.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 0-based line index of the comment.
    pub line: usize,
    /// The rule named inside `allow(…)`, if it parsed.
    pub rule: Option<Rule>,
    /// Raw text inside `allow(…)`.
    pub rule_text: String,
    /// Justification after `--`, if present and non-empty.
    pub justification: Option<String>,
    /// 0-based line index the annotation covers (the annotated line
    /// itself for trailing comments, the next code line otherwise).
    pub target: Option<usize>,
}

const MARKER: &str = "zeiot-audit:";

/// Extracts allow annotations from lexed lines.
pub fn parse_annotations(lines: &[Line]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // Only a comment that *is* an annotation counts — prose that
        // merely quotes the grammar (like this crate's docs) does not.
        let text = line.comment.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix(MARKER).map(str::trim_start) else {
            continue;
        };
        let (rule_text, tail) = match rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) {
            Some((inner, tail)) => (inner.trim().to_string(), tail),
            None => (String::new(), rest),
        };
        let justification = tail
            .trim_start()
            .strip_prefix("--")
            .map(str::trim)
            .filter(|j| !j.is_empty())
            .map(str::to_string);
        let target = if line.code.trim().is_empty() {
            lines[i + 1..]
                .iter()
                .position(|l| !l.code.trim().is_empty())
                .map(|off| i + 1 + off)
        } else {
            Some(i)
        };
        out.push(Annotation {
            line: i,
            rule: Rule::parse(&rule_text),
            rule_text,
            justification,
            target,
        });
    }
    out
}

/// A rule hit before annotation/baseline matching.
#[derive(Debug, Clone)]
pub(crate) struct RawFinding {
    pub(crate) rule: Rule,
    pub(crate) line: usize, // 0-based
    pub(crate) message: String,
    /// Call chain for graph rules (p1); empty otherwise.
    pub(crate) chain: Vec<String>,
}

impl RawFinding {
    pub(crate) fn new(rule: Rule, line: usize, message: String) -> Self {
        Self {
            rule,
            line,
            message,
            chain: Vec::new(),
        }
    }
}

fn d2_patterns() -> [&'static str; 6] {
    [
        "Instant::now",
        "SystemTime",
        "thread_rng",
        "thread::current",
        "env::var",
        "env::var_os",
    ]
}

/// Patterns whose presence marks a parallel-iterator expression.
const PAR_PATTERNS: [&str; 3] = ["par_iter", "par_chunks", "par_bridge"];
/// Accumulators that are order-sensitive over floats.
const ACC_PATTERNS: [&str; 4] = [".sum(", ".sum::<", ".reduce(", ".fold("];
/// How many lines after a parallel call an accumulator is attributed
/// to it (a statement split across a fluent chain).
const D3_WINDOW: usize = 5;

/// Integer sums whose reduction order is provably irrelevant (integer
/// addition is associative and commutative, and the workspace's
/// quantized kernels rely on exactly that for thread-invariance).
/// These only match when the element type is pinned by turbofish —
/// an unannotated `.sum()` over integers still fires, because the
/// audit cannot see the type.
const D3_EXEMPT_SUMS: [&str; 10] = [
    ".sum::<i8>()",
    ".sum::<i16>()",
    ".sum::<i32>()",
    ".sum::<i64>()",
    ".sum::<u8>()",
    ".sum::<u16>()",
    ".sum::<u32>()",
    ".sum::<u64>()",
    ".sum::<usize>()",
    ".sum::<isize>()",
];

/// Removes the exempt integer-sum calls from a line before the d3
/// accumulator patterns are matched, so a line whose only accumulator
/// is an order-insensitive integer sum does not fire.
fn strip_exempt_integer_sums(code: &str) -> String {
    let mut out = code.to_string();
    for pat in D3_EXEMPT_SUMS {
        out = out.replace(pat, "");
    }
    out
}

/// The `SeedRng` constructors that start a fresh stream from a raw seed
/// (as opposed to deriving one from an existing stream).
const D4_CONSTRUCTORS: [&str; 2] = ["SeedRng::new(", "SeedRng::with_stream("];

/// Whether the first argument after `open` (a byte offset just past the
/// `(`) is an integer literal on the same line.
fn first_arg_is_int_literal(code: &str, open: usize) -> bool {
    code[open..]
        .trim_start()
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit())
}

fn scan_rules(
    config: &AuditConfig,
    crate_name: &str,
    layer: Layer,
    lines: &[Line],
    in_test: &[bool],
) -> Vec<RawFinding> {
    let mut raw = Vec::new();
    let enabled = |rule: Rule| config.action(rule) != Action::Off;

    let d1 = enabled(Rule::D1) && config.is_deterministic(crate_name);
    let d2 = enabled(Rule::D2) && layer == Layer::Lib;
    let d3 = enabled(Rule::D3) && config.is_deterministic(crate_name);
    let d4 = enabled(Rule::D4) && config.is_deterministic(crate_name) && layer == Layer::Lib;
    let h1 = enabled(Rule::H1) && config.is_typed_error(crate_name) && layer == Layer::Lib;

    let mut par_reach = 0usize; // lines remaining in the current D3 window
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] {
            par_reach = par_reach.saturating_sub(1);
            continue;
        }
        let code = line.code.as_str();
        if d1 {
            for word in ["HashMap", "HashSet"] {
                if find_word(code, word).is_some() {
                    raw.push(RawFinding::new(
                        Rule::D1,
                        i,
                        format!(
                            "{word} in deterministic crate {crate_name}: iteration order \
                             is seed-dependent; use BTreeMap/BTreeSet or sorted iteration"
                        ),
                    ));
                }
            }
        }
        if d2 {
            for pat in d2_patterns() {
                if find_word(code, pat).is_some() {
                    raw.push(RawFinding::new(
                        Rule::D2,
                        i,
                        format!(
                            "`{pat}` outside the CLI layer: wall-clock, thread identity, \
                             OS randomness, and env branching break replay determinism"
                        ),
                    ));
                    break; // one D2 finding per line is enough
                }
            }
        }
        if d3 {
            if PAR_PATTERNS.iter().any(|p| code.contains(p)) {
                par_reach = D3_WINDOW;
            }
            let acc_code = strip_exempt_integer_sums(code);
            if par_reach > 0 && ACC_PATTERNS.iter().any(|p| acc_code.contains(p)) {
                raw.push(RawFinding::new(
                    Rule::D3,
                    i,
                    "accumulation over a parallel iterator: float reduction \
                     order must be fixed by a total-order merge"
                        .into(),
                ));
                par_reach = 0; // attribute one accumulator per parallel call
            } else {
                par_reach = par_reach.saturating_sub(1);
            }
        }
        if d4 {
            for ctor in D4_CONSTRUCTORS {
                let Some(at) = code.find(ctor) else { continue };
                let open = at + ctor.len();
                let name = &ctor[..ctor.len() - 1];
                if first_arg_is_int_literal(code, open) {
                    raw.push(RawFinding::new(
                        Rule::D4,
                        i,
                        format!(
                            "`{name}` with a literal seed in library code: hard-coded \
                             seeds shadow the experiment's master seed; derive the \
                             stream via SeedRng::for_point or split()"
                        ),
                    ));
                } else if !config.is_rng_root(crate_name) {
                    raw.push(RawFinding::new(
                        Rule::D4,
                        i,
                        format!(
                            "`{name}` outside an RNG-root crate: fresh streams fork the \
                             seed tree; derive from the caller's SeedRng via for_point \
                             or split() so replay stays a function of one master seed"
                        ),
                    ));
                }
            }
        }
        if h1 {
            for pat in [".unwrap()", ".expect("] {
                if code.contains(pat) {
                    raw.push(RawFinding::new(
                        Rule::H1,
                        i,
                        format!(
                            "`{pat}…` in library code of {crate_name}: route the failure \
                             through the crate's typed errors"
                        ),
                    ));
                }
            }
        }
    }

    if enabled(Rule::H2) && config.wants_errors_doc(crate_name) && layer == Layer::Lib {
        raw.extend(scan_errors_docs(lines, in_test));
    }
    raw
}

/// H2: every non-test `pub fn … -> Result` needs `# Errors` in its docs.
fn scan_errors_docs(lines: &[Line], in_test: &[bool]) -> Vec<RawFinding> {
    let mut raw = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let head = line.code.trim_start();
        let is_pub_fn = [
            "pub fn ",
            "pub const fn ",
            "pub async fn ",
            "pub unsafe fn ",
        ]
        .iter()
        .any(|p| head.starts_with(p));
        if !is_pub_fn {
            continue;
        }
        // Assemble the signature up to its body (or `;` for trait items).
        let mut sig = String::new();
        for l in lines.iter().skip(i).take(25) {
            let code = l.code.as_str();
            let end = code.find(['{', ';']).unwrap_or(code.len());
            sig.push_str(&code[..end]);
            sig.push(' ');
            if end < code.len() {
                break;
            }
        }
        let returns_result = sig
            .split_once("->")
            .is_some_and(|(_, ret)| find_word(ret, "Result").is_some());
        if !returns_result {
            continue;
        }
        // Walk the fn's own doc block upward through attributes. A
        // fully blank line or an inner doc (`//!`) ends the block —
        // module docs never document a specific fn.
        let mut has_errors_doc = false;
        for l in lines[..i].iter().rev() {
            let code = l.code.trim();
            let comment = l.comment.trim();
            if comment.starts_with("//!") || (code.is_empty() && comment.is_empty()) {
                break;
            }
            if !code.is_empty() && !code.starts_with("#[") {
                break;
            }
            if comment.contains("# Errors") {
                has_errors_doc = true;
                break;
            }
        }
        if !has_errors_doc {
            raw.push(RawFinding::new(
                Rule::H2,
                i,
                "`pub fn` returning Result without a `# Errors` doc section".into(),
            ));
        }
    }
    raw
}

/// Everything the per-line pass extracts from one file, kept around so
/// the workspace-level rules (`p1`, `o1`) can append their raw hits
/// before [`finalize`] runs the shared annotation pipeline.
pub(crate) struct FileScan {
    /// Trimmed source lines, for finding snippets.
    pub(crate) snippets: Vec<String>,
    /// Lexed lines (comments/strings separated from code).
    pub(crate) lines: Vec<Line>,
    /// Per-line `#[cfg(test)]` mask.
    pub(crate) in_test: Vec<bool>,
    /// Parsed `// zeiot-audit: allow(…)` comments.
    pub(crate) annotations: Vec<Annotation>,
    /// Per-line rule hits collected so far.
    pub(crate) raw: Vec<RawFinding>,
}

/// Lexes one file and runs every per-line rule over it.
pub(crate) fn scan_file(
    config: &AuditConfig,
    crate_name: &str,
    layer: Layer,
    src: &str,
) -> FileScan {
    let snippets = src.lines().map(|l| l.trim().to_string()).collect();
    let lines = split_lines(src);
    let in_test = test_mask(&lines);
    let annotations = parse_annotations(&lines);
    let raw = scan_rules(config, crate_name, layer, &lines, &in_test);
    FileScan {
        snippets,
        lines,
        in_test,
        annotations,
        raw,
    }
}

/// Matches raw hits against allow annotations, reports stale or
/// malformed annotations, and renders everything as [`Finding`]s in
/// line order.
pub(crate) fn finalize(config: &AuditConfig, rel_path: &str, scan: FileScan) -> Vec<Finding> {
    let FileScan {
        snippets,
        annotations,
        raw,
        ..
    } = scan;
    let snippet = |line: usize| snippets.get(line).cloned().unwrap_or_default();
    let mut used = vec![false; annotations.len()];
    let mut findings = Vec::new();

    for f in raw {
        let covering = annotations.iter().enumerate().find(|(_, a)| {
            a.rule == Some(f.rule) && a.justification.is_some() && a.target == Some(f.line)
        });
        let status = match covering {
            Some((idx, a)) => {
                used[idx] = true;
                AllowStatus::Suppressed {
                    justification: a.justification.clone().expect("checked above"),
                }
            }
            None => AllowStatus::Active,
        };
        findings.push(Finding {
            file: rel_path.to_string(),
            line: f.line + 1,
            rule: f.rule.id().to_string(),
            snippet: snippet(f.line),
            message: f.message,
            status,
            chain: f.chain,
        });
    }

    for (idx, a) in annotations.iter().enumerate() {
        let malformed = a.rule.is_none() || a.justification.is_none();
        if malformed && config.action(Rule::MalformedAllow) != Action::Off {
            let what = if a.rule.is_none() {
                format!("unknown rule `{}`", a.rule_text)
            } else {
                "missing `-- <justification>`".to_string()
            };
            findings.push(Finding {
                file: rel_path.to_string(),
                line: a.line + 1,
                rule: Rule::MalformedAllow.id().to_string(),
                snippet: snippet(a.line),
                message: format!("malformed allow annotation: {what}"),
                status: AllowStatus::Active,
                chain: Vec::new(),
            });
        } else if !malformed && !used[idx] && config.action(Rule::UnusedAllow) != Action::Off {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: a.line + 1,
                rule: Rule::UnusedAllow.id().to_string(),
                snippet: snippet(a.line),
                message: format!(
                    "stale allow annotation: no `{}` finding here to suppress",
                    a.rule.expect("well-formed").id()
                ),
                status: AllowStatus::Active,
                chain: Vec::new(),
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule.clone()));
    findings
}

/// Runs the full single-file rule set over one source file.
///
/// `rel_path` is the workspace-relative path reported in findings;
/// `crate_name` and `layer` select which rules apply. The graph rules
/// run against a one-file call graph here (chains cannot cross files);
/// [`crate::audit_workspace`] runs them over the whole workspace
/// instead. Returns every finding — suppressed and
/// malformed-annotation ones included — in line order.
pub fn analyze_source(
    config: &AuditConfig,
    crate_name: &str,
    rel_path: &str,
    layer: Layer,
    src: &str,
) -> Vec<Finding> {
    let mut scan = scan_file(config, crate_name, layer, src);
    let items = crate::items::parse_items(&scan.lines, &scan.in_test);
    let facts = crate::graph::file_facts(crate_name, rel_path, &scan.lines, items);
    let facts = std::slice::from_ref(&facts);
    let graph = crate::graph::SymbolGraph::build(facts);
    for (file, f) in crate::panic::scan(config, facts, &[layer], &graph) {
        debug_assert_eq!(file, 0);
        scan.raw.push(f);
    }
    let membership = crate::obsnames::scan_membership(config, &scan);
    scan.raw.extend(membership);
    finalize(config, rel_path, scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(crate_name: &str, src: &str) -> Vec<Finding> {
        analyze_source(
            &AuditConfig::default(),
            crate_name,
            "src/lib.rs",
            Layer::Lib,
            src,
        )
    }

    #[test]
    fn d1_ignores_non_deterministic_crates_and_tests() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let hits = audit("zeiot-sim", src);
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].rule.as_str(), hits[0].line), ("d1", 1));
        assert!(audit("zeiot-rf", src).is_empty());
    }

    #[test]
    fn d3_exempts_integer_turbofish_sums_but_not_untyped_ones() {
        let float_sum = "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * x).sum() }\n";
        let hits = audit("zeiot-sim", float_sum);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "d3");

        // Integer addition is associative: a turbofish-pinned integer
        // sum over a parallel iterator is deterministic by construction.
        let int_sum = "fn f(xs: &[i32]) -> i32 { xs.par_iter().map(|x| x * 2).sum::<i32>() }\n";
        assert!(audit("zeiot-sim", int_sum).is_empty());

        // Without the turbofish the element type is invisible to the
        // lexical pass, so the conservative answer is to fire.
        let untyped = "fn f(xs: &[i32]) -> i32 { xs.par_iter().map(|x| x * 2).sum() }\n";
        assert_eq!(audit("zeiot-sim", untyped).len(), 1);
    }

    #[test]
    fn d4_flags_literal_seeds_and_fresh_streams_outside_rng_roots() {
        // A literal seed in library code fires even in an RNG-root crate.
        let literal = "fn f() { let rng = SeedRng::new(42); }\n";
        let hits = audit("zeiot-sim", literal);
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert_eq!(hits[0].rule, "d4");
        assert!(hits[0].message.contains("literal seed"));

        // A fresh stream from a runtime seed fires outside RNG roots…
        let fresh = "fn f(seed: u64) { let rng = SeedRng::with_stream(seed, 1); }\n";
        let hits = audit("zeiot-sim", fresh);
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert!(hits[0].message.contains("RNG-root"));

        // …but not inside one (zeiot-bench owns the master seed), and
        // derived streams never fire anywhere.
        assert!(audit("zeiot-bench", fresh).is_empty());
        let derived = "fn f(rng: &SeedRng) { let s = SeedRng::for_point(rng.seed(), 3); }\n";
        assert!(audit("zeiot-sim", derived).is_empty());

        // Test code is exempt like every other rule.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn f() { let r = SeedRng::new(7); }\n}\n";
        assert!(audit("zeiot-sim", test_only).is_empty());
    }

    #[test]
    fn d2_skips_the_bin_layer() {
        let src = "fn main() { let t = std::time::Instant::now(); let _ = t; }\n";
        let lib = audit("zeiot-rf", src);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib[0].rule, "d2");
        let bin = analyze_source(
            &AuditConfig::default(),
            "zeiot-rf",
            "src/bin/tool.rs",
            Layer::Bin,
            src,
        );
        assert!(bin.is_empty());
    }

    #[test]
    fn annotations_target_trailing_or_next_code_line() {
        let src = "\
// zeiot-audit: allow(d1) -- key order never escapes: drained via sorted keys
use std::collections::HashMap;
use std::collections::HashSet; // zeiot-audit: allow(d1) -- bounded; never iterated
";
        let hits = audit("zeiot-plan", src);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| !f.status.is_active()), "{hits:#?}");
    }

    #[test]
    fn disabling_a_rule_silences_it() {
        let mut config = AuditConfig::default();
        config.set_action(Rule::D1, Action::Off);
        let hits = analyze_source(
            &config,
            "zeiot-sim",
            "src/lib.rs",
            Layer::Lib,
            "use std::collections::HashMap;\n",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn h2_accepts_documented_errors() {
        let src = "\
/// Frobs.
///
/// # Errors
///
/// Fails when the input is empty.
pub fn frob(x: &[u8]) -> Result<(), String> { if x.is_empty() { Err(\"e\".into()) } else { Ok(()) } }
";
        assert!(audit("zeiot-serve", src).is_empty());
    }
}
