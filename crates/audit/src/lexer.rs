//! A minimal Rust lexer that separates code from comments and strings.
//!
//! The audit rules are pattern searches over *code*, so the lexer's one
//! job is classification: every character of a source file is code,
//! string-literal interior, or comment. Each input line yields a
//! [`Line`] whose `code` field holds the source with comments removed
//! and string/char-literal interiors blanked (delimiters kept), and
//! whose `comment` field holds the comment text. Rules match against
//! `code` — so `"HashMap"` inside a string or a doc comment can never
//! fire a finding — while allow-annotations and `# Errors` doc sections
//! are read from `comment`.
//!
//! Handled syntax: line comments, nested block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//! depth, plus byte-string forms), char literals (including escaped
//! quotes), and lifetimes (`'a` is code, not an unterminated char
//! literal). This is deliberately not a full lexer — no token stream,
//! no macro expansion — which keeps the tool dependency-free.

/// One source line, split into its code and comment portions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Line {
    /// The line with comments stripped and literal interiors blanked.
    pub code: String,
    /// The concatenated comment text of the line (markers kept).
    pub comment: String,
    /// Each string literal that *opens* on this line: the byte offset
    /// of its opening quote within `code`, and its interior text
    /// (escapes kept verbatim, minus the backslash). The o1 rule reads
    /// metric/span names from here, so blanking interiors in `code`
    /// loses nothing.
    pub strings: Vec<(usize, String)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(usize),
    Str,
    RawStr(usize),
    CharLit,
}

/// Is `c` part of an identifier?
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Detects a raw-string opener at `i` (which must point at `r`):
/// returns the hash depth if `chars[i..]` begins `r#*"`.
fn raw_string_open(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i + 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    if j < chars.len() && chars[j] == '"' {
        Some(j - i - 1)
    } else {
        None
    }
}

/// Splits `src` into classified [`Line`]s.
pub fn split_lines(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    // The string literal currently open: (line index it opened on —
    // `lines.len()` means the current line — offset of its opening
    // quote in that line's `code`) plus the interior accumulated so far.
    let mut open_str: Option<(usize, usize)> = None;
    let mut str_buf = String::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    line.comment.push_str("//");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    line.comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    open_str = Some((lines.len(), line.code.len()));
                    str_buf.clear();
                    line.code.push('"');
                    i += 1;
                } else if c == 'r' && !prev_is_ident_except_b(&chars, i) {
                    if let Some(hashes) = raw_string_open(&chars, i) {
                        state = State::RawStr(hashes);
                        open_str = Some((lines.len(), line.code.len() + 1));
                        str_buf.clear();
                        line.code.push_str("r\"");
                        i += 2 + hashes;
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: `'\…'` and `'x'` are
                    // literals; `'ident` (no closing quote) is a lifetime.
                    if chars.get(i + 1) == Some(&'\\')
                        || (chars.get(i + 2) == Some(&'\'')
                            && chars.get(i + 1).is_some_and(|&n| n != '\''))
                    {
                        state = State::CharLit;
                        line.code.push('\'');
                        i += 1;
                    } else {
                        line.code.push('\'');
                        i += 1;
                    }
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    line.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    line.comment.push_str("*/");
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped character — except an escaped
                    // newline (line continuation), which the outer loop
                    // must still see so line numbers stay aligned.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        if let Some(&esc) = chars.get(i + 1) {
                            str_buf.push(esc);
                        }
                        i += 2;
                    }
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    close_string(&mut lines, &mut line, &mut open_str, &mut str_buf);
                    i += 1;
                } else {
                    str_buf.push(c);
                    i += 1; // blank the interior of `code`
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && chars[i + 1..].iter().take_while(|&&h| h == '#').count() >= hashes {
                    line.code.push('"');
                    state = State::Code;
                    close_string(&mut lines, &mut line, &mut open_str, &mut str_buf);
                    i += 1 + hashes;
                } else {
                    str_buf.push(c);
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

/// Attaches a just-closed string literal's interior to the line its
/// opening quote sits on (which may be an earlier line for multi-line
/// literals).
fn close_string(
    lines: &mut [Line],
    current: &mut Line,
    open: &mut Option<(usize, usize)>,
    buf: &mut String,
) {
    if let Some((line_idx, offset)) = open.take() {
        let target = if line_idx == lines.len() {
            current
        } else {
            &mut lines[line_idx]
        };
        target.strings.push((offset, std::mem::take(buf)));
    }
}

/// True when the character before `i` continues an identifier other
/// than a byte-string prefix — used to keep `var` in `for r in…` from
/// being misread as a raw-string opener while still accepting `br"…"`.
fn prev_is_ident_except_b(chars: &[char], i: usize) -> bool {
    match i.checked_sub(1).map(|p| chars[p]) {
        None => false,
        Some('b') => i >= 2 && is_ident(chars[i - 2]),
        Some(p) => is_ident(p),
    }
}

/// Marks every line that belongs to a `#[cfg(test)]` item (attribute
/// line through the item's closing brace). Rules skip these lines: test
/// code may use `unwrap`, hash collections, and wall clocks freely.
pub fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut idx = 0;
    while idx < lines.len() {
        if let Some(pos) = lines[idx].code.find("#[cfg(test)]") {
            let mut depth = 0usize;
            let mut entered = false;
            let mut j = idx;
            let mut start = pos;
            while j < lines.len() {
                mask[j] = true;
                for c in lines[j].code[start..].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            entered = true;
                        }
                        '}' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                }
                if entered && depth == 0 {
                    break;
                }
                j += 1;
                start = 0;
            }
            idx = j + 1;
        } else {
            idx += 1;
        }
    }
    mask
}

/// Finds a whole-word occurrence of `word` in `code` (neighbours must
/// not be identifier characters). Returns the byte offset.
pub fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        let before_ok = code[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        let after_ok = code[at + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let src = "let m = \"HashMap\"; // HashMap here\n/* HashMap */ let x = 1;\n";
        let lines = split_lines(src);
        assert_eq!(lines[0].code, "let m = \"\"; ");
        assert!(lines[0].comment.contains("HashMap"));
        assert_eq!(lines[1].code, " let x = 1;");
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let src = "let r = r#\"Instant::now()\"#; let c = '\"'; let q = '\\'';\n";
        let lines = split_lines(src);
        assert!(!lines[0].code.contains("Instant"));
        assert_eq!(lines[0].code, "let r = r\"\"; let c = ''; let q = '';");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // trailing\n";
        let lines = split_lines(src);
        assert!(lines[0].code.contains("fn f<'a>"));
        assert_eq!(lines[0].comment, "// trailing");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "a /* one /* two */ still */ b\n";
        let lines = split_lines(src);
        assert_eq!(lines[0].code, "a  b");
    }

    #[test]
    fn multiline_strings_span_lines() {
        let src = "let s = \"first\nsecond HashMap\";\nlet t = 2;\n";
        let lines = split_lines(src);
        assert_eq!(lines[1].code, "\";");
        assert_eq!(lines[2].code, "let t = 2;");
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let lines = split_lines(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn string_literal_interiors_are_captured_with_offsets() {
        let src = "rec.add(\"mac.grants\", Label::Global, 1);\nlet r = r#\"raw.name\"#;\n";
        let lines = split_lines(src);
        assert_eq!(lines[0].strings, vec![(8, "mac.grants".to_string())]);
        assert_eq!(lines[0].code.as_bytes()[8], b'"');
        assert_eq!(lines[1].strings, vec![(9, "raw.name".to_string())]);
    }

    #[test]
    fn multiline_string_content_attaches_to_the_opening_line() {
        let src = "let s = \"first\nsecond\";\nlet t = \"x\";\n";
        let lines = split_lines(src);
        assert_eq!(lines[0].strings, vec![(8, "firstsecond".to_string())]);
        assert!(lines[1].strings.is_empty());
        assert_eq!(lines[2].strings, vec![(8, "x".to_string())]);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_captured_literal() {
        let lines = split_lines("f(\"a\\\"b\");\n");
        assert_eq!(lines[0].strings, vec![(2, "a\"b".to_string())]);
    }

    #[test]
    fn whole_word_matching_rejects_substrings() {
        assert!(find_word("let x: HashMap<u32, u32>;", "HashMap").is_some());
        assert!(find_word("let x = MyHashMapLike;", "HashMap").is_none());
        assert!(find_word("call(thread_rng())", "thread_rng").is_some());
    }
}
