//! Deterministic discovery of auditable workspace sources.
//!
//! The walk covers the root package's `src/` tree and every
//! `crates/*/src/` tree, in sorted path order (so reports and JSONL
//! dumps are byte-identical run to run). `third_party/` (vendored
//! dependency stubs), `tests/`, `benches/`, and `examples/` are out of
//! scope: the contract governs library and bin code that production
//! results flow through, and `#[cfg(test)]` regions are already masked
//! inside scanned files.

use crate::config::Layer;
use std::io;
use std::path::{Path, PathBuf};

/// One file to audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpec {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path used in findings.
    pub rel: String,
    /// Cargo package name (`zeiot`, `zeiot-sim`, …).
    pub crate_name: String,
    /// Library or CLI layer.
    pub layer: Layer,
}

fn layer_of(rel: &str) -> Layer {
    if rel.contains("/bin/") || rel.ends_with("/main.rs") {
        Layer::Bin
    } else {
        Layer::Lib
    }
}

fn push_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            push_rust_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Lists every auditable source file under the workspace `root`.
///
/// # Errors
///
/// Propagates filesystem errors from directory traversal.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<SourceSpec>> {
    let mut specs = Vec::new();
    let mut trees: Vec<(String, PathBuf)> = vec![("zeiot".into(), root.join("src"))];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            trees.push((format!("zeiot-{name}"), dir.join("src")));
        }
    }
    for (crate_name, src_dir) in trees {
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        push_rust_files(&src_dir, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let layer = layer_of(&rel);
            specs.push(SourceSpec {
                path,
                rel,
                crate_name: crate_name.clone(),
                layer,
            });
        }
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn walk_finds_this_crate_and_classifies_layers() {
        let specs = workspace_sources(&repo_root()).unwrap();
        assert!(specs
            .iter()
            .any(|s| s.crate_name == "zeiot-audit" && s.rel.ends_with("src/rules.rs")));
        let main = specs
            .iter()
            .find(|s| s.rel == "crates/audit/src/main.rs")
            .expect("audit bin present");
        assert_eq!(main.layer, Layer::Bin);
        assert!(specs.iter().all(|s| !s.rel.contains("third_party")));
    }

    #[test]
    fn walk_order_is_sorted_and_stable() {
        let a = workspace_sources(&repo_root()).unwrap();
        let b = workspace_sources(&repo_root()).unwrap();
        assert_eq!(a, b);
        let rels: Vec<&String> = a.iter().map(|s| &s.rel).collect();
        let mut sorted = rels.clone();
        sorted.sort();
        // Root `src/` sorts first, then crates in name order.
        assert_eq!(&rels[1..], &sorted[..rels.len() - 1]);
    }
}
