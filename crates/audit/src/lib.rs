//! # zeiot-audit — workspace determinism & hygiene linter
//!
//! Every quantitative result in this reproduction rests on byte-exact
//! determinism across thread counts: MicroDeep's balanced
//! correspondence, the E1–E10 golden fixtures, the serve/fault
//! equivalence suites. Nothing *statically* stopped a contributor from
//! reintroducing `HashMap` iteration, wall-clock reads, or unordered
//! float reductions — this crate is that missing tool. It is a
//! self-contained, lexer-based analyzer (no `syn`, no new
//! dependencies) that walks every workspace crate and enforces the
//! determinism contract documented in DESIGN.md §7b:
//!
//! * **d1** — no `HashMap`/`HashSet` in deterministic crates;
//! * **d2** — no wall clocks, thread identity, OS randomness, or env
//!   branching outside the CLI layer;
//! * **d3** — no float accumulation over parallel-iterator results
//!   without a total-order merge;
//! * **h1** — no `unwrap()`/`expect()` in library code of the
//!   typed-error crates (`zeiot-serve`, `zeiot-fault`);
//! * **h2** — every `pub fn … -> Result` in those crates documents its
//!   `# Errors`.
//!
//! Deliberate exceptions carry an inline annotation with a mandatory
//! justification —
//! `// zeiot-audit: allow(<rule>) -- <why this site is sound>` — and
//! the annotations themselves are audited: stale ones fire
//! `unused-allow`, malformed ones fire `malformed-allow`. Legacy debt
//! can be grandfathered through a JSON [`Baseline`] file instead.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p zeiot-audit -- --deny all
//! cargo run -p zeiot-audit -- --warn d3 --jsonl audit.jsonl
//! ```
//!
//! Findings export as structured JSONL through [`zeiot_obs`]; see
//! [`report`].

pub mod baseline;
pub mod config;
pub mod finding;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use baseline::{Baseline, BaselineEntry};
pub use config::{Action, AuditConfig, Layer, Rule, ALL_RULES};
pub use finding::{AllowStatus, Finding};
pub use report::AuditReport;
pub use rules::analyze_source;
pub use walk::{workspace_sources, SourceSpec};

use std::io;
use std::path::Path;

/// Audits every workspace source under `root` with `config`, applying
/// `baseline` to the result.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or from reading sources.
pub fn audit_workspace(
    root: &Path,
    config: &AuditConfig,
    baseline: Option<&Baseline>,
) -> io::Result<AuditReport> {
    let specs = workspace_sources(root)?;
    let mut findings = Vec::new();
    let files_scanned = specs.len();
    for spec in &specs {
        let src = std::fs::read_to_string(&spec.path)?;
        findings.extend(analyze_source(
            config,
            &spec.crate_name,
            &spec.rel,
            spec.layer,
            &src,
        ));
    }
    if let Some(base) = baseline {
        base.apply(&mut findings);
    }
    Ok(AuditReport {
        findings,
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn workspace_audit_runs_and_scans_every_crate() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = audit_workspace(&root, &AuditConfig::default(), None).unwrap();
        assert!(report.files_scanned > 100, "only {}", report.files_scanned);
    }
}
