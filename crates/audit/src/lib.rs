//! # zeiot-audit — workspace determinism & hygiene linter
//!
//! Every quantitative result in this reproduction rests on byte-exact
//! determinism across thread counts: MicroDeep's balanced
//! correspondence, the E1–E10 golden fixtures, the serve/fault
//! equivalence suites. Nothing *statically* stopped a contributor from
//! reintroducing `HashMap` iteration, wall-clock reads, or unordered
//! float reductions — this crate is that missing tool. It is a
//! self-contained, lexer-based analyzer (no `syn`, no new
//! dependencies) that walks every workspace crate and enforces the
//! determinism contract documented in DESIGN.md §7b:
//!
//! * **d1** — no `HashMap`/`HashSet` in deterministic crates;
//! * **d2** — no wall clocks, thread identity, OS randomness, or env
//!   branching outside the CLI layer;
//! * **d3** — no float accumulation over parallel-iterator results
//!   without a total-order merge;
//! * **d4** — no fresh or literal-seeded `SeedRng` construction in
//!   library code outside the RNG-root crates: streams derive from the
//!   master seed via `for_point`/`split`;
//! * **h1** — no `unwrap()`/`expect()` in library code of the
//!   typed-error crates (`zeiot-serve`, `zeiot-fault`);
//! * **h2** — every `pub fn … -> Result` in those crates documents its
//!   `# Errors`.
//!
//! Beyond the per-line rules, the workspace pass builds an item-level
//! symbol graph ([`items`], [`graph`]) and runs two dataflow rules
//! over it:
//!
//! * **p1** — panic sites (`unwrap`/`expect`/panicking macros/
//!   indexing) transitively reachable from public APIs of the
//!   typed-error crates, reported with the call chain that proves
//!   reachability;
//! * **o1** — the observability-name registry round-trip: every
//!   metric/span literal flowing into a recorder/tracer API must be
//!   declared in `zeiot-obs::registry`, and every declared name must
//!   be emitted somewhere.
//!
//! Deliberate exceptions carry an inline annotation with a mandatory
//! justification —
//! `// zeiot-audit: allow(<rule>) -- <why this site is sound>` — and
//! the annotations themselves are audited: stale ones fire
//! `unused-allow`, malformed ones fire `malformed-allow`. Legacy debt
//! can be grandfathered through a JSON [`Baseline`] file instead
//! (`audit-baseline.json` at the workspace root is picked up
//! automatically by the CLI).
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p zeiot-audit -- --deny all
//! cargo run -p zeiot-audit -- --warn d3 --jsonl audit.jsonl
//! cargo run -p zeiot-audit -- --emit-graph graph.json
//! ```
//!
//! Findings export as structured JSONL through [`zeiot_obs`]; see
//! [`report`].

pub mod baseline;
pub mod config;
pub mod finding;
pub mod graph;
pub mod items;
pub mod lexer;
mod obsnames;
mod panic;
pub mod report;
pub mod rules;
pub mod walk;

pub use baseline::{Baseline, BaselineEntry};
pub use config::{Action, AuditConfig, Layer, Rule, ALL_RULES};
pub use finding::{AllowStatus, Finding};
pub use graph::SymbolGraph;
pub use report::AuditReport;
pub use rules::analyze_source;
pub use walk::{workspace_sources, SourceSpec};

use std::io;
use std::path::Path;

/// Audits every workspace source under `root` with `config`, applying
/// `baseline` to the result, and returns the symbol graph alongside
/// the report (for `--emit-graph`).
///
/// # Errors
///
/// Propagates filesystem errors from the walk or from reading sources.
pub fn audit_workspace_full(
    root: &Path,
    config: &AuditConfig,
    baseline: Option<&Baseline>,
) -> io::Result<(AuditReport, SymbolGraph)> {
    let specs = workspace_sources(root)?;
    let files_scanned = specs.len();

    // Pass 1: lex every file, run the per-line rules, and collect the
    // symbol-graph facts.
    let mut scans = Vec::with_capacity(specs.len());
    let mut facts = Vec::with_capacity(specs.len());
    let mut layers = Vec::with_capacity(specs.len());
    for spec in &specs {
        let src = std::fs::read_to_string(&spec.path)?;
        let scan = rules::scan_file(config, &spec.crate_name, spec.layer, &src);
        let items = items::parse_items(&scan.lines, &scan.in_test);
        facts.push(graph::file_facts(
            &spec.crate_name,
            &spec.rel,
            &scan.lines,
            items,
        ));
        layers.push(spec.layer);
        scans.push(scan);
    }

    // Pass 2: the workspace rules see every file at once and append
    // their raw hits to the owning file's scan, so annotation matching
    // and reporting stay uniform across rule families.
    let sym = SymbolGraph::build(&facts);
    for (file, f) in panic::scan(config, &facts, &layers, &sym) {
        scans[file].raw.push(f);
    }
    for scan in &mut scans {
        let membership = obsnames::scan_membership(config, scan);
        scan.raw.extend(membership);
    }
    let rels: Vec<&str> = specs.iter().map(|s| s.rel.as_str()).collect();
    for (file, f) in obsnames::scan_roundtrip(config, &rels, &scans) {
        scans[file].raw.push(f);
    }

    let mut findings = Vec::new();
    for (spec, scan) in specs.iter().zip(scans) {
        findings.extend(rules::finalize(config, &spec.rel, scan));
    }
    if let Some(base) = baseline {
        base.apply(&mut findings);
    }
    Ok((
        AuditReport {
            findings,
            files_scanned,
        },
        sym,
    ))
}

/// Audits every workspace source under `root` with `config`, applying
/// `baseline` to the result.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or from reading sources.
pub fn audit_workspace(
    root: &Path,
    config: &AuditConfig,
    baseline: Option<&Baseline>,
) -> io::Result<AuditReport> {
    audit_workspace_full(root, config, baseline).map(|(report, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn workspace_audit_runs_and_scans_every_crate() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let (report, graph) = audit_workspace_full(&root, &AuditConfig::default(), None).unwrap();
        assert!(report.files_scanned > 100, "only {}", report.files_scanned);
        // The symbol graph covers the workspace: thousands of fns, and
        // the serve entry points are present.
        assert!(graph.nodes.len() > 500, "only {} fns", graph.nodes.len());
        assert!(graph
            .nodes
            .iter()
            .any(|n| n.crate_name == "zeiot-serve" && n.is_pub));
    }
}
