//! Known-bad fixture for rule d2: wall-clock time, thread identity,
//! OS randomness, and env-dependent branching in library code.

pub fn stamp() -> std::time::Duration {
    let t = std::time::Instant::now();
    t.elapsed()
}

pub fn epoch() -> u64 {
    let now = std::time::SystemTime::now();
    now.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}

pub fn debug_enabled() -> bool {
    std::env::var("ZEIOT_DEBUG").is_ok() || std::env::var_os("ZEIOT_TRACE").is_some()
}
