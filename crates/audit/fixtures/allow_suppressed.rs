//! Fixture: correctly annotated sites — every finding is suppressed.

// zeiot-audit: allow(d1) -- population map is drained through sorted keys before anything observable happens
use std::collections::HashMap;

pub fn sorted_counts(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new(); // zeiot-audit: allow(d1) -- key order never escapes: collected and sorted below
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, u32)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}
