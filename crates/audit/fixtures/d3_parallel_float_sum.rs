//! Known-bad fixture for rule d3: float accumulation over
//! parallel-iterator results without a total-order merge.

use rayon::prelude::*;

pub fn total_energy(samples: &[f64]) -> f64 {
    samples.par_iter().map(|s| s * s).sum()
}

pub fn folded(samples: &[f64]) -> f64 {
    samples
        .par_iter()
        .map(|s| s.sqrt())
        .fold(|| 0.0, |a, b| a + b)
        .sum()
}

pub fn serial_sum_is_fine(samples: &[f64]) -> f64 {
    samples.iter().map(|s| s * s).sum()
}

pub fn quantized_total_is_fine(partials: &[i32]) -> i32 {
    partials.par_iter().map(|p| p * 2).sum::<i32>()
}
