//! Known-bad fixture for rule h2: a `pub fn` returning `Result`
//! without a `# Errors` doc section.

/// Parses a rate. The docs say nothing about failure.
pub fn parse_rate(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("bad rate: {s}"))
}

/// Parses a count, over a multi-line signature.
///
/// # Errors
///
/// Returns an error when `s` is not a decimal integer.
pub fn parse_count(
    s: &str,
    limit: usize,
) -> Result<usize, String> {
    let n: usize = s.parse().map_err(|_| format!("bad count: {s}"))?;
    if n > limit {
        return Err(format!("{n} over limit"));
    }
    Ok(n)
}

/// Infallible — no `# Errors` needed.
pub fn double(n: usize) -> usize {
    n * 2
}

pub(crate) fn internal(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "crate-internal: exempt".to_string())
}
