//! Known-bad fixture for rule d1: hash collections in a deterministic
//! crate. Not compiled — consumed as text by `tests/fixtures.rs`.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    // A decoy in a string and a comment: neither may fire.
    let _doc = "HashMap iteration order is the whole problem";
    seen.len() + counts.len() // HashMap HashSet
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash_freely() {
        let _ = HashMap::<u32, u32>::new();
    }
}
