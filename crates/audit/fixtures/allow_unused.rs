//! Fixture: a stale allow annotation — the site it excused was fixed,
//! the comment stayed behind. Must fire `unused-allow`.

use std::collections::BTreeMap;

pub fn sorted_counts(xs: &[u32]) -> Vec<(u32, u32)> {
    // zeiot-audit: allow(d1) -- key order never escapes (stale: the map below is a BTreeMap now)
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
