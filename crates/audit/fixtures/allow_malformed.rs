//! Fixture: malformed annotations. A justification-free allow and an
//! unknown rule both fire `malformed-allow`, and neither suppresses
//! the underlying finding.

use std::collections::HashMap; // zeiot-audit: allow(d1)

pub fn count(xs: &[u32]) -> usize {
    // zeiot-audit: allow(d9) -- no such rule
    let m: HashMap<u32, u32> = HashMap::new();
    m.len() + xs.len()
}
