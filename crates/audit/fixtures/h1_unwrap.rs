//! Known-bad fixture for rule h1: `unwrap()`/`expect()` in library
//! code of a typed-error crate.

pub fn head(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    *first
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller promised digits")
}

pub fn guarded(xs: &[u32]) -> u32 {
    // `unwrap_or` is total — it must not fire.
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!("7".parse::<u32>().unwrap(), 7);
    }
}
