//! p1 fixture: panic reachability through the intra-file call graph.
//! A public API that panics only transitively, a justified allow on a
//! provably-in-bounds index, and a dead private fn that panics but is
//! unreachable from any public root.

/// Public entry point: never panics itself, but reaches `inner`'s
/// unwrap one call away.
pub fn entry(values: &[f32]) -> f32 {
    inner(values)
}

fn inner(values: &[f32]) -> f32 {
    values.first().copied().unwrap()
}

/// Public root whose only panic site carries a justification.
pub fn guarded(values: &[f32]) -> f32 {
    // zeiot-audit: allow(p1) -- fixture: caller guarantees a non-empty slice by construction
    values[0]
}

fn never_called() -> usize {
    let empty: Vec<usize> = Vec::new();
    empty[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        assert_eq!(super::entry(&[1.0]), 1.0);
    }
}
