//! o1 fixture: every literal flowing into a recorder or tracer API
//! must name a registered metric/span. Registered names and dynamic
//! families pass; typos draw a "did you mean" hint; inventions fail
//! flat; an allow annotation suppresses with its justification.

pub fn record(rec: &mut Recorder) {
    rec.add("serve.offered", Label::Global, 1);
    rec.add("serve.offerd", Label::Global, 1);
    rec.add("made.up.metric", Label::Global, 1);
    rec.observe("audit.findings.active", Label::Global, 1.0);
}

pub fn spans(tr: &mut Tracer, t: u64, seq: u64, parent: SpanId) {
    let _ = tr.push_span(
        t,
        seq,
        parent,
        SpanLayer::Infer,
        "serve.infer",
        ClockDomain::Serve,
        start,
        end,
    );
    let _ = tr.push_span(t, seq, parent, SpanLayer::Infer, "serve.inferr", domain, a, b);
}

pub fn justified(rec: &mut Recorder) {
    // zeiot-audit: allow(o1) -- fixture: a deliberately off-registry name with a written-down reason
    rec.add("fixture.only", Label::Global, 1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_scratch_names() {
        let mut rec = Recorder::new();
        rec.add("scratch.name", Label::Global, 1);
    }
}
