//! d4 fixture: RNG-construction discipline. Fresh streams belong to
//! RNG-root crates; everyone else derives with `for_point`, and
//! nobody hardcodes a literal seed in library code.

use zeiot_core::rng::SeedRng;

pub fn fresh_stream(seed: u64) -> SeedRng {
    SeedRng::new(seed)
}

pub fn literal_seed() -> SeedRng {
    SeedRng::new(42)
}

pub fn literal_stream() -> SeedRng {
    SeedRng::with_stream(7, 3)
}

pub fn derived(root: &SeedRng) -> SeedRng {
    root.for_point(3, 1)
}

pub fn justified(seed: u64) -> SeedRng {
    // zeiot-audit: allow(d4) -- fixture: a deliberately independent stream with a written-down reason
    SeedRng::new(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_seed_freely() {
        let _ = SeedRng::new(1);
    }
}
