//! Power-draw profiles of IoT device classes.
//!
//! The paper's §I energy taxonomy, encoded: sensing runs at µW to tens of
//! µW; conventional radio burns tens to hundreds of mW; BLE is in the mW
//! range; ambient backscatter is ~10 µW — about 1/10,000 of active radio.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::time::SimDuration;
use zeiot_core::units::{Joule, Watt};

/// Operating states a zero-energy device cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceState {
    /// Deep sleep: retention only.
    Sleep,
    /// Sampling a sensor.
    Sense,
    /// Local computation (e.g. one CNN unit's forward step).
    Compute,
    /// Backscatter transmission (RF-switch toggling).
    Backscatter,
    /// Active radio transmission (802.15.4 / BLE / Wi-Fi class).
    ActiveRadio,
}

impl DeviceState {
    /// All states, for iteration in tests and reports.
    pub const ALL: [DeviceState; 5] = [
        DeviceState::Sleep,
        DeviceState::Sense,
        DeviceState::Compute,
        DeviceState::Backscatter,
        DeviceState::ActiveRadio,
    ];
}

/// Per-state power draw of a device class.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_energy::consumer::{DeviceState, PowerProfile};
/// use zeiot_core::time::SimDuration;
///
/// let tag = PowerProfile::backscatter_tag()?;
/// let radio = PowerProfile::active_802154_node()?;
/// let ratio = radio.draw(DeviceState::ActiveRadio).value()
///     / tag.draw(DeviceState::Backscatter).value();
/// assert!(ratio > 1_000.0); // the paper's ~1/10,000 claim, order-of-magnitude
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    sleep: Watt,
    sense: Watt,
    compute: Watt,
    backscatter: Watt,
    active_radio: Watt,
}

impl PowerProfile {
    /// Creates a profile from per-state draws.
    ///
    /// # Errors
    ///
    /// Returns an error if any draw is negative or not finite.
    pub fn new(
        sleep: Watt,
        sense: Watt,
        compute: Watt,
        backscatter: Watt,
        active_radio: Watt,
    ) -> Result<Self> {
        for (name, w) in [
            ("sleep", sleep),
            ("sense", sense),
            ("compute", compute),
            ("backscatter", backscatter),
            ("active_radio", active_radio),
        ] {
            if !(w.value().is_finite() && w.value() >= 0.0) {
                return Err(ConfigError::new(name, "must be non-negative and finite"));
            }
        }
        Ok(Self {
            sleep,
            sense,
            compute,
            backscatter,
            active_radio,
        })
    }

    /// A minimal backscatter tag: 0.1 µW sleep, 5 µW sense, 20 µW compute,
    /// 10 µW backscatter; it has no active radio (modelled as a
    /// prohibitive 100 mW so budgets expose the mistake).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`PowerProfile::new`].
    pub fn backscatter_tag() -> Result<Self> {
        Self::new(
            Watt::new(0.1e-6),
            Watt::new(5e-6),
            Watt::new(20e-6),
            Watt::new(10e-6),
            Watt::new(100e-3),
        )
    }

    /// A conventional 802.15.4 sensor node: 3 µW sleep, 10 µW sense,
    /// 5 mW compute (MCU active), 10 µW backscatter-equivalent (not used),
    /// 60 mW radio.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`PowerProfile::new`].
    pub fn active_802154_node() -> Result<Self> {
        Self::new(
            Watt::new(3e-6),
            Watt::new(10e-6),
            Watt::new(5e-3),
            Watt::new(10e-6),
            Watt::new(60e-3),
        )
    }

    /// A BLE-class node: mW-order radio (paper: "Even BLE consumes the
    /// order of mW").
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`PowerProfile::new`].
    pub fn ble_node() -> Result<Self> {
        Self::new(
            Watt::new(1e-6),
            Watt::new(10e-6),
            Watt::new(3e-3),
            Watt::new(10e-6),
            Watt::new(5e-3),
        )
    }

    /// Power draw in a given state.
    pub fn draw(&self, state: DeviceState) -> Watt {
        match state {
            DeviceState::Sleep => self.sleep,
            DeviceState::Sense => self.sense,
            DeviceState::Compute => self.compute,
            DeviceState::Backscatter => self.backscatter,
            DeviceState::ActiveRadio => self.active_radio,
        }
    }

    /// Energy for spending `duration` in `state`.
    pub fn energy(&self, state: DeviceState, duration: SimDuration) -> Joule {
        self.draw(state).energy_over(duration)
    }

    /// Energy to transmit `bits` at `bit_rate_bps` in `state`
    /// (Backscatter or ActiveRadio).
    ///
    /// # Panics
    ///
    /// Panics if `bit_rate_bps` is not strictly positive.
    pub fn tx_energy(&self, state: DeviceState, bits: usize, bit_rate_bps: f64) -> Joule {
        assert!(bit_rate_bps > 0.0, "bit rate must be positive");
        let duration = SimDuration::from_secs_f64(bits as f64 / bit_rate_bps);
        self.energy(state, duration)
    }

    /// Energy per transmitted bit in `state` at `bit_rate_bps`.
    pub fn energy_per_bit(&self, state: DeviceState, bit_rate_bps: f64) -> Joule {
        self.tx_energy(state, 1, bit_rate_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_construct() {
        assert!(PowerProfile::backscatter_tag().is_ok());
        assert!(PowerProfile::active_802154_node().is_ok());
        assert!(PowerProfile::ble_node().is_ok());
    }

    #[test]
    fn rejects_negative_draw() {
        assert!(PowerProfile::new(
            Watt::new(-1.0),
            Watt::new(0.0),
            Watt::new(0.0),
            Watt::new(0.0),
            Watt::new(0.0)
        )
        .is_err());
    }

    #[test]
    fn paper_power_taxonomy_holds() {
        let tag = PowerProfile::backscatter_tag().unwrap();
        let node = PowerProfile::active_802154_node().unwrap();
        let ble = PowerProfile::ble_node().unwrap();
        // Sensing: µW to tens of µW.
        assert!(tag.draw(DeviceState::Sense).value() <= 50e-6);
        // Active radio: tens of mW or more.
        assert!(node.draw(DeviceState::ActiveRadio).value() >= 10e-3);
        // BLE: order of mW.
        let ble_radio = ble.draw(DeviceState::ActiveRadio).value();
        assert!((1e-3..10e-3).contains(&ble_radio));
        // Backscatter ~10 µW: about 1/10,000 of a 100 mW radio.
        let ratio = tag.draw(DeviceState::Backscatter).value() / 100e-3;
        assert!((ratio - 1e-4).abs() < 1e-10);
    }

    #[test]
    fn energy_scales_with_duration() {
        let tag = PowerProfile::backscatter_tag().unwrap();
        let e1 = tag.energy(DeviceState::Compute, SimDuration::from_millis(10));
        let e2 = tag.energy(DeviceState::Compute, SimDuration::from_millis(20));
        assert!((e2.value() - 2.0 * e1.value()).abs() < 1e-15);
    }

    #[test]
    fn tx_energy_at_rate() {
        let tag = PowerProfile::backscatter_tag().unwrap();
        // 250 kbps backscatter, 1000-bit packet = 4 ms at 10 µW = 40 nJ.
        let e = tag.tx_energy(DeviceState::Backscatter, 1_000, 250e3);
        assert!((e.value() - 40e-9).abs() < 1e-12);
    }

    #[test]
    fn energy_per_bit_comparison_favors_backscatter() {
        let tag = PowerProfile::backscatter_tag().unwrap();
        let node = PowerProfile::active_802154_node().unwrap();
        let bs = tag.energy_per_bit(DeviceState::Backscatter, 250e3).value();
        let ar = node.energy_per_bit(DeviceState::ActiveRadio, 250e3).value();
        assert!(ar / bs > 1_000.0, "ratio={}", ar / bs);
    }

    #[test]
    fn all_states_are_covered() {
        let tag = PowerProfile::backscatter_tag().unwrap();
        for s in DeviceState::ALL {
            assert!(tag.draw(s).value() >= 0.0);
        }
    }
}
