//! The storage element of a zero-energy device.
//!
//! Harvested charge accumulates in a capacitor; the device turns on when
//! the voltage reaches a turn-on threshold and browns out when it falls to
//! a turn-off threshold (hysteresis, as in real power-management ICs such
//! as the BQ25570 family). Energy accounting uses `E = ½CV²`.

use zeiot_core::error::{ConfigError, Result};
use zeiot_core::time::SimDuration;
use zeiot_core::units::{Joule, Watt};

/// A capacitor energy store with turn-on/turn-off hysteresis.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_energy::capacitor::Capacitor;
/// use zeiot_core::units::Watt;
/// use zeiot_core::time::SimDuration;
///
/// // 100 µF, turn on at 2.4 V, brown out at 1.8 V, max 3.0 V.
/// let mut cap = Capacitor::new(100e-6, 2.4, 1.8, 3.0)?;
/// assert!(!cap.is_on());
/// cap.charge(Watt::new(1e-3), SimDuration::from_secs(1));
/// assert!(cap.is_on());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    capacitance_f: f64,
    turn_on_v: f64,
    turn_off_v: f64,
    max_v: f64,
    voltage_v: f64,
    on: bool,
    total_harvested: Joule,
    total_consumed: Joule,
    total_wasted: Joule,
    brownouts: u64,
}

impl Capacitor {
    /// Creates an empty capacitor.
    ///
    /// # Errors
    ///
    /// Returns an error unless `capacitance_f > 0` and
    /// `0 < turn_off_v < turn_on_v <= max_v`.
    pub fn new(capacitance_f: f64, turn_on_v: f64, turn_off_v: f64, max_v: f64) -> Result<Self> {
        if !(capacitance_f > 0.0 && capacitance_f.is_finite()) {
            return Err(ConfigError::new("capacitance_f", "must be positive"));
        }
        if !(turn_off_v > 0.0 && turn_off_v < turn_on_v && turn_on_v <= max_v) {
            return Err(ConfigError::new(
                "thresholds",
                format!(
                    "need 0 < turn_off ({turn_off_v}) < turn_on ({turn_on_v}) <= max ({max_v})"
                ),
            ));
        }
        Ok(Self {
            capacitance_f,
            turn_on_v,
            turn_off_v,
            max_v,
            voltage_v: 0.0,
            on: false,
            total_harvested: Joule::new(0.0),
            total_consumed: Joule::new(0.0),
            total_wasted: Joule::new(0.0),
            brownouts: 0,
        })
    }

    /// Current capacitor voltage.
    pub fn voltage(&self) -> f64 {
        self.voltage_v
    }

    /// Stored energy (`½CV²`).
    pub fn stored(&self) -> Joule {
        Joule::new(0.5 * self.capacitance_f * self.voltage_v * self.voltage_v)
    }

    /// Usable energy above the turn-off threshold — what the device can
    /// actually spend before browning out.
    pub fn usable(&self) -> Joule {
        let floor = 0.5 * self.capacitance_f * self.turn_off_v * self.turn_off_v;
        Joule::new((self.stored().value() - floor).max(0.0))
    }

    /// Whether the device is powered (past turn-on, not browned out).
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Number of brownouts (on→off transitions) so far.
    pub fn brownouts(&self) -> u64 {
        self.brownouts
    }

    /// Total energy harvested into the store.
    pub fn total_harvested(&self) -> Joule {
        self.total_harvested
    }

    /// Total energy discharged for useful work.
    pub fn total_consumed(&self) -> Joule {
        self.total_consumed
    }

    /// Energy that arrived while the capacitor was full and was lost.
    pub fn total_wasted(&self) -> Joule {
        self.total_wasted
    }

    /// Accumulates `power` for `duration`, clipping at the maximum
    /// voltage. Returns the energy actually stored.
    pub fn charge(&mut self, power: Watt, duration: SimDuration) -> Joule {
        assert!(power.value() >= 0.0, "charge power must be non-negative");
        let offered = power.energy_over(duration);
        let cap_energy = 0.5 * self.capacitance_f * self.max_v * self.max_v;
        let headroom = (cap_energy - self.stored().value()).max(0.0);
        let stored = offered.value().min(headroom);
        let wasted = offered.value() - stored;
        self.total_harvested += Joule::new(stored);
        self.total_wasted += Joule::new(wasted);
        let new_energy = self.stored().value() + stored;
        self.voltage_v = (2.0 * new_energy / self.capacitance_f).sqrt();
        if !self.on && self.voltage_v >= self.turn_on_v {
            self.on = true;
        }
        Joule::new(stored)
    }

    /// Attempts to spend `energy`; succeeds only while the device is on
    /// and the withdrawal would not push the voltage below turn-off.
    /// On failure nothing is withdrawn.
    pub fn try_discharge(&mut self, energy: Joule) -> bool {
        assert!(
            energy.value() >= 0.0,
            "discharge energy must be non-negative"
        );
        if !self.on {
            return false;
        }
        if energy.value() > self.usable().value() {
            return false;
        }
        let new_energy = self.stored().value() - energy.value();
        self.voltage_v = (2.0 * new_energy / self.capacitance_f).sqrt();
        self.total_consumed += energy;
        true
    }

    /// Spends `energy` unconditionally (used to model idle leakage or a
    /// load the device cannot gate); brownout occurs if the voltage falls
    /// to the turn-off threshold. Returns the energy actually withdrawn.
    pub fn drain(&mut self, energy: Joule) -> Joule {
        assert!(energy.value() >= 0.0, "drain energy must be non-negative");
        let available = self.stored().value();
        let taken = energy.value().min(available);
        let new_energy = available - taken;
        self.voltage_v = (2.0 * new_energy / self.capacitance_f).sqrt();
        self.total_consumed += Joule::new(taken);
        if self.on && self.voltage_v <= self.turn_off_v {
            self.on = false;
            self.brownouts += 1;
        }
        Joule::new(taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> Capacitor {
        Capacitor::new(100e-6, 2.4, 1.8, 3.0).unwrap()
    }

    #[test]
    fn starts_empty_and_off() {
        let c = cap();
        assert_eq!(c.voltage(), 0.0);
        assert_eq!(c.stored().value(), 0.0);
        assert!(!c.is_on());
    }

    #[test]
    fn rejects_invalid_thresholds() {
        assert!(Capacitor::new(0.0, 2.4, 1.8, 3.0).is_err());
        assert!(Capacitor::new(100e-6, 1.8, 2.4, 3.0).is_err()); // on < off
        assert!(Capacitor::new(100e-6, 3.5, 1.8, 3.0).is_err()); // on > max
        assert!(Capacitor::new(100e-6, 2.4, 0.0, 3.0).is_err()); // off == 0
    }

    #[test]
    fn charging_raises_voltage_and_turns_on() {
        let mut c = cap();
        // Energy to reach 2.4 V: ½·100µF·2.4² = 288 µJ.
        c.charge(Watt::new(288e-6), SimDuration::from_secs(1));
        assert!((c.voltage() - 2.4).abs() < 1e-9);
        assert!(c.is_on());
    }

    #[test]
    fn voltage_clips_at_max() {
        let mut c = cap();
        c.charge(Watt::new(1.0), SimDuration::from_secs(1)); // way too much
        assert!((c.voltage() - 3.0).abs() < 1e-9);
        assert!(c.total_wasted().value() > 0.9);
    }

    #[test]
    fn energy_conservation() {
        let mut c = cap();
        c.charge(Watt::new(400e-6), SimDuration::from_secs(1));
        let stored_before = c.stored().value();
        assert!(c.try_discharge(Joule::from_microjoules(50.0)));
        let stored_after = c.stored().value();
        assert!((stored_before - stored_after - 50e-6).abs() < 1e-12);
        // harvested == stored + consumed (no waste in this scenario).
        assert!(
            (c.total_harvested().value() - (c.stored().value() + c.total_consumed().value())).abs()
                < 1e-12
        );
    }

    #[test]
    fn discharge_fails_when_off() {
        let mut c = cap();
        c.charge(Watt::new(100e-6), SimDuration::from_secs(1)); // 100 µJ < 288 µJ
        assert!(!c.is_on());
        assert!(!c.try_discharge(Joule::from_microjoules(1.0)));
    }

    #[test]
    fn discharge_fails_rather_than_browning_out() {
        let mut c = cap();
        c.charge(Watt::new(288e-6), SimDuration::from_secs(1)); // exactly 2.4 V
        let usable = c.usable();
        assert!(!c.try_discharge(Joule::new(usable.value() + 1e-6)));
        assert!(c.try_discharge(usable));
        // Still on: voltage exactly at turn-off is allowed by try_discharge.
        assert!((c.voltage() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn drain_causes_brownout_and_hysteresis() {
        let mut c = cap();
        c.charge(Watt::new(288e-6), SimDuration::from_secs(1));
        assert!(c.is_on());
        c.drain(Joule::from_microjoules(200.0));
        assert!(!c.is_on());
        assert_eq!(c.brownouts(), 1);
        // Re-charging past turn-off but below turn-on must NOT turn on.
        // (After the drain ~88 µJ remain; +100 µJ lands between the 162 µJ
        // turn-off level and the 288 µJ turn-on level.)
        c.charge(Watt::new(100e-6), SimDuration::from_secs(1));
        assert!(c.voltage() > 1.8 && c.voltage() < 2.4);
        assert!(!c.is_on());
        // Reaching turn-on again powers the device.
        c.charge(Watt::new(288e-6), SimDuration::from_secs(1));
        assert!(c.is_on());
    }

    #[test]
    fn drain_cannot_take_more_than_stored() {
        let mut c = cap();
        c.charge(Watt::new(10e-6), SimDuration::from_secs(1));
        let taken = c.drain(Joule::new(1.0));
        assert!(taken.value() <= 10e-6 + 1e-12);
        assert_eq!(c.voltage(), 0.0);
    }

    #[test]
    fn usable_is_zero_below_turn_off() {
        let mut c = cap();
        c.charge(Watt::new(50e-6), SimDuration::from_secs(1)); // < 162 µJ floor
        assert_eq!(c.usable().value(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn conservation_under_random_ops(
            ops in proptest::collection::vec((0u8..3, 0.0f64..500.0), 1..100)
        ) {
            let mut c = Capacitor::new(100e-6, 2.4, 1.8, 3.0).unwrap();
            for (kind, amount_uj) in ops {
                let e = Joule::from_microjoules(amount_uj);
                match kind {
                    0 => {
                        c.charge(Watt::new(e.value()), SimDuration::from_secs(1));
                    }
                    1 => {
                        let _ = c.try_discharge(e);
                    }
                    _ => {
                        c.drain(e);
                    }
                }
                // Invariants: voltage within [0, max]; books balance.
                prop_assert!(c.voltage() >= 0.0 && c.voltage() <= 3.0 + 1e-9);
                let books = c.total_harvested().value()
                    - c.total_consumed().value()
                    - c.stored().value();
                prop_assert!(books.abs() < 1e-9, "books off by {books}");
            }
        }
    }
}
