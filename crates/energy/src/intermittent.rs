//! Intermittent execution.
//!
//! A harvesting device computes in bursts: the capacitor charges until
//! turn-on, the device runs (draining faster than it harvests), browns out,
//! and repeats. Work that is not checkpointed before a brownout is lost —
//! the defining systems problem of batteryless computing, and the reason
//! the paper argues single devices "do not work" alone (§V) and must be
//! orchestrated.
//!
//! [`IntermittentDevice::run`] advances this cycle over simulated time in
//! fixed steps and reports progress, duty cycle and energy accounting.

use crate::capacitor::Capacitor;
use crate::consumer::{DeviceState, PowerProfile};
use crate::harvester::HarvestSource;
use zeiot_core::error::{require_positive, Result};
use zeiot_core::rng::SeedRng;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_core::units::Joule;
use zeiot_obs::{Label, Recorder, Severity};

/// Maximum points the observed capacitor-voltage series keeps per run;
/// longer runs are decimated by a fixed stride so memory stays bounded.
pub const MAX_VOLTAGE_SAMPLES: u64 = 2048;

/// A unit of work measured in compute steps, with checkpointing cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    total_steps: u64,
    checkpoint_interval: u64,
    checkpoint_cost: Joule,
    step_energy: Joule,
}

impl Task {
    /// Creates a task of `total_steps` steps, each costing `step_energy`,
    /// checkpointing every `checkpoint_interval` steps at `checkpoint_cost`
    /// per checkpoint.
    ///
    /// # Errors
    ///
    /// Returns an error if any count is zero or any energy is not
    /// strictly positive.
    pub fn new(
        total_steps: u64,
        checkpoint_interval: u64,
        checkpoint_cost: Joule,
        step_energy: Joule,
    ) -> Result<Self> {
        if total_steps == 0 || checkpoint_interval == 0 {
            return Err(zeiot_core::error::ConfigError::new(
                "steps",
                "total_steps and checkpoint_interval must be non-zero",
            ));
        }
        require_positive("checkpoint_cost", checkpoint_cost.value())?;
        require_positive("step_energy", step_energy.value())?;
        Ok(Self {
            total_steps,
            checkpoint_interval,
            checkpoint_cost,
            step_energy,
        })
    }

    /// Total steps in the task.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }
}

/// Result of an intermittent run.
#[derive(Debug, Clone, PartialEq)]
pub struct IntermittentOutcome {
    /// Steps of durable (checkpointed or completed) progress.
    pub durable_steps: u64,
    /// Steps executed including those later lost to brownouts.
    pub executed_steps: u64,
    /// Whether the task completed within the time budget.
    pub completed: bool,
    /// Time at completion, if completed.
    pub completion_time: Option<SimTime>,
    /// Number of brownouts experienced.
    pub brownouts: u64,
    /// Fraction of time the device was on.
    pub duty_cycle: f64,
}

impl IntermittentOutcome {
    /// Steps of progress lost to brownouts (executed but not durable).
    pub fn wasted_steps(&self) -> u64 {
        self.executed_steps - self.durable_steps.min(self.executed_steps)
    }
}

/// A harvesting device executing a task intermittently.
#[derive(Debug)]
pub struct IntermittentDevice<H> {
    harvester: H,
    capacitor: Capacitor,
    profile: PowerProfile,
    step_duration: SimDuration,
}

impl<H: HarvestSource> IntermittentDevice<H> {
    /// Creates a device from its harvester, store and power profile;
    /// `step_duration` is the wall time of one compute step.
    ///
    /// # Errors
    ///
    /// Returns an error if `step_duration` is zero.
    pub fn new(
        harvester: H,
        capacitor: Capacitor,
        profile: PowerProfile,
        step_duration: SimDuration,
    ) -> Result<Self> {
        if step_duration.is_zero() {
            return Err(zeiot_core::error::ConfigError::new(
                "step_duration",
                "must be non-zero",
            ));
        }
        Ok(Self {
            harvester,
            capacitor,
            profile,
            step_duration,
        })
    }

    /// Read access to the capacitor for inspection.
    pub fn capacitor(&self) -> &Capacitor {
        &self.capacitor
    }

    /// Runs `task` for at most `budget` of simulated time.
    ///
    /// Each tick of `step_duration`: harvest; if on, execute one step
    /// (draining step energy + compute power) and checkpoint on schedule;
    /// if off, just charge. Progress since the last checkpoint is lost at
    /// each brownout.
    pub fn run(
        &mut self,
        task: &Task,
        budget: SimDuration,
        rng: &mut SeedRng,
    ) -> IntermittentOutcome {
        self.run_inner(task, budget, rng, None)
    }

    /// Like [`IntermittentDevice::run`], additionally recording the
    /// device's energy life into `recorder` under `label`:
    ///
    /// - `energy.capacitor_v` time-series (decimated to at most
    ///   [`MAX_VOLTAGE_SAMPLES`] points);
    /// - `energy.harvested_uj` / `energy.consumed_uj` counters
    ///   (microjoules, rounded);
    /// - `energy.power_cycles`, `energy.brownouts` and
    ///   `energy.checkpoints` counters, with an info trace per turn-on
    ///   and a warn trace per brownout.
    ///
    /// The outcome is identical to an unobserved run with the same seed.
    pub fn run_observed(
        &mut self,
        task: &Task,
        budget: SimDuration,
        rng: &mut SeedRng,
        recorder: &mut Recorder,
        label: Label,
    ) -> IntermittentOutcome {
        self.run_inner(task, budget, rng, Some((recorder, label)))
    }

    /// Simulates the device under a continuous compute load for `budget`
    /// and returns its power-state transition trace: `(time, is_on)`
    /// pairs, starting with the initial state at time zero and then one
    /// entry per turn-on/brownout edge. The trace is what
    /// `zeiot_fault::FaultPlan::with_outages_from_trace` consumes to turn
    /// capacitor brownouts into radio outage windows.
    pub fn power_trace(&mut self, budget: SimDuration, rng: &mut SeedRng) -> Vec<(SimTime, bool)> {
        let mut now = SimTime::ZERO;
        let deadline = SimTime::ZERO + budget;
        let mut trace = vec![(now, self.capacitor.is_on())];
        while now < deadline {
            let harvest = self.harvester.power_at(now, rng);
            self.capacitor.charge(harvest, self.step_duration);
            if self.capacitor.is_on() {
                // Always-on compute draw: the worst case for brownouts.
                let draw = self
                    .profile
                    .energy(DeviceState::Compute, self.step_duration);
                self.capacitor.drain(draw);
            }
            now += self.step_duration;
            let is_on = self.capacitor.is_on();
            if is_on != trace.last().map(|&(_, s)| s).unwrap_or(!is_on) {
                trace.push((now, is_on));
            }
        }
        trace
    }

    fn run_inner(
        &mut self,
        task: &Task,
        budget: SimDuration,
        rng: &mut SeedRng,
        mut observe: Option<(&mut Recorder, Label)>,
    ) -> IntermittentOutcome {
        let mut now = SimTime::ZERO;
        let deadline = SimTime::ZERO + budget;
        let mut durable: u64 = 0;
        let mut volatile: u64 = 0; // steps since last checkpoint
        let mut executed: u64 = 0;
        let mut on_time = SimDuration::ZERO;
        let brownouts_before = self.capacitor.brownouts();
        let harvested_before = self.capacitor.total_harvested();
        let consumed_before = self.capacitor.total_consumed();
        let total_ticks = (budget.as_secs_f64() / self.step_duration.as_secs_f64()).ceil();
        let sample_stride = (total_ticks as u64).div_ceil(MAX_VOLTAGE_SAMPLES).max(1);
        let mut tick: u64 = 0;

        while now < deadline && durable + volatile < task.total_steps {
            let was_on_at_tick_start = self.capacitor.is_on();
            let harvest = self.harvester.power_at(now, rng);
            self.capacitor.charge(harvest, self.step_duration);

            if self.capacitor.is_on() {
                on_time += self.step_duration;
                // Base compute-state draw for the tick plus the step cost.
                let tick_energy = self
                    .profile
                    .energy(DeviceState::Compute, self.step_duration);
                let step_total = Joule::new(tick_energy.value() + task.step_energy.value());
                if self.capacitor.try_discharge(step_total) {
                    volatile += 1;
                    executed += 1;
                    if volatile >= task.checkpoint_interval
                        && self.capacitor.try_discharge(task.checkpoint_cost)
                    {
                        durable += volatile;
                        volatile = 0;
                        if let Some((rec, label)) = observe.as_mut() {
                            rec.inc("energy.checkpoints", label.clone());
                        }
                    }
                } else {
                    // Not enough usable energy: the device keeps draining
                    // its base load until brownout.
                    let idle = self.profile.energy(DeviceState::Sleep, self.step_duration);
                    let was_on = self.capacitor.is_on();
                    self.capacitor.drain(Joule::new(
                        idle.value()
                            + self
                                .profile
                                .energy(DeviceState::Compute, self.step_duration)
                                .value(),
                    ));
                    if was_on && !self.capacitor.is_on() {
                        volatile = 0; // brownout: lose unsaved work
                    }
                }
            }
            if let Some((rec, label)) = observe.as_mut() {
                let is_on = self.capacitor.is_on();
                if is_on && !was_on_at_tick_start {
                    rec.inc("energy.power_cycles", label.clone());
                    rec.trace(now, Severity::Info, label.clone(), "power on");
                } else if !is_on && was_on_at_tick_start {
                    rec.inc("energy.brownouts", label.clone());
                    rec.trace(now, Severity::Warn, label.clone(), "brownout");
                }
                if tick.is_multiple_of(sample_stride) {
                    rec.sample(
                        "energy.capacitor_v",
                        label.clone(),
                        now,
                        self.capacitor.voltage(),
                    );
                }
            }
            tick += 1;
            now += self.step_duration;
        }

        if let Some((rec, label)) = observe.as_mut() {
            let harvested = self.capacitor.total_harvested().value() - harvested_before.value();
            let consumed = self.capacitor.total_consumed().value() - consumed_before.value();
            rec.add(
                "energy.harvested_uj",
                label.clone(),
                (harvested * 1e6).round() as u64,
            );
            rec.add(
                "energy.consumed_uj",
                label.clone(),
                (consumed * 1e6).round() as u64,
            );
        }

        let completed = durable + volatile >= task.total_steps;
        // Completion makes in-flight volatile work durable (the task's
        // final output is its own checkpoint).
        if completed {
            durable = task.total_steps;
        }
        let elapsed = now.duration_since(SimTime::ZERO);
        IntermittentOutcome {
            durable_steps: durable.min(task.total_steps),
            executed_steps: executed,
            completed,
            completion_time: completed.then_some(now),
            brownouts: self.capacitor.brownouts() - brownouts_before,
            duty_cycle: if elapsed.is_zero() {
                0.0
            } else {
                on_time.as_secs_f64() / elapsed.as_secs_f64()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::ConstantSource;
    use zeiot_core::units::Watt;

    fn device(harvest_w: f64) -> IntermittentDevice<ConstantSource> {
        IntermittentDevice::new(
            ConstantSource::new(Watt::new(harvest_w)).unwrap(),
            Capacitor::new(100e-6, 2.4, 1.8, 3.0).unwrap(),
            PowerProfile::backscatter_tag().unwrap(),
            SimDuration::from_millis(10),
        )
        .unwrap()
    }

    fn small_task() -> Task {
        Task::new(
            100,
            10,
            Joule::from_microjoules(1.0),
            Joule::from_microjoules(0.5),
        )
        .unwrap()
    }

    #[test]
    fn ample_harvest_completes_task() {
        let mut dev = device(1e-3); // 1 mW: plenty
        let mut rng = SeedRng::new(1);
        let out = dev.run(&small_task(), SimDuration::from_secs(60), &mut rng);
        assert!(out.completed, "{out:?}");
        assert_eq!(out.durable_steps, 100);
        assert_eq!(out.brownouts, 0);
        assert!(out.completion_time.is_some());
    }

    #[test]
    fn zero_harvest_makes_no_progress() {
        let mut dev = device(0.0);
        let mut rng = SeedRng::new(2);
        let out = dev.run(&small_task(), SimDuration::from_secs(10), &mut rng);
        assert!(!out.completed);
        assert_eq!(out.durable_steps, 0);
        assert_eq!(out.executed_steps, 0);
        assert_eq!(out.duty_cycle, 0.0);
    }

    #[test]
    fn scarce_harvest_causes_intermittency() {
        // 30 µW harvest vs ~70 µW total active draw: must duty-cycle.
        let mut dev = device(30e-6);
        let mut rng = SeedRng::new(3);
        let task = Task::new(
            10_000,
            10,
            Joule::from_microjoules(1.0),
            Joule::from_microjoules(2.0),
        )
        .unwrap();
        let out = dev.run(&task, SimDuration::from_secs(120), &mut rng);
        assert!(!out.completed);
        assert!(out.duty_cycle > 0.0 && out.duty_cycle < 1.0, "{out:?}");
        assert!(out.executed_steps > 0);
    }

    #[test]
    fn duty_cycle_scales_with_harvest_power() {
        let mut rng = SeedRng::new(4);
        let task = Task::new(
            1_000_000,
            10,
            Joule::from_microjoules(1.0),
            Joule::from_microjoules(5.0),
        )
        .unwrap();
        let mut weak = device(20e-6);
        let mut strong = device(200e-6);
        let out_weak = weak.run(&task, SimDuration::from_secs(60), &mut rng);
        let out_strong = strong.run(&task, SimDuration::from_secs(60), &mut rng);
        assert!(
            out_strong.duty_cycle > out_weak.duty_cycle,
            "weak={:?} strong={:?}",
            out_weak.duty_cycle,
            out_strong.duty_cycle
        );
        assert!(out_strong.executed_steps > out_weak.executed_steps);
    }

    #[test]
    fn durable_progress_is_monotone_in_budget() {
        let mut rng = SeedRng::new(5);
        let task = Task::new(
            1_000_000,
            10,
            Joule::from_microjoules(1.0),
            Joule::from_microjoules(5.0),
        )
        .unwrap();
        let mut d1 = device(50e-6);
        let out_short = d1.run(&task, SimDuration::from_secs(20), &mut rng);
        let mut rng2 = SeedRng::new(5);
        let mut d2 = device(50e-6);
        let out_long = d2.run(&task, SimDuration::from_secs(60), &mut rng2);
        assert!(out_long.durable_steps >= out_short.durable_steps);
    }

    #[test]
    fn wasted_steps_accounting() {
        let out = IntermittentOutcome {
            durable_steps: 40,
            executed_steps: 55,
            completed: false,
            completion_time: None,
            brownouts: 2,
            duty_cycle: 0.3,
        };
        assert_eq!(out.wasted_steps(), 15);
    }

    #[test]
    fn observed_run_matches_unobserved_outcome() {
        let mut rng_a = SeedRng::new(11);
        let mut rng_b = SeedRng::new(11);
        let task = Task::new(
            1_000_000,
            10,
            Joule::from_microjoules(1.0),
            Joule::from_microjoules(5.0),
        )
        .unwrap();
        let mut plain = device(20e-6);
        let out_a = plain.run(&task, SimDuration::from_secs(120), &mut rng_a);
        let mut observed = device(20e-6);
        let mut rec = Recorder::new();
        let label = Label::device(zeiot_core::id::DeviceId::new(3));
        let out_b = observed.run_observed(
            &task,
            SimDuration::from_secs(120),
            &mut rng_b,
            &mut rec,
            label.clone(),
        );
        assert_eq!(out_a, out_b);

        // Voltage series exists, is bounded, and spans the run.
        let series = rec.series_ref("energy.capacitor_v", &label).unwrap();
        assert!(!series.points().is_empty());
        assert!(series.points().len() as u64 <= MAX_VOLTAGE_SAMPLES + 1);
        for &(_, v) in series.points() {
            assert!((0.0..=3.0).contains(&v), "voltage {v} out of range");
        }

        // The intermittent regime power-cycles and browns out.
        assert!(rec.counter_value("energy.power_cycles", &label) > 0);
        let brownouts = rec.counter_value("energy.brownouts", &label);
        assert!(brownouts > 0);
        assert!(brownouts <= out_b.brownouts);
        assert!(rec.counter_value("energy.checkpoints", &label) > 0);
        assert!(rec.counter_value("energy.harvested_uj", &label) > 0);
        assert!(rec.counter_value("energy.consumed_uj", &label) > 0);

        // Brownout traces are warnings.
        assert!(rec
            .trace_buffer()
            .iter()
            .any(|(_, e)| e.severity == Severity::Warn && e.message == "brownout"));
    }

    #[test]
    fn power_trace_records_state_transitions() {
        // Harvest below the 20 µW compute draw: the device must
        // duty-cycle, so the trace has alternating on/off edges.
        let mut dev = device(10e-6);
        let mut rng = SeedRng::new(7);
        let trace = dev.power_trace(SimDuration::from_secs(120), &mut rng);
        assert!(trace.len() > 2, "expected duty-cycling, got {trace:?}");
        assert_eq!(trace[0].0, SimTime::ZERO);
        for pair in trace.windows(2) {
            assert!(pair[0].0 < pair[1].0, "trace out of order: {pair:?}");
            assert_ne!(pair[0].1, pair[1].1, "consecutive equal states");
        }
        // Deterministic given the same seed.
        let mut dev2 = device(10e-6);
        let mut rng2 = SeedRng::new(7);
        assert_eq!(
            trace,
            dev2.power_trace(SimDuration::from_secs(120), &mut rng2)
        );
    }

    #[test]
    fn power_trace_with_ample_harvest_stays_on() {
        let mut dev = device(1e-3);
        let mut rng = SeedRng::new(8);
        let trace = dev.power_trace(SimDuration::from_secs(30), &mut rng);
        // Initial state plus at most one turn-on edge.
        assert!(trace.len() <= 2, "{trace:?}");
        assert!(trace.last().unwrap().1, "device should end up on");
    }

    #[test]
    fn task_validation() {
        assert!(Task::new(0, 1, Joule::new(1e-6), Joule::new(1e-6)).is_err());
        assert!(Task::new(1, 0, Joule::new(1e-6), Joule::new(1e-6)).is_err());
        assert!(Task::new(1, 1, Joule::new(0.0), Joule::new(1e-6)).is_err());
        assert!(Task::new(1, 1, Joule::new(1e-6), Joule::new(0.0)).is_err());
    }

    #[test]
    fn zero_step_duration_rejected() {
        let r = IntermittentDevice::new(
            ConstantSource::new(Watt::new(1e-6)).unwrap(),
            Capacitor::new(100e-6, 2.4, 1.8, 3.0).unwrap(),
            PowerProfile::backscatter_tag().unwrap(),
            SimDuration::ZERO,
        );
        assert!(r.is_err());
    }
}
