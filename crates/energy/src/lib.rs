//! # zeiot-energy
//!
//! The zero-energy device model: how a battery-less IoT device harvests,
//! stores and spends energy.
//!
//! The paper's core premise (§I, §III.A) is that sensing costs µW, but
//! conventional radio costs tens–hundreds of mW, while backscatter costs
//! ~10 µW — a factor of ~1/10,000 — so energy-harvesting devices can only
//! communicate by backscatter. This crate provides:
//!
//! - [`harvester`] — harvest sources: constant, solar (diurnal), RF (from
//!   a received power level), vibration (bursty);
//! - [`capacitor`] — the storage element with turn-on/turn-off hysteresis;
//! - [`consumer`] — per-state power draw profiles and task energy costs;
//! - [`intermittent`] — intermittent execution: a device that computes in
//!   bursts between power failures, with checkpointing.
//!
//! # Example: can a tag afford to backscatter?
//!
//! ```
//! # fn main() -> Result<(), zeiot_core::ConfigError> {
//! use zeiot_energy::capacitor::Capacitor;
//! use zeiot_core::units::{Joule, Watt};
//! use zeiot_core::time::SimDuration;
//!
//! let mut cap = Capacitor::new(47e-6, 2.4, 1.8, 3.0)?; // 47 µF
//! // 50 µW harvested for 3 s exceeds the 135 µJ turn-on level.
//! cap.charge(Watt::new(50e-6), SimDuration::from_secs(3));
//! assert!(cap.is_on());
//! // One backscatter transmission at 10 µW for 4 ms:
//! let cost = Watt::new(10e-6).energy_over(SimDuration::from_millis(4));
//! assert!(cap.try_discharge(cost));
//! # Ok(())
//! # }
//! ```

pub mod capacitor;
pub mod consumer;
pub mod harvester;
pub mod intermittent;

pub use capacitor::Capacitor;
pub use consumer::{DeviceState, PowerProfile};
pub use harvester::{ConstantSource, HarvestSource, RfHarvester, SolarSource, VibrationSource};
pub use intermittent::{IntermittentDevice, IntermittentOutcome, Task};
