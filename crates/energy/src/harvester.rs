//! Energy-harvest sources.
//!
//! Each source reports its instantaneous harvested power at a simulated
//! time; stochastic sources additionally take an RNG. Power values are
//! always non-negative.

use zeiot_core::error::{require_in_range, require_non_negative, require_positive, Result};
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimTime;
use zeiot_core::units::{Dbm, Watt};

/// A source of harvested power.
pub trait HarvestSource {
    /// Instantaneous harvested power at `time`.
    fn power_at(&self, time: SimTime, rng: &mut SeedRng) -> Watt;

    /// Long-run mean power of this source, for budgeting.
    fn mean_power(&self) -> Watt;
}

/// A constant harvest source (e.g. a regulated test supply, or thermal
/// gradient harvesting in a stable environment).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_energy::harvester::{ConstantSource, HarvestSource};
/// use zeiot_core::units::Watt;
///
/// let src = ConstantSource::new(Watt::new(20e-6))?;
/// assert_eq!(src.mean_power().value(), 20e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantSource {
    power: Watt,
}

impl ConstantSource {
    /// Creates a constant source.
    ///
    /// # Errors
    ///
    /// Returns an error if `power` is negative or not finite.
    pub fn new(power: Watt) -> Result<Self> {
        require_non_negative("power", power.value())?;
        Ok(Self { power })
    }
}

impl HarvestSource for ConstantSource {
    fn power_at(&self, _time: SimTime, _rng: &mut SeedRng) -> Watt {
        self.power
    }

    fn mean_power(&self) -> Watt {
        self.power
    }
}

/// Indoor-light / solar harvesting with a diurnal profile: zero at night,
/// a raised-cosine bump during the day, plus small fluctuation.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_energy::harvester::{HarvestSource, SolarSource};
/// use zeiot_core::rng::SeedRng;
/// use zeiot_core::time::SimTime;
/// use zeiot_core::units::Watt;
///
/// let sun = SolarSource::new(Watt::new(100e-6), 6.0, 18.0)?;
/// let mut rng = SeedRng::new(1);
/// let midnight = sun.power_at(SimTime::ZERO, &mut rng);
/// let noon = sun.power_at(SimTime::from_secs(12 * 3600), &mut rng);
/// assert_eq!(midnight.value(), 0.0);
/// assert!(noon.value() > 50e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolarSource {
    peak: Watt,
    sunrise_h: f64,
    sunset_h: f64,
    jitter_fraction: f64,
}

impl SolarSource {
    /// Creates a solar source peaking at `peak` between `sunrise_h` and
    /// `sunset_h` (hours of day, 0–24).
    ///
    /// # Errors
    ///
    /// Returns an error if `peak` is negative, hours are outside `[0, 24]`
    /// or sunrise is not before sunset.
    pub fn new(peak: Watt, sunrise_h: f64, sunset_h: f64) -> Result<Self> {
        require_non_negative("peak", peak.value())?;
        let sunrise_h = require_in_range("sunrise_h", sunrise_h, 0.0, 24.0)?;
        let sunset_h = require_in_range("sunset_h", sunset_h, 0.0, 24.0)?;
        if sunrise_h >= sunset_h {
            return Err(zeiot_core::error::ConfigError::new(
                "sunrise_h",
                "must precede sunset_h",
            ));
        }
        Ok(Self {
            peak,
            sunrise_h,
            sunset_h,
            jitter_fraction: 0.05,
        })
    }

    fn hour_of_day(time: SimTime) -> f64 {
        (time.as_secs_f64() / 3600.0) % 24.0
    }
}

impl HarvestSource for SolarSource {
    fn power_at(&self, time: SimTime, rng: &mut SeedRng) -> Watt {
        let h = Self::hour_of_day(time);
        if h < self.sunrise_h || h > self.sunset_h {
            return Watt::new(0.0);
        }
        let span = self.sunset_h - self.sunrise_h;
        let phase = (h - self.sunrise_h) / span; // 0..1 across the day
        let envelope = (std::f64::consts::PI * phase).sin();
        let jitter = 1.0 + self.jitter_fraction * rng.normal();
        Watt::new((self.peak.value() * envelope * jitter).max(0.0))
    }

    fn mean_power(&self) -> Watt {
        // Mean of sin over [0, π] is 2/π; day fraction scales it.
        let day_fraction = (self.sunset_h - self.sunrise_h) / 24.0;
        Watt::new(self.peak.value() * (2.0 / std::f64::consts::PI) * day_fraction)
    }
}

/// RF energy harvesting from a received carrier (RFID-style): converts the
/// incident power at the tag with a rectifier efficiency, below a
/// sensitivity threshold nothing is harvested.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_energy::harvester::RfHarvester;
/// use zeiot_core::units::Dbm;
///
/// let h = RfHarvester::new(0.3, Dbm::new(-20.0))?;
/// // -10 dBm incident = 100 µW; at 30 % efficiency: 30 µW.
/// let p = h.harvested(Dbm::new(-10.0));
/// assert!((p.value() - 30e-6).abs() < 1e-9);
/// // Below sensitivity: zero.
/// assert_eq!(h.harvested(Dbm::new(-30.0)).value(), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfHarvester {
    efficiency: f64,
    sensitivity: Dbm,
    incident: Dbm,
}

impl RfHarvester {
    /// Creates an RF harvester with rectifier `efficiency` in `(0, 1]` and
    /// a minimum incident power `sensitivity`.
    ///
    /// # Errors
    ///
    /// Returns an error if `efficiency` is outside `(0, 1]`.
    pub fn new(efficiency: f64, sensitivity: Dbm) -> Result<Self> {
        let efficiency = require_positive("efficiency", efficiency)?;
        let efficiency = require_in_range("efficiency", efficiency, f64::MIN_POSITIVE, 1.0)?;
        Ok(Self {
            efficiency,
            sensitivity,
            incident: Dbm::new(-200.0),
        })
    }

    /// Sets the current incident carrier power at the tag (e.g. from a
    /// `zeiot_rf`-style backscatter budget's power-at-tag figure).
    pub fn set_incident(&mut self, incident: Dbm) {
        self.incident = incident;
    }

    /// Harvested power for a given incident power.
    pub fn harvested(&self, incident: Dbm) -> Watt {
        if incident < self.sensitivity {
            Watt::new(0.0)
        } else {
            Watt::new(incident.to_watt().value() * self.efficiency)
        }
    }
}

impl HarvestSource for RfHarvester {
    fn power_at(&self, _time: SimTime, _rng: &mut SeedRng) -> Watt {
        self.harvested(self.incident)
    }

    fn mean_power(&self) -> Watt {
        self.harvested(self.incident)
    }
}

/// Bursty vibration harvesting (e.g. the spring accelerometers of paper
/// §III.C or wind on sloping lands): bursts arrive as a Poisson process;
/// during a burst the source yields its burst power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VibrationSource {
    burst_power: Watt,
    burst_rate_hz: f64,
    burst_duration_s: f64,
}

impl VibrationSource {
    /// Creates a vibration source with bursts of `burst_power` lasting
    /// `burst_duration_s`, arriving at `burst_rate_hz`.
    ///
    /// # Errors
    ///
    /// Returns an error if the power is negative or rate/duration are not
    /// strictly positive.
    pub fn new(burst_power: Watt, burst_rate_hz: f64, burst_duration_s: f64) -> Result<Self> {
        require_non_negative("burst_power", burst_power.value())?;
        let burst_rate_hz = require_positive("burst_rate_hz", burst_rate_hz)?;
        let burst_duration_s = require_positive("burst_duration_s", burst_duration_s)?;
        Ok(Self {
            burst_power,
            burst_rate_hz,
            burst_duration_s,
        })
    }

    /// The fraction of time the source is bursting (capped at 1).
    pub fn duty_cycle(&self) -> f64 {
        (self.burst_rate_hz * self.burst_duration_s).min(1.0)
    }
}

impl HarvestSource for VibrationSource {
    fn power_at(&self, _time: SimTime, rng: &mut SeedRng) -> Watt {
        if rng.chance(self.duty_cycle()) {
            self.burst_power
        } else {
            Watt::new(0.0)
        }
    }

    fn mean_power(&self) -> Watt {
        Watt::new(self.burst_power.value() * self.duty_cycle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_source_is_constant() {
        let src = ConstantSource::new(Watt::new(5e-6)).unwrap();
        let mut rng = SeedRng::new(1);
        for s in [0u64, 100, 10_000] {
            assert_eq!(src.power_at(SimTime::from_secs(s), &mut rng).value(), 5e-6);
        }
    }

    #[test]
    fn constant_source_rejects_negative() {
        assert!(ConstantSource::new(Watt::new(-1.0)).is_err());
    }

    #[test]
    fn solar_zero_at_night_peak_at_noon() {
        let sun = SolarSource::new(Watt::new(100e-6), 6.0, 18.0).unwrap();
        let mut rng = SeedRng::new(2);
        assert_eq!(
            sun.power_at(SimTime::from_secs(3 * 3600), &mut rng).value(),
            0.0
        );
        assert_eq!(
            sun.power_at(SimTime::from_secs(22 * 3600), &mut rng)
                .value(),
            0.0
        );
        let noon = sun
            .power_at(SimTime::from_secs(12 * 3600), &mut rng)
            .value();
        assert!(noon > 80e-6, "noon={noon}");
    }

    #[test]
    fn solar_wraps_to_next_day() {
        let sun = SolarSource::new(Watt::new(100e-6), 6.0, 18.0).unwrap();
        let mut rng = SeedRng::new(3);
        let day1_noon = 12.0 * 3600.0;
        let day5_noon = day1_noon + 4.0 * 86_400.0;
        let p = sun.power_at(SimTime::from_secs_f64(day5_noon), &mut rng);
        assert!(p.value() > 50e-6);
    }

    #[test]
    fn solar_mean_power_is_plausible() {
        let sun = SolarSource::new(Watt::new(100e-6), 6.0, 18.0).unwrap();
        let mut rng = SeedRng::new(4);
        // Empirical mean over one day at 1-minute resolution.
        let samples = 24 * 60;
        let mean: f64 = (0..samples)
            .map(|i| {
                sun.power_at(SimTime::from_secs(i as u64 * 60), &mut rng)
                    .value()
            })
            .sum::<f64>()
            / samples as f64;
        assert!(
            (mean - sun.mean_power().value()).abs() < 5e-6,
            "mean={mean}"
        );
    }

    #[test]
    fn solar_rejects_inverted_day() {
        assert!(SolarSource::new(Watt::new(1e-6), 18.0, 6.0).is_err());
    }

    #[test]
    fn rf_harvester_efficiency_and_sensitivity() {
        let h = RfHarvester::new(0.25, Dbm::new(-18.0)).unwrap();
        let p = h.harvested(Dbm::new(0.0)); // 1 mW incident
        assert!((p.value() - 0.25e-3).abs() < 1e-9);
        assert_eq!(h.harvested(Dbm::new(-18.01)).value(), 0.0);
    }

    #[test]
    fn rf_harvester_rejects_bad_efficiency() {
        assert!(RfHarvester::new(0.0, Dbm::new(-20.0)).is_err());
        assert!(RfHarvester::new(1.5, Dbm::new(-20.0)).is_err());
        assert!(RfHarvester::new(-0.1, Dbm::new(-20.0)).is_err());
    }

    #[test]
    fn rf_harvester_tracks_incident_power() {
        let mut h = RfHarvester::new(0.3, Dbm::new(-20.0)).unwrap();
        let mut rng = SeedRng::new(5);
        assert_eq!(h.power_at(SimTime::ZERO, &mut rng).value(), 0.0);
        h.set_incident(Dbm::new(-10.0));
        assert!(h.power_at(SimTime::ZERO, &mut rng).value() > 0.0);
    }

    #[test]
    fn vibration_mean_matches_duty_cycle() {
        let v = VibrationSource::new(Watt::new(1e-3), 0.5, 0.2).unwrap();
        assert!((v.duty_cycle() - 0.1).abs() < 1e-12);
        assert!((v.mean_power().value() - 1e-4).abs() < 1e-12);
        let mut rng = SeedRng::new(6);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|i| v.power_at(SimTime::from_secs(i as u64), &mut rng).value())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1e-4).abs() < 5e-6, "mean={mean}");
    }

    #[test]
    fn vibration_duty_cycle_capped_at_one() {
        let v = VibrationSource::new(Watt::new(1e-3), 10.0, 1.0).unwrap();
        assert_eq!(v.duty_cycle(), 1.0);
        assert_eq!(v.mean_power().value(), 1e-3);
    }
}
