//! The collection tree: who forwards to whom.
//!
//! A BFS tree rooted at the sink gives shortest-hop converge-cast routes.
//! Each node's *forwarding load* — its own report plus everything its
//! subtree generates — determines how many transmission slots it needs
//! per collection round, and therefore which node is the bottleneck.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::id::NodeId;
use zeiot_net::Topology;

/// A rooted collection tree over a topology.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_plan::tree::CollectionTree;
/// use zeiot_net::Topology;
/// use zeiot_core::id::NodeId;
///
/// let topo = Topology::grid(3, 3, 1.0, 1.1)?;
/// let tree = CollectionTree::build(&topo, NodeId::new(0))?;
/// assert_eq!(tree.subtree_size(NodeId::new(0)), 9); // root carries all
/// assert!(tree.parent(NodeId::new(8)).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionTree {
    sink: NodeId,
    /// Parent of each node (`None` for the sink and unreachable nodes).
    parent: Vec<Option<NodeId>>,
    /// Children lists.
    children: Vec<Vec<NodeId>>,
    /// Hop depth from the sink (`usize::MAX` = unreachable).
    depth: Vec<usize>,
    /// Nodes in the node's subtree including itself (0 = unreachable).
    subtree: Vec<usize>,
}

impl CollectionTree {
    /// Builds a BFS tree rooted at `sink`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sink id is out of range.
    pub fn build(topo: &Topology, sink: NodeId) -> Result<Self> {
        if sink.index() >= topo.len() {
            return Err(ConfigError::new("sink", "out of range"));
        }
        let n = topo.len();
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut depth = vec![usize::MAX; n];
        depth[sink.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(sink);
        while let Some(u) = queue.pop_front() {
            for &v in topo.neighbors(u) {
                if depth[v.index()] == usize::MAX {
                    depth[v.index()] = depth[u.index()] + 1;
                    parent[v.index()] = Some(u);
                    children[u.index()].push(v);
                    queue.push_back(v);
                }
            }
        }
        let mut tree = Self {
            sink,
            parent,
            children,
            depth,
            subtree: vec![0; n],
        };
        tree.recompute_subtrees();
        Ok(tree)
    }

    fn recompute_subtrees(&mut self) {
        let n = self.parent.len();
        self.subtree = vec![0; n];
        // Process nodes in decreasing depth so children are done first.
        let mut order: Vec<usize> = (0..n).filter(|&i| self.depth[i] != usize::MAX).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.depth[i]));
        for i in order {
            self.subtree[i] = 1 + self.children[i]
                .iter()
                .map(|c| self.subtree[c.index()])
                .sum::<usize>();
        }
    }

    /// The sink node.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Parent of `node` (`None` for the sink and unreachable nodes).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Hop depth of `node` from the sink, `None` when unreachable.
    pub fn depth(&self, node: NodeId) -> Option<usize> {
        let d = self.depth[node.index()];
        (d != usize::MAX).then_some(d)
    }

    /// Subtree size (reports per round the node must transmit upward,
    /// including its own); 0 when unreachable.
    pub fn subtree_size(&self, node: NodeId) -> usize {
        self.subtree[node.index()]
    }

    /// Nodes that cannot reach the sink.
    pub fn unreachable(&self) -> Vec<NodeId> {
        (0..self.parent.len())
            .filter(|&i| self.depth[i] == usize::MAX)
            .map(|i| NodeId::new(i as u32))
            .collect()
    }

    /// Whether every node reaches the sink.
    pub fn covers_all(&self) -> bool {
        self.depth.iter().all(|&d| d != usize::MAX)
    }

    /// The tree height (maximum depth of a reachable node).
    pub fn height(&self) -> usize {
        self.depth
            .iter()
            .filter(|&&d| d != usize::MAX)
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total number of hop-transmissions per full collection round
    /// (every node's report travels `depth` hops).
    pub fn transmissions_per_round(&self) -> usize {
        self.depth
            .iter()
            .filter(|&&d| d != usize::MAX)
            .sum::<usize>()
    }

    /// The path from `node` up to the sink, inclusive; `None` when
    /// unreachable.
    pub fn path_to_sink(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.depth(node)?;
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        Some(path)
    }

    /// Re-parents nodes after `failed` nodes die: each orphaned node
    /// (and transitively orphaned descendants) is re-attached via a
    /// fresh BFS over the degraded topology. Returns the new tree; nodes
    /// with no surviving route to the sink end up unreachable.
    ///
    /// # Errors
    ///
    /// Returns an error if the sink itself failed.
    pub fn repair(&self, topo: &Topology, failed: &[NodeId]) -> Result<Self> {
        if failed.contains(&self.sink) {
            return Err(ConfigError::new("failed", "sink node failed"));
        }
        let degraded = topo.without_nodes(failed);
        Self::build(&degraded, self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::geometry::Point2;

    fn grid() -> Topology {
        Topology::grid(4, 4, 1.0, 1.1).unwrap()
    }

    #[test]
    fn root_properties() {
        let tree = CollectionTree::build(&grid(), NodeId::new(0)).unwrap();
        assert_eq!(tree.sink(), NodeId::new(0));
        assert_eq!(tree.parent(NodeId::new(0)), None);
        assert_eq!(tree.depth(NodeId::new(0)), Some(0));
        assert_eq!(tree.subtree_size(NodeId::new(0)), 16);
        assert!(tree.covers_all());
    }

    #[test]
    fn depths_match_hop_distance() {
        let topo = grid();
        let tree = CollectionTree::build(&topo, NodeId::new(0)).unwrap();
        let routes = zeiot_net::routing::RoutingTable::shortest_paths(&topo);
        for n in topo.node_ids() {
            assert_eq!(tree.depth(n), routes.hop_distance(NodeId::new(0), n));
        }
        assert_eq!(tree.height(), 6); // corner-to-corner in a 4×4 orthogonal grid
    }

    #[test]
    fn subtree_sizes_are_consistent() {
        let tree = CollectionTree::build(&grid(), NodeId::new(5)).unwrap();
        // Children's subtrees plus one equals the node's subtree.
        for i in 0..16u32 {
            let node = NodeId::new(i);
            let expect: usize = 1 + tree
                .children(node)
                .iter()
                .map(|c| tree.subtree_size(*c))
                .sum::<usize>();
            assert_eq!(tree.subtree_size(node), expect);
        }
    }

    #[test]
    fn parent_child_relationships_are_mutual() {
        let tree = CollectionTree::build(&grid(), NodeId::new(3)).unwrap();
        for i in 0..16u32 {
            let node = NodeId::new(i);
            if let Some(p) = tree.parent(node) {
                assert!(tree.children(p).contains(&node));
            }
            for &c in tree.children(node) {
                assert_eq!(tree.parent(c), Some(node));
            }
        }
    }

    #[test]
    fn path_to_sink_descends_in_depth() {
        let tree = CollectionTree::build(&grid(), NodeId::new(0)).unwrap();
        let path = tree.path_to_sink(NodeId::new(15)).unwrap();
        assert_eq!(*path.first().unwrap(), NodeId::new(15));
        assert_eq!(*path.last().unwrap(), NodeId::new(0));
        for w in path.windows(2) {
            assert_eq!(tree.depth(w[1]).unwrap() + 1, tree.depth(w[0]).unwrap());
        }
    }

    #[test]
    fn transmissions_per_round_equals_sum_of_depths() {
        let tree = CollectionTree::build(&grid(), NodeId::new(0)).unwrap();
        let total: usize = (0..16u32)
            .map(|i| tree.depth(NodeId::new(i)).unwrap())
            .sum();
        assert_eq!(tree.transmissions_per_round(), total);
    }

    #[test]
    fn disconnected_nodes_are_unreachable() {
        let topo = Topology::from_positions(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(100.0, 0.0),
            ],
            1.5,
        )
        .unwrap();
        let tree = CollectionTree::build(&topo, NodeId::new(0)).unwrap();
        assert!(!tree.covers_all());
        assert_eq!(tree.unreachable(), vec![NodeId::new(2)]);
        assert_eq!(tree.subtree_size(NodeId::new(2)), 0);
        assert!(tree.path_to_sink(NodeId::new(2)).is_none());
    }

    #[test]
    fn repair_reroutes_around_failures() {
        let topo = grid();
        let tree = CollectionTree::build(&topo, NodeId::new(0)).unwrap();
        // Node 1 and 4 are the sink's only neighbours; kill node 1.
        let repaired = tree.repair(&topo, &[NodeId::new(1)]).unwrap();
        assert_eq!(repaired.depth(NodeId::new(1)), None);
        // Node 2 (previously through 1) now routes via 4/5/6.
        assert!(repaired.depth(NodeId::new(2)).is_some());
        assert!(repaired.depth(NodeId::new(2)).unwrap() >= 2);
        // Everyone else still covered.
        assert_eq!(repaired.unreachable(), vec![NodeId::new(1)]);
    }

    #[test]
    fn repair_rejects_sink_failure() {
        let topo = grid();
        let tree = CollectionTree::build(&topo, NodeId::new(0)).unwrap();
        assert!(tree.repair(&topo, &[NodeId::new(0)]).is_err());
    }

    #[test]
    fn bad_sink_rejected() {
        assert!(CollectionTree::build(&grid(), NodeId::new(99)).is_err());
    }
}
