//! Packet-level converge-cast TDMA scheduling.
//!
//! Every node's report must reach the sink each collection round; every
//! hop is one slot-transmission. The scheduler assigns each hop a
//! `(slot, channel)` such that:
//!
//! * **precedence** — a packet's hop `i+1` is scheduled strictly after
//!   hop `i` (store-and-forward);
//! * **half-duplex** — a node neither transmits twice, nor transmits and
//!   receives, in the same slot (across all channels: single radio);
//! * **protocol interference** — on a given channel and slot, no
//!   receiver is within range of a second transmitter.
//!
//! Multiple channels shorten the schedule by letting non-conflicting
//! link sets overlap in time — the paper's §III.B multi-channel
//! requirement.

use crate::tree::CollectionTree;
use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::id::NodeId;
use zeiot_core::time::SimDuration;
use zeiot_net::Topology;

/// One scheduled transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledTx {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node (the tree parent).
    pub to: NodeId,
    /// Originating node of the packet being forwarded.
    pub origin: NodeId,
    /// Radio channel.
    pub channel: usize,
}

/// A complete collision-free converge-cast schedule.
///
/// See the crate-level example.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionSchedule {
    /// `slots[s]` = transmissions in slot `s` (across channels).
    slots: Vec<Vec<ScheduledTx>>,
    channels: usize,
}

impl CollectionSchedule {
    /// Builds a schedule for one full collection round over `tree`,
    /// using up to `channels` radio channels.
    ///
    /// Packets from deeper origins are scheduled first (they have the
    /// longest chains); each hop takes the earliest feasible slot.
    ///
    /// # Errors
    ///
    /// Returns an error if `channels` is zero.
    ///
    /// # Panics
    ///
    /// Panics if `tree` was built over a different topology size.
    pub fn build(topo: &Topology, tree: &CollectionTree, channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(ConfigError::new("channels", "must be non-zero"));
        }
        // Packets: one per reachable non-sink node, deepest first.
        let mut origins: Vec<NodeId> = topo
            .node_ids()
            .filter(|&n| n != tree.sink() && tree.depth(n).is_some())
            .collect();
        origins.sort_by_key(|&n| {
            (
                std::cmp::Reverse(tree.depth(n).expect("reachable")),
                n.raw(),
            )
        });

        let mut schedule = Self {
            slots: Vec::new(),
            channels,
        };
        for origin in origins {
            let path = tree.path_to_sink(origin).expect("reachable");
            let mut earliest = 0usize; // first slot this packet's next hop may use
            for hop in path.windows(2) {
                let (from, to) = (hop[0], hop[1]);
                let slot = schedule.first_feasible(topo, from, to, earliest);
                let channel = schedule
                    .feasible_channel(topo, from, to, slot)
                    .expect("first_feasible guarantees a channel");
                schedule.insert(
                    slot,
                    ScheduledTx {
                        from,
                        to,
                        origin,
                        channel,
                    },
                );
                earliest = slot + 1;
            }
        }
        Ok(schedule)
    }

    fn insert(&mut self, slot: usize, tx: ScheduledTx) {
        while self.slots.len() <= slot {
            self.slots.push(Vec::new());
        }
        self.slots[slot].push(tx);
    }

    /// Earliest slot ≥ `from_slot` where `from → to` fits on some
    /// channel.
    fn first_feasible(&self, topo: &Topology, from: NodeId, to: NodeId, from_slot: usize) -> usize {
        let mut slot = from_slot;
        loop {
            if self.feasible_channel(topo, from, to, slot).is_some() {
                return slot;
            }
            slot += 1;
        }
    }

    /// A channel on which `from → to` can go in `slot`, if any.
    fn feasible_channel(
        &self,
        topo: &Topology,
        from: NodeId,
        to: NodeId,
        slot: usize,
    ) -> Option<usize> {
        let existing: &[ScheduledTx] = self.slots.get(slot).map(Vec::as_slice).unwrap_or(&[]);
        // Half-duplex (single radio): node busy in this slot on any
        // channel blocks all channels.
        for tx in existing {
            if tx.from == from || tx.to == from || tx.from == to || tx.to == to {
                return None;
            }
        }
        'channel: for ch in 0..self.channels {
            for tx in existing.iter().filter(|t| t.channel == ch) {
                // Protocol interference: our receiver in range of their
                // transmitter, or their receiver in range of ours.
                if topo.connected(tx.from, to) || topo.connected(from, tx.to) {
                    continue 'channel;
                }
            }
            return Some(ch);
        }
        None
    }

    /// Number of slots in the round.
    pub fn length(&self) -> usize {
        self.slots.len()
    }

    /// Channels used.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Transmissions in a slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= length()`.
    pub fn slot(&self, slot: usize) -> &[ScheduledTx] {
        &self.slots[slot]
    }

    /// Total scheduled transmissions.
    pub fn total_transmissions(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Wall-clock duration of the round given the per-slot airtime.
    pub fn round_duration(&self, slot_airtime: SimDuration) -> SimDuration {
        slot_airtime * self.length() as u64
    }

    /// Mean number of parallel transmissions per non-empty slot — the
    /// spatial-reuse factor the multi-channel design buys.
    pub fn parallelism(&self) -> f64 {
        let busy = self.slots.iter().filter(|s| !s.is_empty()).count();
        if busy == 0 {
            0.0
        } else {
            self.total_transmissions() as f64 / busy as f64
        }
    }

    /// Validates all three scheduling invariants; used by tests and by
    /// the planner's self-check.
    pub fn verify(
        &self,
        topo: &Topology,
        tree: &CollectionTree,
    ) -> std::result::Result<(), String> {
        // Precedence per packet. BTreeMap keeps the (origin, from) →
        // slot walk below in key order, so diagnostics are stable
        // run-to-run (determinism contract rule d1).
        use std::collections::BTreeMap;
        let mut hop_slots: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new(); // (origin, from) -> slot
        for (s, txs) in self.slots.iter().enumerate() {
            for tx in txs {
                hop_slots.insert((tx.origin, tx.from), s);
            }
        }
        for ((origin, from), &slot) in &hop_slots {
            if *from != *origin {
                // The packet must have been received by `from` earlier:
                // find the previous hop (tree child on the origin's path).
                let path = tree
                    .path_to_sink(*origin)
                    .ok_or_else(|| format!("{origin} unreachable"))?;
                let idx = path
                    .iter()
                    .position(|n| n == from)
                    .ok_or_else(|| format!("{from} not on {origin}'s path"))?;
                let prev = path[idx - 1];
                let prev_slot = hop_slots
                    .get(&(*origin, prev))
                    .ok_or_else(|| format!("missing hop {prev} of {origin}"))?;
                if *prev_slot >= slot {
                    return Err(format!(
                        "precedence violated for {origin}: {prev}@{prev_slot} !< {from}@{slot}"
                    ));
                }
            }
        }
        // Half-duplex + interference per slot.
        for (s, txs) in self.slots.iter().enumerate() {
            for (i, a) in txs.iter().enumerate() {
                for b in txs.iter().skip(i + 1) {
                    let nodes_a = [a.from, a.to];
                    if nodes_a.contains(&b.from) || nodes_a.contains(&b.to) {
                        return Err(format!("half-duplex violated in slot {s}"));
                    }
                    if a.channel == b.channel
                        && (topo.connected(a.from, b.to) || topo.connected(b.from, a.to))
                    {
                        return Err(format!("interference in slot {s} on ch {}", a.channel));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_setup(sink: u32) -> (Topology, CollectionTree) {
        let topo = Topology::grid(4, 4, 1.0, 1.1).unwrap();
        let tree = CollectionTree::build(&topo, NodeId::new(sink)).unwrap();
        (topo, tree)
    }

    #[test]
    fn schedule_is_valid() {
        let (topo, tree) = grid_setup(0);
        let schedule = CollectionSchedule::build(&topo, &tree, 1).unwrap();
        schedule.verify(&topo, &tree).unwrap();
    }

    #[test]
    fn every_report_reaches_the_sink() {
        let (topo, tree) = grid_setup(0);
        let schedule = CollectionSchedule::build(&topo, &tree, 1).unwrap();
        // One transmission into the sink per non-sink node.
        let into_sink = schedule
            .slots
            .iter()
            .flatten()
            .filter(|tx| tx.to == NodeId::new(0))
            .count();
        assert_eq!(into_sink, 15);
        // Total transmissions = sum of depths.
        assert_eq!(
            schedule.total_transmissions(),
            tree.transmissions_per_round()
        );
    }

    #[test]
    fn sink_bottleneck_lower_bound() {
        let (topo, tree) = grid_setup(0);
        let schedule = CollectionSchedule::build(&topo, &tree, 1).unwrap();
        // The sink can receive at most one packet per slot: the round
        // cannot be shorter than n−1 slots.
        assert!(schedule.length() >= 15);
    }

    #[test]
    fn more_channels_never_lengthen_the_schedule() {
        let (topo, tree) = grid_setup(5);
        let one = CollectionSchedule::build(&topo, &tree, 1).unwrap();
        let two = CollectionSchedule::build(&topo, &tree, 2).unwrap();
        let four = CollectionSchedule::build(&topo, &tree, 4).unwrap();
        assert!(two.length() <= one.length());
        assert!(four.length() <= two.length());
        for s in [&one, &two, &four] {
            s.verify(&topo, &tree).unwrap();
        }
    }

    #[test]
    fn multi_channel_increases_parallelism_on_a_large_mesh() {
        let topo = Topology::grid(6, 6, 1.0, 1.1).unwrap();
        let tree = CollectionTree::build(&topo, NodeId::new(0)).unwrap();
        let one = CollectionSchedule::build(&topo, &tree, 1).unwrap();
        let three = CollectionSchedule::build(&topo, &tree, 3).unwrap();
        assert!(
            three.parallelism() >= one.parallelism(),
            "3ch {} vs 1ch {}",
            three.parallelism(),
            one.parallelism()
        );
    }

    #[test]
    fn round_duration_scales_with_slot_airtime() {
        let (topo, tree) = grid_setup(0);
        let schedule = CollectionSchedule::build(&topo, &tree, 1).unwrap();
        let slot = SimDuration::from_millis(2);
        assert_eq!(
            schedule.round_duration(slot).as_millis(),
            2 * schedule.length() as u64
        );
    }

    #[test]
    fn verify_reports_are_deterministic() {
        // Rebuilding yields a byte-identical schedule (slot vectors are
        // insertion-ordered, no hash iteration anywhere on the path)…
        let (topo, tree) = grid_setup(0);
        let a = CollectionSchedule::build(&topo, &tree, 2).unwrap();
        let b = CollectionSchedule::build(&topo, &tree, 2).unwrap();
        assert_eq!(a, b);
        // …and a corrupted schedule with *many* violations reports the
        // same first violation every time: the verifier walks its
        // hop map in key order, not hash order.
        let mut corrupt = a.clone();
        corrupt.slots.reverse();
        let first = corrupt.verify(&topo, &tree).unwrap_err();
        for _ in 0..10 {
            assert_eq!(corrupt.clone().verify(&topo, &tree).unwrap_err(), first);
        }
    }

    #[test]
    fn zero_channels_rejected() {
        let (topo, tree) = grid_setup(0);
        assert!(CollectionSchedule::build(&topo, &tree, 0).is_err());
    }

    #[test]
    fn chain_schedule_matches_theory() {
        // A 4-node chain 0←1←2←3: packets from 3,2,1 need 3+2+1 = 6
        // transmissions; the chain's half-duplex pipeline admits no
        // overlap near the sink, so length is at least 5 (classic
        // converge-cast bound 3N/... — here just check validity + totals).
        let positions = (0..4)
            .map(|i| zeiot_core::geometry::Point2::new(i as f64, 0.0))
            .collect();
        let topo = Topology::from_positions(positions, 1.1).unwrap();
        let tree = CollectionTree::build(&topo, NodeId::new(0)).unwrap();
        let schedule = CollectionSchedule::build(&topo, &tree, 1).unwrap();
        schedule.verify(&topo, &tree).unwrap();
        assert_eq!(schedule.total_transmissions(), 6);
        assert!(schedule.length() >= 5, "len={}", schedule.length());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use zeiot_core::rng::SeedRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_topologies_yield_valid_schedules(
            seed in 0u64..500,
            n in 4usize..30,
            channels in 1usize..4,
        ) {
            let mut rng = SeedRng::new(seed);
            let topo = Topology::random(n, 12.0, 12.0, 5.0, &mut rng).unwrap();
            let tree = CollectionTree::build(&topo, NodeId::new(0)).unwrap();
            let schedule = CollectionSchedule::build(&topo, &tree, channels).unwrap();
            prop_assert!(schedule.verify(&topo, &tree).is_ok());
            // Reachable non-sink nodes each contribute depth transmissions.
            prop_assert_eq!(
                schedule.total_transmissions(),
                tree.transmissions_per_round()
            );
        }
    }
}
