//! Requirements in, schedule and feasibility verdict out.
//!
//! The top of the design-support stack: the application designer states
//! *what* they need ("every sensor's reading at the sink once per
//! second, 256-bit payloads, one channel") and the planner generates
//! *how* — tree, slot schedule, feasibility margin — and re-plans
//! automatically when nodes fail.

use crate::schedule::CollectionSchedule;
use crate::tree::CollectionTree;
use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::id::NodeId;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_fault::FaultPlan;
use zeiot_net::Topology;

/// What the application needs from the network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requirements {
    /// Required collection cycle: one full round per `cycle`.
    pub cycle: SimDuration,
    /// Payload bits per report.
    pub payload_bits: usize,
    /// Radio bit rate.
    pub bit_rate_bps: f64,
    /// Radio channels available.
    pub channels: usize,
}

impl Requirements {
    /// Airtime of one slot (one report transmission plus a 20 % guard).
    ///
    /// # Panics
    ///
    /// Panics if the bit rate is not positive.
    pub fn slot_airtime(&self) -> SimDuration {
        assert!(self.bit_rate_bps > 0.0, "bit rate must be positive");
        SimDuration::from_secs_f64(self.payload_bits as f64 / self.bit_rate_bps * 1.2)
    }

    fn validate(&self) -> Result<()> {
        if self.cycle.is_zero() {
            return Err(ConfigError::new("cycle", "must be non-zero"));
        }
        if self.payload_bits == 0 {
            return Err(ConfigError::new("payload_bits", "must be non-zero"));
        }
        if !(self.bit_rate_bps > 0.0 && self.bit_rate_bps.is_finite()) {
            return Err(ConfigError::new("bit_rate_bps", "must be positive"));
        }
        if self.channels == 0 {
            return Err(ConfigError::new("channels", "must be non-zero"));
        }
        Ok(())
    }
}

/// The generated plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionPlan {
    /// The collection tree used.
    pub tree: CollectionTree,
    /// The slot schedule for one round.
    pub schedule: CollectionSchedule,
    /// One round's wall-clock duration.
    pub round_duration: SimDuration,
    /// Whether the round fits within the required cycle.
    pub feasible: bool,
    /// `cycle / round_duration` — >1 means headroom.
    pub margin: f64,
    /// Nodes the plan cannot serve (no route to the sink).
    pub uncovered: Vec<NodeId>,
}

impl CollectionPlan {
    /// The maximum collection rate (rounds per second) this plan
    /// supports.
    pub fn max_rate_hz(&self) -> f64 {
        1.0 / self.round_duration.as_secs_f64()
    }
}

/// The design-support planner for one deployment.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Planner {
    topo: Topology,
    sink: NodeId,
}

impl Planner {
    /// Creates a planner for `topo` collecting at `sink`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sink is out of range.
    pub fn new(topo: &Topology, sink: NodeId) -> Result<Self> {
        if sink.index() >= topo.len() {
            return Err(ConfigError::new("sink", "out of range"));
        }
        Ok(Self {
            topo: topo.clone(),
            sink,
        })
    }

    /// The sink.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Generates a plan for `req` over the healthy topology.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid requirements.
    pub fn plan(&self, req: &Requirements) -> Result<CollectionPlan> {
        req.validate()?;
        self.plan_over(&self.topo, req)
    }

    /// Generates a plan assuming `failed` nodes are dead — the automatic
    /// "(iii) recovery method": rebuild the tree over survivors and
    /// re-schedule.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid requirements or if the sink failed.
    pub fn replan_after_failures(
        &self,
        req: &Requirements,
        failed: &[NodeId],
    ) -> Result<CollectionPlan> {
        req.validate()?;
        if failed.contains(&self.sink) {
            return Err(ConfigError::new("failed", "sink node failed"));
        }
        let degraded = self.topo.without_nodes(failed);
        let mut plan = self.plan_over(&degraded, req)?;
        // Failed nodes are not "uncovered" — they are gone.
        plan.uncovered.retain(|n| !failed.contains(n));
        Ok(plan)
    }

    /// [`replan_after_failures`](Self::replan_after_failures) driven by
    /// liveness instead of an explicit casualty list: the down-set is
    /// read from `fault`'s outage windows at instant `t`, so a
    /// re-placement controller can re-plan collection at each epoch of
    /// change without consuming per-message fault decisions.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid requirements or if the sink is down
    /// at `t`.
    pub fn replan_at(
        &self,
        req: &Requirements,
        fault: &FaultPlan,
        t: SimTime,
    ) -> Result<CollectionPlan> {
        self.replan_after_failures(req, &fault.down_set_at(t))
    }

    /// The smallest channel count (up to `max_channels`) meeting the
    /// cycle, if any — the knob §III.B says designers should not have to
    /// turn by hand.
    pub fn minimum_channels(&self, req: &Requirements, max_channels: usize) -> Option<usize> {
        for channels in 1..=max_channels {
            let candidate = Requirements { channels, ..*req };
            if let Ok(plan) = self.plan(&candidate) {
                if plan.feasible {
                    return Some(channels);
                }
            }
        }
        None
    }

    fn plan_over(&self, topo: &Topology, req: &Requirements) -> Result<CollectionPlan> {
        let tree = CollectionTree::build(topo, self.sink)?;
        let schedule = CollectionSchedule::build(topo, &tree, req.channels)?;
        debug_assert!(schedule.verify(topo, &tree).is_ok());
        let round_duration = schedule.round_duration(req.slot_airtime());
        let margin = req.cycle.as_secs_f64() / round_duration.as_secs_f64();
        Ok(CollectionPlan {
            uncovered: tree.unreachable(),
            feasible: round_duration <= req.cycle,
            margin,
            round_duration,
            schedule,
            tree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cycle_ms: u64, channels: usize) -> Requirements {
        Requirements {
            cycle: SimDuration::from_millis(cycle_ms),
            payload_bits: 256,
            bit_rate_bps: 250e3,
            channels,
        }
    }

    fn planner() -> Planner {
        let topo = Topology::grid(5, 5, 2.0, 3.0).unwrap();
        Planner::new(&topo, NodeId::new(0)).unwrap()
    }

    #[test]
    fn generous_cycle_is_feasible() {
        let plan = planner().plan(&req(1_000, 1)).unwrap();
        assert!(plan.feasible);
        assert!(plan.margin > 1.0);
        assert!(plan.uncovered.is_empty());
        assert!(plan.max_rate_hz() > 1.0);
    }

    #[test]
    fn impossible_cycle_is_reported_infeasible() {
        let plan = planner().plan(&req(1, 1)).unwrap();
        assert!(!plan.feasible);
        assert!(plan.margin < 1.0);
    }

    #[test]
    fn slot_airtime_includes_guard() {
        let r = req(1_000, 1);
        // 256 bits at 250 kbps = 1.024 ms; +20% = ~1.229 ms.
        let a = r.slot_airtime();
        assert!((a.as_secs_f64() - 1.2288e-3).abs() < 1e-6);
    }

    #[test]
    fn minimum_channels_finds_the_knee() {
        let p = planner();
        // Choose a cycle between the 1-channel and 4-channel round times.
        let one = p.plan(&req(10_000, 1)).unwrap().round_duration;
        let four = p
            .plan(&Requirements {
                channels: 4,
                ..req(10_000, 1)
            })
            .unwrap()
            .round_duration;
        assert!(four <= one);
        if four < one {
            let mid = SimDuration::from_nanos((one.as_nanos() + four.as_nanos()) / 2);
            let tight = Requirements {
                cycle: mid,
                ..req(0, 1)
            };
            let k = p.minimum_channels(&tight, 4);
            assert!(k.is_some());
            assert!(k.unwrap() >= 1 && k.unwrap() <= 4);
        }
        // A hopeless cycle has no feasible channel count.
        let hopeless = Requirements {
            cycle: SimDuration::from_nanos(10),
            ..req(0, 1)
        };
        assert_eq!(p.minimum_channels(&hopeless, 4), None);
    }

    #[test]
    fn replanning_survives_failures() {
        let p = planner();
        let healthy = p.plan(&req(1_000, 1)).unwrap();
        let failed = vec![NodeId::new(1), NodeId::new(7)];
        let repaired = p.replan_after_failures(&req(1_000, 1), &failed).unwrap();
        assert!(repaired.uncovered.is_empty());
        // Fewer reports (two fewer nodes) but possibly longer detours.
        assert_eq!(
            repaired.schedule.total_transmissions(),
            repaired.tree.transmissions_per_round()
        );
        let _ = healthy;
    }

    #[test]
    fn liveness_driven_replanning_matches_explicit_failures() {
        use zeiot_core::time::SimTime;

        let p = planner();
        let plan = FaultPlan::lossless()
            .with_outage(
                NodeId::new(1),
                SimTime::from_secs(10),
                SimTime::from_secs(20),
            )
            .unwrap()
            .with_outage(
                NodeId::new(7),
                SimTime::from_secs(10),
                SimTime::from_secs(30),
            )
            .unwrap();
        // Before any window opens, replan_at is the healthy plan.
        let healthy = p.plan(&req(1_000, 1)).unwrap();
        let at_zero = p.replan_at(&req(1_000, 1), &plan, SimTime::ZERO).unwrap();
        assert_eq!(healthy.schedule, at_zero.schedule);
        // Inside the windows it matches the explicit casualty list.
        let explicit = p
            .replan_after_failures(&req(1_000, 1), &[NodeId::new(1), NodeId::new(7)])
            .unwrap();
        let live = p
            .replan_at(&req(1_000, 1), &plan, SimTime::from_secs(15))
            .unwrap();
        assert_eq!(explicit.schedule, live.schedule);
        assert_eq!(explicit.uncovered, live.uncovered);
        // A sink outage is rejected exactly like an explicit sink failure.
        let sink_down = FaultPlan::lossless()
            .with_outage(NodeId::new(0), SimTime::ZERO, SimTime::from_secs(5))
            .unwrap();
        assert!(p
            .replan_at(&req(1_000, 1), &sink_down, SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn replanning_rejects_sink_failure() {
        let p = planner();
        assert!(p
            .replan_after_failures(&req(1_000, 1), &[NodeId::new(0)])
            .is_err());
    }

    #[test]
    fn requirement_validation() {
        let p = planner();
        assert!(p
            .plan(&Requirements {
                cycle: SimDuration::ZERO,
                ..req(1, 1)
            })
            .is_err());
        assert!(p
            .plan(&Requirements {
                payload_bits: 0,
                ..req(1_000, 1)
            })
            .is_err());
        assert!(p
            .plan(&Requirements {
                bit_rate_bps: 0.0,
                ..req(1_000, 1)
            })
            .is_err());
        assert!(p
            .plan(&Requirements {
                channels: 0,
                ..req(1_000, 1)
            })
            .is_err());
    }

    #[test]
    fn bad_sink_rejected() {
        let topo = Topology::grid(3, 3, 1.0, 1.5).unwrap();
        assert!(Planner::new(&topo, NodeId::new(9)).is_err());
    }
}
