//! # zeiot-plan
//!
//! Design-support tooling for zero-energy IoT device networks — the
//! capability the paper calls for in §III.B and restates as a research
//! challenge in §V:
//!
//! > "if (i) the 3D map and obstacle information of a target IoT device
//! > network, (ii) the required information collection cycle, and (iii)
//! > the recovery method at the time of errors are designated, it is
//! > desirable that we can devise a mechanism to estimate the appropriate
//! > information collection mechanism \[and\] automatically generate the
//! > necessary information collection algorithm"
//!
//! Given a deployed [`zeiot_net::Topology`], a sink, and an application
//! requirement (collection cycle, payload, bit rate, available radio
//! channels), the [`planner::Planner`] automatically generates a
//! complete, collision-free converge-cast schedule:
//!
//! - [`tree`] — a BFS collection tree rooted at the sink, with per-node
//!   forwarding loads;
//! - [`schedule`] — packet-level TDMA slot assignment under the protocol
//!   interference model, with multi-channel support (§III.B: "it may be
//!   necessary to construct a mechanism for transmitting and receiving
//!   data concurrently using multiple radio channels");
//! - [`planner`] — requirements in, feasibility verdict and schedule
//!   out, plus automatic re-planning around failed nodes (the "(iii)
//!   recovery methods" input).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), zeiot_core::ConfigError> {
//! use zeiot_plan::planner::{Planner, Requirements};
//! use zeiot_net::Topology;
//! use zeiot_core::id::NodeId;
//! use zeiot_core::time::SimDuration;
//!
//! let topo = Topology::grid(5, 5, 2.0, 3.0)?;
//! let planner = Planner::new(&topo, NodeId::new(0))?;
//! let req = Requirements {
//!     cycle: SimDuration::from_secs(1),
//!     payload_bits: 256,
//!     bit_rate_bps: 250e3,
//!     channels: 1,
//! };
//! let plan = planner.plan(&req)?;
//! assert!(plan.feasible);
//! assert!(plan.schedule.length() > 0);
//! # Ok(())
//! # }
//! ```

pub mod planner;
pub mod schedule;
pub mod tree;

pub use planner::{CollectionPlan, Planner, Requirements};
pub use schedule::CollectionSchedule;
pub use tree::CollectionTree;
