//! Bounded event tracing.
//!
//! Debugging a distributed protocol needs the last N things that
//! happened, not an unbounded log that outgrows memory in a long
//! simulation. [`TraceBuffer`] is a fixed-capacity ring of timestamped
//! entries: pushes are O(1), the oldest entries fall off, and the buffer
//! can be drained for post-mortem inspection.

use std::collections::VecDeque;
use zeiot_core::time::SimTime;

/// A fixed-capacity ring buffer of timestamped trace entries.
///
/// # Example
///
/// ```
/// use zeiot_sim::trace::TraceBuffer;
/// use zeiot_core::time::SimTime;
///
/// let mut trace = TraceBuffer::new(3);
/// for i in 0..5u32 {
///     trace.push(SimTime::from_millis(i as u64), format!("event {i}"));
/// }
/// // Only the last three survive.
/// let kept: Vec<&String> = trace.iter().map(|(_, e)| e).collect();
/// assert_eq!(kept, [&"event 2".to_owned(), &"event 3".to_owned(), &"event 4".to_owned()]);
/// assert_eq!(trace.dropped(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer<T> {
    entries: VecDeque<(SimTime, T)>,
    capacity: usize,
    dropped: u64,
}

impl<T> TraceBuffer<T> {
    /// Creates a buffer keeping the most recent `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the newest entry — traces record causally
    /// ordered simulation events. Like
    /// [`TimeSeries::record`](crate::metrics::TimeSeries::record), ordering
    /// is enforced in release builds too (workspace policy for time-ordered
    /// instruments): a misordered trace would silently lie about causality
    /// exactly when it is being used to debug it.
    pub fn push(&mut self, time: SimTime, entry: T) {
        if let Some(&(last, _)) = self.entries.back() {
            assert!(time >= last, "trace entries must be time-ordered");
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((time, entry));
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, T)> {
        self.entries.iter()
    }

    /// Entries at or after `since`, oldest first.
    pub fn since(&self, since: SimTime) -> impl Iterator<Item = &(SimTime, T)> {
        self.entries.iter().filter(move |(t, _)| *t >= since)
    }

    /// Drains all retained entries, oldest first, leaving the buffer
    /// empty (the drop counter is preserved).
    pub fn drain(&mut self) -> Vec<(SimTime, T)> {
        self.entries.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_up_to_capacity() {
        let mut trace = TraceBuffer::new(4);
        for i in 0..10u64 {
            trace.push(SimTime::from_millis(i), i);
        }
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped(), 6);
        let kept: Vec<u64> = trace.iter().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn since_filters_by_time() {
        let mut trace = TraceBuffer::new(10);
        for i in 0..5u64 {
            trace.push(SimTime::from_secs(i), i);
        }
        let late: Vec<u64> = trace
            .since(SimTime::from_secs(3))
            .map(|&(_, e)| e)
            .collect();
        assert_eq!(late, vec![3, 4]);
    }

    #[test]
    fn drain_empties_but_keeps_drop_count() {
        let mut trace = TraceBuffer::new(2);
        for i in 0..5u64 {
            trace.push(SimTime::from_millis(i), i);
        }
        let drained = trace.drain();
        assert_eq!(drained.len(), 2);
        assert!(trace.is_empty());
        assert_eq!(trace.dropped(), 3);
    }

    #[test]
    fn capacity_reported() {
        let trace: TraceBuffer<u8> = TraceBuffer::new(7);
        assert_eq!(trace.capacity(), 7);
        assert!(trace.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _: TraceBuffer<u8> = TraceBuffer::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_order_push_panics_in_release_too() {
        // Same enforcement policy as TimeSeries::record: a plain assert,
        // active in all build profiles.
        let mut trace = TraceBuffer::new(4);
        trace.push(SimTime::from_secs(2), "late");
        trace.push(SimTime::from_secs(1), "early");
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let mut trace = TraceBuffer::new(4);
        trace.push(SimTime::from_secs(1), "a");
        trace.push(SimTime::from_secs(1), "b");
        assert_eq!(trace.len(), 2);
    }
}
