//! # zeiot-sim
//!
//! A deterministic discrete-event simulation (DES) kernel for zero-energy
//! IoT device networks.
//!
//! The kernel is deliberately minimal: an [`Engine`] owns an event queue and
//! a user-supplied *world* (any type implementing [`World`]); events are
//! dispatched strictly in `(time, insertion order)` order so two runs with
//! the same seed produce identical traces. The backscatter MAC simulator and
//! the WSN substrate are both built on this kernel.
//!
//! # Example
//!
//! ```
//! use zeiot_sim::{Engine, Context, World};
//! use zeiot_core::time::{SimDuration, SimTime};
//!
//! struct Ping { count: u32 }
//!
//! impl World for Ping {
//!     type Event = ();
//!     fn handle(&mut self, ctx: &mut Context<'_, ()>, _event: ()) {
//!         self.count += 1;
//!         if self.count < 5 {
//!             ctx.schedule_in(SimDuration::from_millis(10), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Ping { count: 0 });
//! engine.schedule_at(SimTime::ZERO, ());
//! engine.run();
//! assert_eq!(engine.world().count, 5);
//! assert_eq!(engine.now(), SimTime::from_millis(40));
//! ```

pub mod engine;
pub mod metrics;
pub mod queue;
pub mod timeout;
pub mod trace;

pub use engine::{Context, Engine, NoopObserver, Observer, World};
pub use metrics::{Counter, Histogram, HistogramSummary, MetricSet, TimeSeries};
pub use queue::EventQueue;
pub use timeout::RetrySchedule;
pub use trace::TraceBuffer;
