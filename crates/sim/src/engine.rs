//! The simulation executor.
//!
//! An [`Engine`] repeatedly pops the earliest pending event, advances the
//! clock to its timestamp, and hands it to the world's [`World::handle`].
//! The handler receives a [`Context`] through which it can schedule further
//! events; it never sees the engine itself, which keeps scheduling and
//! world-state mutation cleanly separated.

use crate::queue::EventQueue;
use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};
use zeiot_core::time::{SimDuration, SimTime};

/// The simulated system: owns all domain state and reacts to events.
///
/// Implementors mutate their own state and schedule follow-up events via
/// the [`Context`]. See the crate-level example.
pub trait World {
    /// The event payload type dispatched by the engine.
    type Event;

    /// Reacts to `event` firing at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// Passive probe attached to an [`Engine`] via [`Engine::with_observer`].
///
/// Every callback has a no-op default, so observers implement only what
/// they need. Observers see events but cannot influence the simulation:
/// the engine's dispatch order, clock, and world state are identical with
/// or without one (callbacks receive `&Self::Event`, never ownership).
///
/// Wall-clock measurement is gated on [`Observer::ENABLED`]: for
/// [`NoopObserver`] (`ENABLED = false`) the engine skips `Instant::now()`
/// reads and every callback site, compiling down to the unobserved event
/// loop.
pub trait Observer<E> {
    /// Whether the engine should invoke callbacks and time handlers.
    /// Defaults to `true`; [`NoopObserver`] overrides it to `false`.
    const ENABLED: bool = true;

    /// An event was scheduled at simulated time `now` to fire at `at`
    /// (from a handler or from outside the run loop). `queue_depth`
    /// includes the newly scheduled event.
    fn on_schedule(&mut self, now: SimTime, at: SimTime, queue_depth: usize) {
        let _ = (now, at, queue_depth);
    }

    /// The engine popped `event` and advanced the clock to `now`;
    /// `queue_depth` is the number of events still pending.
    fn on_event_dispatched(&mut self, now: SimTime, event: &E, queue_depth: usize) {
        let _ = (now, event, queue_depth);
    }

    /// The handler for the most recently dispatched event returned after
    /// `wall` of host time.
    fn on_event_handled(&mut self, now: SimTime, wall: Duration) {
        let _ = (now, wall);
    }

    /// A handler requested [`Context::stop`]; `dispatched` is the total
    /// events dispatched over the engine's lifetime.
    fn on_stop(&mut self, now: SimTime, dispatched: u64) {
        let _ = (now, dispatched);
    }
}

/// The default observer: does nothing and disables all probe points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl<E> Observer<E> for NoopObserver {
    const ENABLED: bool = false;
}

/// Object-safe bridge letting [`Context`] forward schedule notifications
/// to the engine's observer without knowing its type.
trait ScheduleSink {
    fn scheduled(&mut self, now: SimTime, at: SimTime, queue_depth: usize);
}

struct SinkAdapter<'a, E, O: Observer<E>> {
    observer: &'a mut O,
    _events: PhantomData<fn(&E)>,
}

impl<E, O: Observer<E>> ScheduleSink for SinkAdapter<'_, E, O> {
    fn scheduled(&mut self, now: SimTime, at: SimTime, queue_depth: usize) {
        self.observer.on_schedule(now, at, queue_depth);
    }
}

/// Scheduling facade handed to [`World::handle`].
///
/// Borrows the engine's queue and clock for the duration of one event
/// dispatch.
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
    schedule_sink: Option<&'a mut dyn ScheduleSink>,
}

impl<E> fmt::Debug for Context<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("stop_requested", self.stop_requested)
            .field("observed", &self.schedule_sink.is_some())
            .finish()
    }
}

impl<E> Context<'_, E> {
    /// The current simulated time (the timestamp of the event being
    /// handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — scheduling into
    /// the past would break causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.push(at, event);
        if let Some(sink) = self.schedule_sink.as_mut() {
            sink.scheduled(self.now, at, self.queue.len());
        }
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.queue.push(at, event);
        if let Some(sink) = self.schedule_sink.as_mut() {
            sink.scheduled(self.now, at, self.queue.len());
        }
    }

    /// Requests that the engine stop after the current event completes,
    /// leaving remaining events in the queue.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Number of events currently pending (excluding the one being
    /// handled).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

/// A deterministic discrete-event simulation engine.
///
/// Construct with a world, seed the queue via [`Engine::schedule_at`], then
/// drive with [`Engine::run`], [`Engine::run_until`] or [`Engine::step`].
///
/// The second type parameter is an [`Observer`] probe; it defaults to
/// [`NoopObserver`], for which all probe points compile away — an
/// unobserved `Engine<W>` runs the identical event loop it always has.
#[derive(Debug)]
pub struct Engine<W: World, O: Observer<W::Event> = NoopObserver> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    dispatched: u64,
    observer: O,
}

impl<W: World> Engine<W> {
    /// Creates an unobserved engine at time zero wrapping `world`.
    pub fn new(world: W) -> Self {
        Self::with_observer(world, NoopObserver)
    }
}

impl<W: World, O: Observer<W::Event>> Engine<W, O> {
    /// Creates an engine at time zero with an attached observer probe.
    pub fn with_observer(world: W, observer: O) -> Self {
        Self {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
            observer,
        }
    }

    /// Shared access to the observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Exclusive access to the observer (e.g. to read out collected
    /// metrics between runs).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consumes the engine, returning the world and the observer.
    pub fn into_parts(self) -> (W, O) {
        (self.world, self.observer)
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to inspect or reconfigure
    /// between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event from outside the simulation (initial conditions).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
        if O::ENABLED {
            self.observer.on_schedule(self.now, at, self.queue.len());
        }
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: W::Event) {
        let at = self.now + delay;
        self.queue.push(at, event);
        if O::ENABLED {
            self.observer.on_schedule(self.now, at, self.queue.len());
        }
    }

    /// Advances the clock to `time` and hands `event` to the world,
    /// surrounding the handler with observer probe points. Returns whether
    /// the handler requested a stop.
    fn dispatch(&mut self, time: SimTime, event: W::Event) -> bool {
        debug_assert!(time >= self.now, "event queue returned a past event");
        self.now = time;
        self.dispatched += 1;
        if O::ENABLED {
            self.observer
                .on_event_dispatched(self.now, &event, self.queue.len());
        }
        let start = if O::ENABLED {
            // zeiot-audit: allow(d2) -- handler wall time feeds only the observer probe (obs histograms); with NoopObserver the read compiles away, and no simulated state ever depends on it
            Some(Instant::now())
        } else {
            None
        };
        let mut stop = false;
        {
            let mut sink = if O::ENABLED {
                Some(SinkAdapter {
                    observer: &mut self.observer,
                    _events: PhantomData,
                })
            } else {
                None
            };
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                stop_requested: &mut stop,
                schedule_sink: sink
                    .as_mut()
                    .map(|adapter| adapter as &mut dyn ScheduleSink),
            };
            self.world.handle(&mut ctx, event);
        }
        if let Some(start) = start {
            self.observer.on_event_handled(self.now, start.elapsed());
        }
        if stop && O::ENABLED {
            self.observer.on_stop(self.now, self.dispatched);
        }
        stop
    }

    /// Dispatches the single earliest event, advancing the clock to its
    /// timestamp. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        self.dispatch(time, event);
        true
    }

    /// Runs until the queue is exhausted. Returns the number of events
    /// dispatched by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.dispatched;
        loop {
            let Some((time, event)) = self.queue.pop() else {
                break;
            };
            if self.dispatch(time, event) {
                break;
            }
        }
        self.dispatched - before
    }

    /// Runs until the queue is exhausted or the next event would fire after
    /// `deadline`; the clock is left at the last dispatched event (or
    /// `deadline` if no event fired beyond it). Returns the number of events
    /// dispatched by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.dispatched;
        while let Some(next) = self.queue.peek_time() {
            if next > deadline {
                break;
            }
            let (time, event) = self.queue.pop().expect("peeked event vanished");
            if self.dispatch(time, event) {
                return self.dispatched - before;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.dispatched - before
    }

    /// Number of events pending in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// World that records the order and times of fired events.
    struct Recorder {
        fired: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, event: u32) {
            self.fired.push((ctx.now(), event));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        engine.schedule_at(SimTime::from_secs(2), 2);
        engine.schedule_at(SimTime::from_secs(1), 1);
        engine.schedule_at(SimTime::from_secs(3), 3);
        assert_eq!(engine.run(), 3);
        let order: Vec<u32> = engine.world().fired.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(engine.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        for s in 1..=10 {
            engine.schedule_at(SimTime::from_secs(s), s as u32);
        }
        let n = engine.run_until(SimTime::from_secs(5));
        assert_eq!(n, 5);
        assert_eq!(engine.pending_events(), 5);
        assert_eq!(engine.now(), SimTime::from_secs(5));
        // Events exactly at the deadline fire; later ones do not.
        assert_eq!(engine.world().fired.len(), 5);
    }

    #[test]
    fn run_until_advances_clock_when_queue_is_sparse() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        engine.schedule_at(SimTime::from_secs(1), 1);
        engine.run_until(SimTime::from_secs(100));
        assert_eq!(engine.now(), SimTime::from_secs(100));
    }

    struct Chain {
        remaining: u32,
    }

    impl World for Chain {
        type Event = ();
        fn handle(&mut self, ctx: &mut Context<'_, ()>, _e: ()) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule_in(SimDuration::from_millis(1), ());
            }
        }
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut engine = Engine::new(Chain { remaining: 99 });
        engine.schedule_at(SimTime::ZERO, ());
        assert_eq!(engine.run(), 100);
        assert_eq!(engine.world().remaining, 0);
        assert_eq!(engine.now(), SimTime::from_millis(99));
    }

    struct Stopper {
        handled: u32,
    }

    impl World for Stopper {
        type Event = bool; // true = request stop
        fn handle(&mut self, ctx: &mut Context<'_, bool>, stop: bool) {
            self.handled += 1;
            if stop {
                ctx.stop();
            }
        }
    }

    #[test]
    fn stop_halts_run_leaving_pending_events() {
        let mut engine = Engine::new(Stopper { handled: 0 });
        engine.schedule_at(SimTime::from_secs(1), false);
        engine.schedule_at(SimTime::from_secs(2), true);
        engine.schedule_at(SimTime::from_secs(3), false);
        engine.run();
        assert_eq!(engine.world().handled, 2);
        assert_eq!(engine.pending_events(), 1);
    }

    #[test]
    fn step_dispatches_one_event() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        engine.schedule_at(SimTime::from_secs(1), 1);
        engine.schedule_at(SimTime::from_secs(2), 2);
        assert!(engine.step());
        assert_eq!(engine.world().fired.len(), 1);
        assert!(engine.step());
        assert!(!engine.step());
        assert_eq!(engine.dispatched(), 2);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        engine.schedule_at(SimTime::from_secs(5), 1);
        engine.run();
        engine.schedule_at(SimTime::from_secs(1), 2);
    }

    #[test]
    fn into_world_returns_final_state() {
        let mut engine = Engine::new(Chain { remaining: 3 });
        engine.schedule_at(SimTime::ZERO, ());
        engine.run();
        let world = engine.into_world();
        assert_eq!(world.remaining, 0);
    }

    /// Observer that logs every callback invocation.
    #[derive(Debug, Default)]
    struct Spy {
        scheduled: Vec<(SimTime, SimTime, usize)>,
        dispatched: Vec<(SimTime, u32, usize)>,
        handled: u64,
        stops: Vec<(SimTime, u64)>,
    }

    impl Observer<u32> for Spy {
        fn on_schedule(&mut self, now: SimTime, at: SimTime, queue_depth: usize) {
            self.scheduled.push((now, at, queue_depth));
        }

        fn on_event_dispatched(&mut self, now: SimTime, event: &u32, queue_depth: usize) {
            self.dispatched.push((now, *event, queue_depth));
        }

        fn on_event_handled(&mut self, _now: SimTime, _wall: Duration) {
            self.handled += 1;
        }

        fn on_stop(&mut self, now: SimTime, dispatched: u64) {
            self.stops.push((now, dispatched));
        }
    }

    /// World that reschedules each event once and stops on event 99.
    struct Echo;

    impl World for Echo {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, event: u32) {
            if event == 99 {
                ctx.stop();
            } else if event < 10 {
                ctx.schedule_in(SimDuration::from_millis(1), event + 100);
            }
        }
    }

    #[test]
    fn observer_sees_schedules_dispatches_and_handles() {
        let mut engine = Engine::with_observer(Echo, Spy::default());
        engine.schedule_at(SimTime::from_secs(1), 1);
        engine.schedule_at(SimTime::from_secs(2), 2);
        engine.run();
        let spy = engine.observer();
        // 2 external schedules + 2 handler reschedules.
        assert_eq!(spy.scheduled.len(), 4);
        // 2 seeds + 2 follow-ups dispatched and handled.
        assert_eq!(spy.dispatched.len(), 4);
        assert_eq!(spy.handled, 4);
        assert!(spy.stops.is_empty());
        // The first dispatch saw the other seed still pending.
        assert_eq!(spy.dispatched[0], (SimTime::from_secs(1), 1, 1));
    }

    #[test]
    fn observer_sees_stop_requests() {
        let mut engine = Engine::with_observer(Echo, Spy::default());
        engine.schedule_at(SimTime::from_secs(1), 99);
        engine.schedule_at(SimTime::from_secs(2), 1);
        engine.run();
        let (world, spy) = engine.into_parts();
        let _ = world;
        assert_eq!(spy.stops, vec![(SimTime::from_secs(1), 1)]);
    }

    #[test]
    fn observed_and_unobserved_runs_are_identical() {
        fn seed<O: Observer<u32>>(engine: &mut Engine<Recorder, O>) {
            engine.schedule_at(SimTime::from_secs(2), 2);
            engine.schedule_at(SimTime::from_secs(1), 1);
            engine.schedule_at(SimTime::from_secs(1), 10);
        }
        let run = |observed: bool| -> (Vec<(SimTime, u32)>, SimTime, u64) {
            if observed {
                let mut engine = Engine::with_observer(Recorder { fired: vec![] }, Spy::default());
                seed(&mut engine);
                engine.run();
                let now = engine.now();
                let dispatched = engine.dispatched();
                (engine.into_world().fired, now, dispatched)
            } else {
                let mut engine = Engine::new(Recorder { fired: vec![] });
                seed(&mut engine);
                engine.run();
                let now = engine.now();
                let dispatched = engine.dispatched();
                (engine.into_world().fired, now, dispatched)
            }
        };
        assert_eq!(run(true), run(false));
    }
}
