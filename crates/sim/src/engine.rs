//! The simulation executor.
//!
//! An [`Engine`] repeatedly pops the earliest pending event, advances the
//! clock to its timestamp, and hands it to the world's [`World::handle`].
//! The handler receives a [`Context`] through which it can schedule further
//! events; it never sees the engine itself, which keeps scheduling and
//! world-state mutation cleanly separated.

use crate::queue::EventQueue;
use zeiot_core::time::{SimDuration, SimTime};

/// The simulated system: owns all domain state and reacts to events.
///
/// Implementors mutate their own state and schedule follow-up events via
/// the [`Context`]. See the crate-level example.
pub trait World {
    /// The event payload type dispatched by the engine.
    type Event;

    /// Reacts to `event` firing at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// Scheduling facade handed to [`World::handle`].
///
/// Borrows the engine's queue and clock for the duration of one event
/// dispatch.
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<E> Context<'_, E> {
    /// The current simulated time (the timestamp of the event being
    /// handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — scheduling into
    /// the past would break causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Requests that the engine stop after the current event completes,
    /// leaving remaining events in the queue.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Number of events currently pending (excluding the one being
    /// handled).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

/// A deterministic discrete-event simulation engine.
///
/// Construct with a world, seed the queue via [`Engine::schedule_at`], then
/// drive with [`Engine::run`], [`Engine::run_until`] or [`Engine::step`].
#[derive(Debug)]
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    dispatched: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine at time zero wrapping `world`.
    pub fn new(world: W) -> Self {
        Self {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to inspect or reconfigure
    /// between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event from outside the simulation (initial conditions).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: W::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// Dispatches the single earliest event, advancing the clock to its
    /// timestamp. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue returned a past event");
        self.now = time;
        self.dispatched += 1;
        let mut stop = false;
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            stop_requested: &mut stop,
        };
        self.world.handle(&mut ctx, event);
        true
    }

    /// Runs until the queue is exhausted. Returns the number of events
    /// dispatched by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.dispatched;
        loop {
            let Some((time, event)) = self.queue.pop() else {
                break;
            };
            self.now = time;
            self.dispatched += 1;
            let mut stop = false;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                stop_requested: &mut stop,
            };
            self.world.handle(&mut ctx, event);
            if stop {
                break;
            }
        }
        self.dispatched - before
    }

    /// Runs until the queue is exhausted or the next event would fire after
    /// `deadline`; the clock is left at the last dispatched event (or
    /// `deadline` if no event fired beyond it). Returns the number of events
    /// dispatched by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.dispatched;
        while let Some(next) = self.queue.peek_time() {
            if next > deadline {
                break;
            }
            let (time, event) = self.queue.pop().expect("peeked event vanished");
            self.now = time;
            self.dispatched += 1;
            let mut stop = false;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                stop_requested: &mut stop,
            };
            self.world.handle(&mut ctx, event);
            if stop {
                return self.dispatched - before;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.dispatched - before
    }

    /// Number of events pending in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// World that records the order and times of fired events.
    struct Recorder {
        fired: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, event: u32) {
            self.fired.push((ctx.now(), event));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        engine.schedule_at(SimTime::from_secs(2), 2);
        engine.schedule_at(SimTime::from_secs(1), 1);
        engine.schedule_at(SimTime::from_secs(3), 3);
        assert_eq!(engine.run(), 3);
        let order: Vec<u32> = engine.world().fired.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(engine.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        for s in 1..=10 {
            engine.schedule_at(SimTime::from_secs(s), s as u32);
        }
        let n = engine.run_until(SimTime::from_secs(5));
        assert_eq!(n, 5);
        assert_eq!(engine.pending_events(), 5);
        assert_eq!(engine.now(), SimTime::from_secs(5));
        // Events exactly at the deadline fire; later ones do not.
        assert_eq!(engine.world().fired.len(), 5);
    }

    #[test]
    fn run_until_advances_clock_when_queue_is_sparse() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        engine.schedule_at(SimTime::from_secs(1), 1);
        engine.run_until(SimTime::from_secs(100));
        assert_eq!(engine.now(), SimTime::from_secs(100));
    }

    struct Chain {
        remaining: u32,
    }

    impl World for Chain {
        type Event = ();
        fn handle(&mut self, ctx: &mut Context<'_, ()>, _e: ()) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule_in(SimDuration::from_millis(1), ());
            }
        }
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut engine = Engine::new(Chain { remaining: 99 });
        engine.schedule_at(SimTime::ZERO, ());
        assert_eq!(engine.run(), 100);
        assert_eq!(engine.world().remaining, 0);
        assert_eq!(engine.now(), SimTime::from_millis(99));
    }

    struct Stopper {
        handled: u32,
    }

    impl World for Stopper {
        type Event = bool; // true = request stop
        fn handle(&mut self, ctx: &mut Context<'_, bool>, stop: bool) {
            self.handled += 1;
            if stop {
                ctx.stop();
            }
        }
    }

    #[test]
    fn stop_halts_run_leaving_pending_events() {
        let mut engine = Engine::new(Stopper { handled: 0 });
        engine.schedule_at(SimTime::from_secs(1), false);
        engine.schedule_at(SimTime::from_secs(2), true);
        engine.schedule_at(SimTime::from_secs(3), false);
        engine.run();
        assert_eq!(engine.world().handled, 2);
        assert_eq!(engine.pending_events(), 1);
    }

    #[test]
    fn step_dispatches_one_event() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        engine.schedule_at(SimTime::from_secs(1), 1);
        engine.schedule_at(SimTime::from_secs(2), 2);
        assert!(engine.step());
        assert_eq!(engine.world().fired.len(), 1);
        assert!(engine.step());
        assert!(!engine.step());
        assert_eq!(engine.dispatched(), 2);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        engine.schedule_at(SimTime::from_secs(5), 1);
        engine.run();
        engine.schedule_at(SimTime::from_secs(1), 2);
    }

    #[test]
    fn into_world_returns_final_state() {
        let mut engine = Engine::new(Chain { remaining: 3 });
        engine.schedule_at(SimTime::ZERO, ());
        engine.run();
        let world = engine.into_world();
        assert_eq!(world.remaining, 0);
    }
}
