//! Measurement instruments for simulation experiments.
//!
//! Every experiment harness in the workspace reports through these types:
//! monotonically increasing [`Counter`]s, streaming [`Histogram`]s with
//! quantile queries, timestamped [`TimeSeries`], and a string-keyed
//! [`MetricSet`] bundling them per run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use zeiot_core::time::SimTime;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use zeiot_sim::metrics::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.increment();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(0)
    }

    /// Adds one, saturating at `u64::MAX`.
    pub fn increment(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`, saturating at `u64::MAX` so long-running simulations
    /// degrade to a pinned counter instead of an overflow panic.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// The current count.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A streaming histogram over `f64` samples with exact quantiles.
///
/// Stores all samples (experiments here are small enough that exactness
/// beats the memory savings of a sketch). Quantile queries sort lazily and
/// cache the sorted order until the next insertion.
///
/// # Example
///
/// ```
/// use zeiot_sim::metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] { h.record(v); }
/// assert_eq!(h.len(), 4);
/// assert_eq!(h.mean(), Some(2.5));
/// assert_eq!(h.quantile(0.5), Some(2.0)); // nearest-rank
/// assert_eq!(h.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN; NaN samples would poison every quantile.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// The `q`-quantile by the nearest-rank method (`q` in `[0, 1]`), or
    /// `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded at record"));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// All recorded samples in insertion or sorted order (unspecified).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// A sorted copy of the samples, usable without `&mut` access.
    ///
    /// When the lazy sort cache is warm this is a plain clone; otherwise
    /// the copy is sorted without disturbing the histogram itself, so
    /// read-only exporters (snapshots, serializers) can compute quantiles
    /// from shared references.
    pub fn sorted_snapshot(&self) -> Vec<f64> {
        let mut samples = self.samples.clone();
        if !self.sorted {
            samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded at record"));
        }
        samples
    }

    /// Summary statistics computed from `&self`, or `None` if empty.
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.samples.is_empty() {
            return None;
        }
        let sorted = self.sorted_snapshot();
        let nearest_rank = |q: f64| -> f64 {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[rank.min(sorted.len() - 1)]
        };
        Some(HistogramSummary {
            count: sorted.len(),
            mean: self.mean().expect("non-empty"),
            std_dev: self.std_dev().expect("non-empty"),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            sum: self.sum(),
            p50: nearest_rank(0.5),
            p90: nearest_rank(0.9),
            p99: nearest_rank(0.99),
        })
    }

    /// Appends every sample of `other`.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        if !other.samples.is_empty() {
            self.sorted = false;
        }
    }
}

/// Point-in-time summary statistics of a [`Histogram`], computable from a
/// shared reference (quantiles by the same nearest-rank method).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of all samples.
    pub sum: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

/// A timestamped sequence of measurements.
///
/// # Example
///
/// ```
/// use zeiot_sim::metrics::TimeSeries;
/// use zeiot_core::time::SimTime;
/// let mut ts = TimeSeries::new();
/// ts.record(SimTime::from_secs(1), 0.5);
/// ts.record(SimTime::from_secs(2), 0.7);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last(), Some((SimTime::from_secs(2), 0.7)));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last recorded point; series are
    /// append-only in time order. Ordering is enforced in release builds
    /// too — the workspace-wide policy for time-ordered instruments (see
    /// also [`crate::trace::TraceBuffer::push`]), since a silently
    /// misordered series corrupts every time-weighted statistic.
    pub fn record(&mut self, time: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "time series must be recorded in order");
        }
        self.points.push((time, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent point.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// All points in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Time-weighted average of the series over its recorded span, treating
    /// each value as holding until the next timestamp. `None` with fewer
    /// than two points.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for pair in self.points.windows(2) {
            let (t0, v) = pair[0];
            let (t1, _) = pair[1];
            let dt = (t1 - t0).as_secs_f64();
            weighted += v * dt;
            total += dt;
        }
        if total > 0.0 {
            Some(weighted / total)
        } else {
            None
        }
    }
}

/// A named bundle of counters, histograms and series for one experiment run.
///
/// # Example
///
/// ```
/// use zeiot_sim::metrics::MetricSet;
/// let mut m = MetricSet::new();
/// m.counter("packets_sent").add(10);
/// m.histogram("latency_ms").record(1.25);
/// assert_eq!(m.counter("packets_sent").value(), 10);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricSet {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl MetricSet {
    /// Creates an empty metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first access.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// The histogram named `name`, created empty on first access.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// The time series named `name`, created empty on first access.
    pub fn time_series(&mut self, name: &str) -> &mut TimeSeries {
        self.series.entry(name.to_owned()).or_default()
    }

    /// Read-only view of a counter, if it exists.
    pub fn get_counter(&self, name: &str) -> Option<Counter> {
        self.counters.get(name).copied()
    }

    /// Read-only view of a histogram, if it exists.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Read-only view of a series, if it exists.
    pub fn get_time_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Names of all histograms, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Names of all time series, sorted.
    pub fn time_series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Folds `other` into `self`: counters add, histograms append their
    /// samples, and series append their points. Used by bench ablations to
    /// combine per-trial metric sets into one aggregate.
    ///
    /// # Panics
    ///
    /// Panics if a merged series would violate time ordering (`other`'s
    /// points must not precede `self`'s latest point for that name).
    pub fn merge(&mut self, other: MetricSet) {
        for (name, counter) in other.counters {
            self.counter(&name).add(counter.value());
        }
        for (name, histogram) in other.histograms {
            self.histogram(&name).merge(&histogram);
        }
        for (name, series) in other.series {
            let target = self.time_series(&name);
            for (time, value) in series.points {
                target.record(time, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.increment();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(5.0));
        assert_eq!(h.std_dev(), Some(2.0));
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(9.0));
        assert_eq!(h.sum(), 40.0);
    }

    #[test]
    fn histogram_quantiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn histogram_quantile_after_interleaved_records() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.quantile(1.0), Some(5.0));
        h.record(10.0); // invalidates cached sort
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn time_series_append_and_query() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(0), 1.0);
        ts.record(SimTime::from_secs(10), 3.0);
        ts.record(SimTime::from_secs(20), 3.0);
        assert_eq!(ts.len(), 3);
        // 1.0 holds for 10 s, 3.0 holds for 10 s.
        assert_eq!(ts.time_weighted_mean(), Some(2.0));
    }

    #[test]
    #[should_panic]
    fn time_series_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(5), 1.0);
        ts.record(SimTime::from_secs(4), 2.0);
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.value(), u64::MAX);
        c.increment();
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn sorted_snapshot_reads_from_shared_reference() {
        let mut h = Histogram::new();
        for v in [9.0, 1.0, 5.0] {
            h.record(v);
        }
        let h = h; // freeze: quantiles must be reachable without &mut
        assert_eq!(h.sorted_snapshot(), vec![1.0, 5.0, 9.0]);
        // The histogram itself is untouched (still insertion order).
        assert_eq!(h.samples(), &[9.0, 1.0, 5.0]);
    }

    #[test]
    fn summary_matches_mutable_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, h.quantile(0.5).unwrap());
        assert_eq!(s.p90, h.quantile(0.9).unwrap());
        assert_eq!(s.p99, h.quantile(0.99).unwrap());
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, h.mean().unwrap());
        assert!(Histogram::new().summary().is_none());
    }

    #[test]
    fn histogram_merge_appends_samples() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(3.0);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.sorted_snapshot(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn metric_set_merge_combines_instruments() {
        let mut base = MetricSet::new();
        base.counter("n").add(2);
        base.histogram("h").record(1.0);
        base.time_series("t").record(SimTime::from_secs(1), 0.5);

        let mut other = MetricSet::new();
        other.counter("n").add(3);
        other.counter("extra").increment();
        other.histogram("h").record(9.0);
        other.time_series("t").record(SimTime::from_secs(2), 0.8);

        base.merge(other);
        assert_eq!(base.get_counter("n").unwrap().value(), 5);
        assert_eq!(base.get_counter("extra").unwrap().value(), 1);
        assert_eq!(base.get_histogram("h").unwrap().len(), 2);
        assert_eq!(base.get_time_series("t").unwrap().len(), 2);
    }

    #[test]
    #[should_panic]
    fn metric_set_merge_rejects_backwards_series() {
        let mut base = MetricSet::new();
        base.time_series("t").record(SimTime::from_secs(10), 1.0);
        let mut other = MetricSet::new();
        other.time_series("t").record(SimTime::from_secs(5), 2.0);
        base.merge(other);
    }

    #[test]
    fn metric_set_name_listings() {
        let mut m = MetricSet::new();
        m.histogram("hb");
        m.histogram("ha");
        m.time_series("ts");
        assert_eq!(m.histogram_names().collect::<Vec<_>>(), vec!["ha", "hb"]);
        assert_eq!(m.time_series_names().collect::<Vec<_>>(), vec!["ts"]);
    }

    #[test]
    fn metric_set_creates_on_first_access() {
        let mut m = MetricSet::new();
        m.counter("a").increment();
        m.histogram("h").record(1.0);
        m.time_series("t").record(SimTime::ZERO, 0.0);
        assert_eq!(m.get_counter("a").unwrap().value(), 1);
        assert_eq!(m.get_histogram("h").unwrap().len(), 1);
        assert_eq!(m.get_time_series("t").unwrap().len(), 1);
        assert!(m.get_counter("missing").is_none());
        assert_eq!(m.counter_names().collect::<Vec<_>>(), vec!["a"]);
    }
}
