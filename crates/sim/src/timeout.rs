//! Simulated-time retry scheduling.
//!
//! Retransmission timeouts must be *simulated-time* events: a retry fired
//! from a wall-clock timer would make traces depend on host speed and
//! break determinism. [`RetrySchedule`] describes a bounded
//! exponential-backoff schedule purely in [`SimDuration`] terms, and
//! [`Context::schedule_retry`] turns "retry number `k` of this message"
//! into an ordinary event on the engine's queue.

use crate::engine::Context;
use zeiot_core::error::{require_positive, ConfigError, Result};
use zeiot_core::time::{SimDuration, SimTime};

/// A bounded exponential-backoff retry schedule.
///
/// Retry `k` (1-based) fires `base · backoff^(k-1)` after the attempt it
/// follows; retries beyond `max_retries` are refused.
///
/// # Example
///
/// ```
/// use zeiot_core::time::SimDuration;
/// use zeiot_sim::RetrySchedule;
///
/// let s = RetrySchedule::new(SimDuration::from_millis(50), 2.0, 3).unwrap();
/// assert_eq!(s.delay_for(1), Some(SimDuration::from_millis(50)));
/// assert_eq!(s.delay_for(2), Some(SimDuration::from_millis(100)));
/// assert_eq!(s.delay_for(3), Some(SimDuration::from_millis(200)));
/// assert_eq!(s.delay_for(4), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrySchedule {
    base: SimDuration,
    backoff_milli: u64,
    max_retries: u32,
}

impl RetrySchedule {
    /// Creates a schedule with first-retry delay `base`, multiplicative
    /// `backoff` per further retry, and at most `max_retries` retries.
    ///
    /// The backoff factor is stored with millifactor (1/1000) resolution
    /// so delay arithmetic stays exact-integer and thus deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `base` is zero or `backoff` is not a
    /// finite positive number (factors below 1.0 are allowed — they
    /// shrink delays — but zero is not).
    pub fn new(base: SimDuration, backoff: f64, max_retries: u32) -> Result<Self> {
        if base.is_zero() {
            return Err(ConfigError::new("base", "retry timeout must be non-zero"));
        }
        require_positive("backoff", backoff)?;
        let backoff_milli = (backoff * 1000.0).round() as u64;
        if backoff_milli == 0 {
            return Err(ConfigError::new(
                "backoff",
                "rounds to zero at 1/1000 resolution",
            ));
        }
        Ok(Self {
            base,
            backoff_milli,
            max_retries,
        })
    }

    /// The delay before the first retry.
    pub fn base(&self) -> SimDuration {
        self.base
    }

    /// The backoff factor, at the stored 1/1000 resolution.
    pub fn backoff(&self) -> f64 {
        self.backoff_milli as f64 / 1000.0
    }

    /// The retry budget.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The backoff delay preceding retry number `retry` (1-based), or
    /// `None` when the budget is exhausted (or `retry` is 0, which is the
    /// initial attempt and has no delay).
    pub fn delay_for(&self, retry: u32) -> Option<SimDuration> {
        if retry == 0 || retry > self.max_retries {
            return None;
        }
        let mut nanos = self.base.as_nanos() as u128;
        for _ in 1..retry {
            nanos = nanos * self.backoff_milli as u128 / 1000;
        }
        Some(SimDuration::from_nanos(nanos.min(u64::MAX as u128) as u64))
    }

    /// Total simulated time a message spends in backoff if every retry is
    /// used.
    pub fn total_backoff(&self) -> SimDuration {
        (1..=self.max_retries)
            .filter_map(|k| self.delay_for(k))
            .sum()
    }

    /// The absolute instant retry `retry` should fire when the preceding
    /// attempt happened at `after`, or `None` when the budget is
    /// exhausted.
    pub fn fire_at(&self, after: SimTime, retry: u32) -> Option<SimTime> {
        self.delay_for(retry).map(|d| after.saturating_add(d))
    }
}

impl<E> Context<'_, E> {
    /// Schedules `event` as retry number `retry` (1-based) of some message
    /// under `schedule`, as a simulated-time event relative to now.
    /// Returns `false` — scheduling nothing — once the budget is
    /// exhausted, so callers can write
    /// `if !ctx.schedule_retry(&s, k, ev) { give_up() }`.
    pub fn schedule_retry(&mut self, schedule: &RetrySchedule, retry: u32, event: E) -> bool {
        match schedule.delay_for(retry) {
            Some(delay) => {
                self.schedule_in(delay, event);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, World};

    #[test]
    fn delays_follow_exponential_backoff() {
        let s = RetrySchedule::new(SimDuration::from_millis(10), 3.0, 4).unwrap();
        assert_eq!(s.delay_for(0), None);
        assert_eq!(s.delay_for(1), Some(SimDuration::from_millis(10)));
        assert_eq!(s.delay_for(2), Some(SimDuration::from_millis(30)));
        assert_eq!(s.delay_for(3), Some(SimDuration::from_millis(90)));
        assert_eq!(s.delay_for(4), Some(SimDuration::from_millis(270)));
        assert_eq!(s.delay_for(5), None);
        assert_eq!(s.total_backoff(), SimDuration::from_millis(400));
    }

    #[test]
    fn fractional_backoff_is_exact_at_milli_resolution() {
        let s = RetrySchedule::new(SimDuration::from_millis(100), 1.5, 3).unwrap();
        assert_eq!(s.delay_for(1), Some(SimDuration::from_millis(100)));
        assert_eq!(s.delay_for(2), Some(SimDuration::from_millis(150)));
        assert_eq!(s.delay_for(3), Some(SimDuration::from_millis(225)));
        assert!((s.backoff() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sub_unit_backoff_shrinks_delays() {
        let s = RetrySchedule::new(SimDuration::from_millis(100), 0.5, 2).unwrap();
        assert_eq!(s.delay_for(2), Some(SimDuration::from_millis(50)));
    }

    #[test]
    fn zero_retry_budget_refuses_all_retries() {
        let s = RetrySchedule::new(SimDuration::from_millis(10), 2.0, 0).unwrap();
        assert_eq!(s.delay_for(1), None);
        assert_eq!(s.total_backoff(), SimDuration::ZERO);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(RetrySchedule::new(SimDuration::ZERO, 2.0, 1).is_err());
        assert!(RetrySchedule::new(SimDuration::from_millis(1), 0.0, 1).is_err());
        assert!(RetrySchedule::new(SimDuration::from_millis(1), f64::NAN, 1).is_err());
        assert!(RetrySchedule::new(SimDuration::from_millis(1), -1.0, 1).is_err());
        assert!(RetrySchedule::new(SimDuration::from_millis(1), 1e-9, 1).is_err());
    }

    #[test]
    fn fire_at_offsets_from_the_attempt_time() {
        let s = RetrySchedule::new(SimDuration::from_millis(20), 2.0, 2).unwrap();
        let t = SimTime::from_secs(1);
        assert_eq!(s.fire_at(t, 1), Some(SimTime::from_nanos(1_020_000_000)));
        assert_eq!(s.fire_at(t, 3), None);
    }

    /// World that retries an event through the schedule until the budget
    /// runs out, recording fire times.
    struct Retrier {
        schedule: RetrySchedule,
        fired: Vec<SimTime>,
    }

    impl World for Retrier {
        type Event = u32; // retry number of the *next* attempt
        fn handle(&mut self, ctx: &mut Context<'_, u32>, retry: u32) {
            self.fired.push(ctx.now());
            let _ = ctx.schedule_retry(&self.schedule.clone(), retry, retry + 1);
        }
    }

    #[test]
    fn schedule_retry_drives_simulated_time_retries() {
        let schedule = RetrySchedule::new(SimDuration::from_millis(50), 2.0, 2).unwrap();
        let mut engine = Engine::new(Retrier {
            schedule,
            fired: vec![],
        });
        // Initial attempt at t=0; its first retry is retry number 1.
        engine.schedule_at(SimTime::ZERO, 1);
        engine.run();
        assert_eq!(
            engine.world().fired,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(50),
                SimTime::from_millis(150),
            ]
        );
    }
}
