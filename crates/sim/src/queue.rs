//! The pending-event set: a priority queue ordered by time with stable
//! FIFO tie-breaking.
//!
//! Determinism requires that events scheduled for the same instant fire in
//! the order they were scheduled; a plain `BinaryHeap<(SimTime, T)>` would
//! tie-break on `T`'s ordering (or not compile at all), so entries carry a
//! monotonically increasing sequence number.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use zeiot_core::time::SimTime;

/// An entry in the pending-event set.
#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO ordering for simultaneous
/// events.
///
/// # Example
///
/// ```
/// use zeiot_sim::queue::EventQueue;
/// use zeiot_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(1), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), "a");
        q.push(SimTime::from_secs(4), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(4));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "z");
        q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(5), "m");
        assert_eq!(q.pop().unwrap().1, "m");
        assert_eq!(q.pop().unwrap().1, "z");
    }
}
