//! Property coverage for the int8 quantization primitives
//! (`zeiot_nn::quant`) — the layer the deployed inference path's
//! determinism and accuracy arguments rest on.
//!
//! Pinned properties:
//!
//! * **round-trip bound** — quantize→dequantize moves any in-range
//!   value by at most half a quantization step (`scale / 2`);
//! * **exact accumulation** — the i32 dot product equals an i64
//!   reference for every fan-in the workspace's layer shapes can
//!   produce, i.e. the accumulator never wraps;
//! * **blocked ≡ naive** — the cache-blocked dense kernel is
//!   bit-identical to the naive reference (reassociating integer sums
//!   is lossless, unlike f32);
//! * **requant totality** — the fixed-point requantizer matches a
//!   direct f64 rounding reference within one ulp-scale step and never
//!   panics over the full i32 accumulator range.

use proptest::prelude::*;
use zeiot_nn::quant::{dense_i8_blocked, dot_i8, quantize_value, scale_for, Requant};

/// Naive reference for [`dense_i8_blocked`]: bias + row·input in i64,
/// narrowed at the end (so any i32 overflow in the kernel would show).
fn dense_reference(weights: &[i8], bias: &[i32], input: &[i8], out_len: usize) -> Vec<i64> {
    (0..out_len)
        .map(|o| {
            let row = &weights[o * input.len()..(o + 1) * input.len()];
            i64::from(bias[o])
                + row
                    .iter()
                    .zip(input)
                    .map(|(&w, &x)| i64::from(w) * i64::from(x))
                    .sum::<i64>()
        })
        .collect()
}

/// Deterministic i8 vector from a seed (keeps case generation cheap for
/// large fan-ins; proptest shrinks over `seed` and `len`).
fn synth_i8(seed: u64, len: usize) -> Vec<i8> {
    (0..len)
        .map(|i| (zeiot_core::rng::splitmix64(seed ^ i as u64) % 255) as i64 - 127)
        .map(|v| v as i8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// quantize→dequantize round-trip error is at most `scale / 2` for
    /// every value inside the calibrated range.
    #[test]
    fn round_trip_error_is_within_half_a_step(
        values in proptest::collection::vec(-100.0f32..100.0, 1..64),
    ) {
        let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = scale_for(max_abs);
        prop_assert!(scale > 0.0);
        for &v in &values {
            let q = quantize_value(v, scale);
            let back = f32::from(q) * scale;
            // Half a step, with a small epsilon for the f32 division
            // inside quantize_value.
            prop_assert!(
                (back - v).abs() <= scale * 0.5 + scale * 1e-5,
                "value {v} -> {q} -> {back} (scale {scale})"
            );
        }
    }

    /// The i32 accumulator is exact: `dot_i8` equals the i64 reference
    /// even at fan-ins far above any layer shape in the workspace
    /// (worst case here is 8192 × 127² ≈ 2³⁰ < i32::MAX).
    #[test]
    fn i32_accumulation_never_overflows(seed in 0u64..10_000, len in 1usize..8192) {
        let w = synth_i8(seed, len);
        let x = synth_i8(seed.wrapping_mul(0x9E37_79B9), len);
        let exact: i64 = w.iter().zip(&x).map(|(&a, &b)| i64::from(a) * i64::from(b)).sum();
        prop_assert_eq!(i64::from(dot_i8(&w, &x)), exact);
    }

    /// The cache-blocked dense kernel is bit-identical to the naive
    /// big-integer reference for arbitrary shapes, including ones that
    /// don't divide the block size.
    #[test]
    fn blocked_dense_matches_big_integer_reference(
        seed in 0u64..10_000,
        in_len in 1usize..200,
        out_len in 1usize..40,
    ) {
        let weights = synth_i8(seed, in_len * out_len);
        let input = synth_i8(seed ^ 0xABCD, in_len);
        let bias: Vec<i32> = (0..out_len)
            .map(|o| (zeiot_core::rng::splitmix64(seed ^ 0xB1A5 ^ o as u64) % 60_000) as i32 - 30_000)
            .collect();
        let got = dense_i8_blocked(&weights, &bias, &input, out_len);
        let want = dense_reference(&weights, &bias, &input, out_len);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(i64::from(*g), *w);
        }
    }

    /// The fixed-point requantizer agrees with direct f64 rounding to
    /// within one output step over representative ratios and the full
    /// accumulator range, and saturating narrowing is total.
    #[test]
    fn requant_tracks_f64_reference(
        acc in -2_000_000_000i64..2_000_000_000,
        num in 1u64..10_000,
        den in 1u64..10_000,
    ) {
        let acc = acc as i32;
        let ratio = num as f64 / den as f64 / 1000.0;
        let rq = Requant::from_ratio(ratio);
        let got = rq.apply(acc);
        let want = (f64::from(acc) * ratio).round();
        prop_assert!(
            (f64::from(got) - want).abs() <= 1.0,
            "acc {acc} * {ratio} -> {got}, reference {want}"
        );
        let mut saturated = 0u64;
        let narrowed = rq.apply_i8(acc, &mut saturated);
        prop_assert!(i32::from(narrowed) <= 127 && i32::from(narrowed) >= -127);
    }
}
