//! Classification evaluation: confusion matrices, accuracy, per-class
//! precision/recall/F-measure.
//!
//! Shared by every recognition experiment in the workspace — the paper
//! reports accuracy for E1/E2/E5/E6 and F-measure for the three-level
//! congestion estimation (E4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A square confusion matrix over `n` classes.
///
/// # Example
///
/// ```
/// use zeiot_nn::eval::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 0);
/// cm.record(1, 1);
/// cm.record(1, 0); // one mistake: true 1 predicted 0
/// assert_eq!(cm.total(), 4);
/// assert!((cm.accuracy() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    /// counts[true][predicted]
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(
            truth < self.classes && predicted < self.classes,
            "label out of range"
        );
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Count for a `(true, predicted)` cell.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        assert!(
            truth < self.classes && predicted < self.classes,
            "label out of range"
        );
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Precision of class `c` (`None` when the class was never
    /// predicted).
    pub fn precision(&self, c: usize) -> Option<f64> {
        let predicted: u64 = (0..self.classes).map(|t| self.count(t, c)).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.count(c, c) as f64 / predicted as f64)
        }
    }

    /// Recall of class `c` (`None` when the class never occurred).
    pub fn recall(&self, c: usize) -> Option<f64> {
        let actual: u64 = (0..self.classes).map(|p| self.count(c, p)).sum();
        if actual == 0 {
            None
        } else {
            Some(self.count(c, c) as f64 / actual as f64)
        }
    }

    /// F1 measure of class `c` (`None` when precision or recall is
    /// undefined or both are zero).
    pub fn f1(&self, c: usize) -> Option<f64> {
        let p = self.precision(c)?;
        let r = self.recall(c)?;
        if p + r == 0.0 {
            None
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Macro-averaged F1 over all classes with defined F1 (the paper's
    /// congestion F-measure averages the three congestion levels).
    pub fn macro_f1(&self) -> Option<f64> {
        let scores: Vec<f64> = (0..self.classes).filter_map(|c| self.f1(c)).collect();
        if scores.is_empty() {
            None
        } else {
            Some(scores.iter().sum::<f64>() / scores.len() as f64)
        }
    }

    /// Mean absolute error when class labels are ordinal counts (used for
    /// the people-counting experiment: "errors up to two people").
    pub fn mean_absolute_error(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut err = 0.0;
        for t in 0..self.classes {
            for p in 0..self.classes {
                err += self.count(t, p) as f64 * (t as f64 - p as f64).abs();
            }
        }
        err / total as f64
    }

    /// Fraction of observations whose ordinal error is at most `k`.
    pub fn within_k(&self, k: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut ok = 0u64;
        for t in 0..self.classes {
            for p in 0..self.classes {
                if t.abs_diff(p) <= k {
                    ok += self.count(t, p);
                }
            }
        }
        ok as f64 / total as f64
    }

    /// Merges another matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics if class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confusion ({} classes, acc {:.3}):",
            self.classes,
            self.accuracy()
        )?;
        for t in 0..self.classes {
            write!(f, "  true {t}:")?;
            for p in 0..self.classes {
                write!(f, " {:>6}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(3);
        // true 0: 8 correct, 2 as class 1
        for _ in 0..8 {
            cm.record(0, 0);
        }
        for _ in 0..2 {
            cm.record(0, 1);
        }
        // true 1: 7 correct, 3 as class 2
        for _ in 0..7 {
            cm.record(1, 1);
        }
        for _ in 0..3 {
            cm.record(1, 2);
        }
        // true 2: all 10 correct
        for _ in 0..10 {
            cm.record(2, 2);
        }
        cm
    }

    #[test]
    fn accuracy_and_total() {
        let cm = sample();
        assert_eq!(cm.total(), 30);
        assert!((cm.accuracy() - 25.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let cm = sample();
        // Class 1: predicted 9 times (7 correct + 2 from class 0); actual 10.
        assert!((cm.precision(1).unwrap() - 7.0 / 9.0).abs() < 1e-12);
        assert!((cm.recall(1).unwrap() - 0.7).abs() < 1e-12);
        let p = 7.0 / 9.0;
        let r = 0.7;
        assert!((cm.f1(1).unwrap() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn undefined_metrics_are_none() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        // Class 2 never occurs and is never predicted.
        assert!(cm.precision(2).is_none());
        assert!(cm.recall(2).is_none());
        assert!(cm.f1(2).is_none());
    }

    #[test]
    fn macro_f1_averages_defined_classes() {
        let cm = sample();
        let f = cm.macro_f1().unwrap();
        assert!(f > 0.7 && f < 1.0);
    }

    #[test]
    fn ordinal_error_metrics() {
        let mut cm = ConfusionMatrix::new(5);
        cm.record(2, 2); // error 0
        cm.record(2, 3); // error 1
        cm.record(0, 4); // error 4
        assert!((cm.mean_absolute_error() - 5.0 / 3.0).abs() < 1e-12);
        assert!((cm.within_k(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.within_k(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 60);
        assert!((a.accuracy() - 25.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_well_behaved() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.mean_absolute_error(), 0.0);
        assert!(cm.macro_f1().is_none());
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn display_contains_accuracy() {
        let cm = sample();
        let s = cm.to_string();
        assert!(s.contains("acc 0.833"));
    }
}
