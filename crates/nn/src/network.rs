//! Sequential networks and SGD training.

use crate::layers::Layer;
use crate::loss::cross_entropy;
use crate::tensor::Tensor;
use crate::topology::{LayerSpec, UnitGraph};
use zeiot_core::rng::SeedRng;

/// A feed-forward stack of layers trained with mini-batch SGD and softmax
/// cross-entropy.
///
/// See the crate-level example.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.len())
            .field("params", &self.param_count())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Runs a forward pass (caches state for a subsequent backward pass).
    ///
    /// # Panics
    ///
    /// Panics if the network is empty.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        assert!(!self.layers.is_empty(), "forward on empty network");
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Predicted class (argmax of the logits).
    pub fn predict(&mut self, input: &Tensor) -> usize {
        self.forward(input).argmax()
    }

    /// Backward pass from a loss gradient on the network output.
    pub fn backward(&mut self, grad_out: &Tensor) {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    /// Applies accumulated gradients in every layer.
    pub fn apply_gradients(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.apply_gradients(lr);
        }
    }

    /// Enables classical momentum for every layer's updates.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    pub fn set_momentum(&mut self, momentum: f32) {
        for layer in &mut self.layers {
            layer.set_momentum(momentum);
        }
    }

    /// Trains one epoch over `(input, class)` pairs with mini-batch SGD.
    /// Returns the mean loss over the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, `batch_size` is zero or `lr` is not
    /// finite and positive.
    pub fn train_epoch(
        &mut self,
        data: &[(Tensor, usize)],
        lr: f32,
        batch_size: usize,
        rng: &mut SeedRng,
    ) -> f32 {
        assert!(!data.is_empty(), "empty training set");
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive");
        let mut order: Vec<usize> = (0..data.len()).collect();
        rng.shuffle(&mut order);
        let mut total_loss = 0.0;
        for batch in order.chunks(batch_size) {
            for &i in batch {
                let (input, target) = &data[i];
                let logits = self.forward(input);
                let (loss, grad) = cross_entropy(&logits, *target);
                total_loss += loss;
                self.backward(&grad);
            }
            self.apply_gradients(lr / batch.len() as f32);
        }
        total_loss / data.len() as f32
    }

    /// Classification accuracy over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn accuracy(&mut self, data: &[(Tensor, usize)]) -> f64 {
        assert!(!data.is_empty(), "empty evaluation set");
        let correct = data.iter().filter(|(x, t)| self.predict(x) == *t).count();
        correct as f64 / data.len() as f64
    }

    /// The structural specs of all layers, in order.
    pub fn specs(&self) -> Vec<LayerSpec> {
        self.layers.iter().map(|l| l.spec()).collect()
    }

    /// The expanded unit graph of this network (see [`UnitGraph`]).
    ///
    /// # Errors
    ///
    /// Propagates structural validation errors; a network assembled from
    /// this crate's layers after at least one forward pass always
    /// succeeds. (Activation layers learn their element count on the
    /// first forward pass, so call [`Sequential::forward`] once first.)
    pub fn unit_graph(&self) -> zeiot_core::Result<UnitGraph> {
        UnitGraph::from_specs(&self.specs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};

    fn blob_dataset(rng: &mut SeedRng, n_per_class: usize) -> Vec<(Tensor, usize)> {
        // Two well-separated Gaussian blobs in 2-D.
        let mut data = Vec::new();
        for _ in 0..n_per_class {
            let x = rng.normal_with(-1.0, 0.3) as f32;
            let y = rng.normal_with(-1.0, 0.3) as f32;
            data.push((Tensor::from_vec(vec![2], vec![x, y]).unwrap(), 0));
            let x = rng.normal_with(1.0, 0.3) as f32;
            let y = rng.normal_with(1.0, 0.3) as f32;
            data.push((Tensor::from_vec(vec![2], vec![x, y]).unwrap(), 1));
        }
        data
    }

    #[test]
    fn mlp_learns_blobs() {
        let mut rng = SeedRng::new(42);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut rng));
        let data = blob_dataset(&mut rng, 50);
        let first_loss = net.train_epoch(&data, 0.1, 8, &mut rng);
        let mut last_loss = first_loss;
        for _ in 0..30 {
            last_loss = net.train_epoch(&data, 0.1, 8, &mut rng);
        }
        assert!(last_loss < first_loss, "loss did not decrease");
        assert!(net.accuracy(&data) > 0.95);
    }

    #[test]
    fn cnn_learns_spatial_pattern() {
        // Class 0: bright top-left quadrant; class 1: bright bottom-right.
        let mut rng = SeedRng::new(43);
        let mut data = Vec::new();
        for _ in 0..40 {
            for class in 0..2usize {
                let mut img = Tensor::zeros(vec![1, 6, 6]);
                for y in 0..3 {
                    for x in 0..3 {
                        let (yy, xx) = if class == 0 { (y, x) } else { (y + 3, x + 3) };
                        img.set(&[0, yy, xx], 1.0 + rng.normal_with(0.0, 0.1) as f32);
                    }
                }
                data.push((img, class));
            }
        }
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 2, 6, 6, 3, 1, 0, &mut rng));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 4, 4, 2));
        net.push(Flatten::new());
        net.push(Dense::new(8, 2, &mut rng));
        for _ in 0..25 {
            net.train_epoch(&data, 0.1, 8, &mut rng);
        }
        assert!(net.accuracy(&data) > 0.9);
    }

    #[test]
    fn unit_graph_extraction_after_forward() {
        let mut rng = SeedRng::new(44);
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 2, 6, 6, 3, 1, 0, &mut rng));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 4, 4, 2));
        net.push(Flatten::new());
        net.push(Dense::new(8, 2, &mut rng));
        net.forward(&Tensor::zeros(vec![1, 6, 6]));
        let graph = net.unit_graph().unwrap();
        assert_eq!(graph.units_in_layer(0), 36);
        assert_eq!(graph.units_in_layer(1), 2 * 4 * 4);
        assert_eq!(graph.units_in_layer(2), 8);
        assert_eq!(graph.units_in_layer(3), 2);
    }

    #[test]
    fn deterministic_training_given_seed() {
        let run = || {
            let mut rng = SeedRng::new(7);
            let mut net = Sequential::new();
            net.push(Dense::new(2, 4, &mut rng));
            net.push(Relu::new());
            net.push(Dense::new(4, 2, &mut rng));
            let data = blob_dataset(&mut rng, 20);
            let mut losses = Vec::new();
            for _ in 0..5 {
                losses.push(net.train_epoch(&data, 0.1, 4, &mut rng));
            }
            losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let mut rng = SeedRng::new(77);
            let mut net = Sequential::new();
            net.push(Dense::new(2, 8, &mut rng));
            net.push(Relu::new());
            net.push(Dense::new(8, 2, &mut rng));
            if momentum > 0.0 {
                net.set_momentum(momentum);
            }
            let data = blob_dataset(&mut rng, 40);
            let mut loss = 0.0;
            for _ in 0..6 {
                loss = net.train_epoch(&data, 0.02, 8, &mut rng);
            }
            loss
        };
        let plain = run(0.0);
        let momentum = run(0.9);
        assert!(
            momentum < plain,
            "momentum {momentum} should beat plain {plain} at small lr"
        );
    }

    #[test]
    #[should_panic]
    fn invalid_momentum_panics() {
        let mut rng = SeedRng::new(78);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, &mut rng));
        net.set_momentum(1.0);
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = SeedRng::new(45);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 3, &mut rng)); // 15
        net.push(Relu::new()); // 0
        net.push(Dense::new(3, 2, &mut rng)); // 8
        assert_eq!(net.param_count(), 23);
    }

    #[test]
    #[should_panic]
    fn empty_network_panics_on_forward() {
        let mut net = Sequential::new();
        let _ = net.forward(&Tensor::zeros(vec![1]));
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_panics() {
        let mut rng = SeedRng::new(46);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, &mut rng));
        let data = vec![(Tensor::zeros(vec![2]), 0)];
        let _ = net.train_epoch(&data, 0.1, 0, &mut rng);
    }
}
