//! Symmetric int8 quantization primitives for the deterministic
//! inference path.
//!
//! µW-class backscatter nodes execute integer arithmetic; this module
//! provides the pieces a fixed-point forward pass is assembled from:
//!
//! * [`QTensor`] — a tensor quantized to `i8` with one symmetric
//!   per-tensor scale (`real ≈ q · scale`, zero-point fixed at 0);
//! * [`Calibration`] — deploy-time scale selection: the max-abs range
//!   observed over calibration activations picks each layer's
//!   activation scale;
//! * [`Requant`] — an integer fixed-point multiplier (`mult`, `shift`)
//!   that rescales an `i32` accumulator into the next layer's `i8`
//!   activation domain without touching floats in the hot path;
//! * [`dense_i8_blocked`] / [`conv2d_i8`] / [`dot_i8`] — cache-blocked
//!   quantized kernels accumulating exactly in `i32`.
//!
//! **Determinism.** Every rounding step is round-half-away-from-zero
//! (`f32::round` for quantization, explicit integer rounding inside
//! [`Requant::apply`]). Accumulation is exact integer addition, which is
//! associative and commutative — so cache blocking, loop reordering, and
//! parallel partial sums cannot change a single bit of the result. This
//! is the property that lets distributed per-node partial sums travel a
//! lossy fabric and still reproduce byte-identically at every thread
//! count (`DESIGN.md` §11).
//!
//! **No overflow.** An `i8 × i8` product is at most `127 · 127 =
//! 16129 < 2^14`; an `i32` accumulator therefore holds at least
//! `2^31 / 2^14 = 2^17 = 131072` terms exactly — far beyond any layer
//! fan-in this workspace configures (the proptests in
//! `tests/quant_props.rs` pin the claim against an `i64` reference).

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The symmetric i8 range: values quantize into `[-127, 127]` (the
/// `-128` slot is unused so negation cannot overflow).
pub const QMAX: i32 = 127;

/// Cache-block edge for the blocked kernels (i8 rows of this length fit
/// comfortably in L1 alongside the input block).
const BLOCK: usize = 64;

/// Picks the symmetric scale mapping `[-max_abs, max_abs]` onto the i8
/// range. An all-zero range degenerates to scale 1.0 so quantization
/// stays total.
pub fn scale_for(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / QMAX as f32
    } else {
        1.0
    }
}

/// Quantizes one value: divide by scale, round half away from zero
/// (`f32::round`), clamp into the symmetric range.
pub fn quantize_value(x: f32, scale: f32) -> i8 {
    let q = (x / scale).round();
    q.clamp(-(QMAX as f32), QMAX as f32) as i8
}

/// Quantizes a slice, counting how many values clamped (saturated).
pub fn quantize_slice(xs: &[f32], scale: f32) -> (Vec<i8>, u64) {
    let mut saturated = 0u64;
    let out = xs
        .iter()
        .map(|&x| {
            let q = (x / scale).round();
            if q > QMAX as f32 || q < -(QMAX as f32) {
                saturated += 1;
            }
            q.clamp(-(QMAX as f32), QMAX as f32) as i8
        })
        .collect();
    (out, saturated)
}

/// A tensor quantized to i8 with one symmetric per-tensor scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTensor {
    shape: Vec<usize>,
    data: Vec<i8>,
    scale: f32,
}

impl QTensor {
    /// Quantizes `t` with the scale its own max-abs range selects.
    pub fn quantize(t: &Tensor) -> Self {
        let max_abs = t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        Self::quantize_with_scale(t, scale_for(max_abs))
    }

    /// Quantizes `t` with a caller-chosen scale (per-layer weight
    /// quantization shares one scale across replicas).
    pub fn quantize_with_scale(t: &Tensor, scale: f32) -> Self {
        let (data, _) = quantize_slice(t.data(), scale);
        Self {
            shape: t.shape().to_vec(),
            data,
            scale,
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The quantized values.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The symmetric scale (`real ≈ q · scale`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Maps back to f32: `q · scale` per element. The round trip is
    /// within `scale / 2` of the original for every in-range value.
    pub fn dequantize(&self) -> Tensor {
        let data: Vec<f32> = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(self.shape.clone(), data).expect("shape preserved")
    }
}

/// Deploy-time activation-range calibration: feed it every activation
/// the calibration set produces, then read off the layer's scale.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Calibration {
    max_abs: f32,
}

impl Calibration {
    /// An empty range.
    pub fn new() -> Self {
        Self::default()
    }

    /// Widens the range by one activation value.
    pub fn observe_value(&mut self, v: f32) {
        self.max_abs = self.max_abs.max(v.abs());
    }

    /// Widens the range by a batch of activations.
    pub fn observe(&mut self, vs: &[f32]) {
        for &v in vs {
            self.observe_value(v);
        }
    }

    /// The widest magnitude seen.
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }

    /// The symmetric scale the observed range selects.
    pub fn scale(&self) -> f32 {
        scale_for(self.max_abs)
    }
}

/// An integer fixed-point multiplier: `apply(acc) ≈ acc · ratio`
/// computed as `(acc · mult) >> shift` in i64 with round-half-away-from-
/// zero — no floats anywhere near the accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requant {
    mult: i32,
    shift: u32,
}

impl Requant {
    /// Encodes `ratio` (the scale change between an accumulator domain
    /// and the next activation domain, `s_in · s_w / s_out`) as a
    /// 31-bit multiplier plus shift. `ratio` must be positive and
    /// finite.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not a positive finite number.
    pub fn from_ratio(ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "requant ratio must be positive and finite, got {ratio}"
        );
        let mut shift = 31u32;
        let mut m = ratio * (1u64 << 31) as f64;
        // Keep the multiplier inside i32 for large ratios…
        while m >= i32::MAX as f64 && shift > 0 {
            m /= 2.0;
            shift -= 1;
        }
        // …and keep precision for tiny ones (mult of 0 would collapse
        // the layer to zeros).
        while m < (1 << 30) as f64 && shift < 62 {
            m *= 2.0;
            shift += 1;
        }
        Self {
            mult: m.round() as i32,
            shift,
        }
    }

    /// The multiplier.
    pub fn mult(&self) -> i32 {
        self.mult
    }

    /// The right shift.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Rescales an i32 accumulator: widen to i64, multiply, shift back
    /// with round-half-away-from-zero. Pure integer arithmetic.
    pub fn apply(&self, acc: i32) -> i32 {
        let wide = acc as i64 * self.mult as i64;
        rounding_shift(wide, self.shift)
    }

    /// [`Requant::apply`] followed by a clamp into the i8 range,
    /// counting saturation into `saturated`.
    pub fn apply_i8(&self, acc: i32, saturated: &mut u64) -> i8 {
        let v = self.apply(acc);
        if !(-QMAX..=QMAX).contains(&v) {
            *saturated += 1;
        }
        v.clamp(-QMAX, QMAX) as i8
    }
}

/// `v >> shift` with round-half-away-from-zero (ties move away from
/// zero for both signs, matching `f32::round`).
fn rounding_shift(v: i64, shift: u32) -> i32 {
    if shift == 0 {
        return v as i32;
    }
    let add = 1i64 << (shift - 1);
    let r = if v >= 0 {
        (v + add) >> shift
    } else {
        -((-v + add) >> shift)
    };
    r as i32
}

/// Exact i32 dot product of two i8 slices.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn dot_i8(w: &[i8], x: &[i8]) -> i32 {
    assert_eq!(w.len(), x.len(), "dot length mismatch");
    let mut acc = 0i32;
    for (&wv, &xv) in w.iter().zip(x) {
        acc += wv as i32 * xv as i32;
    }
    acc
}

/// Cache-blocked quantized dense layer: `out[o] = bias[o] + Σ_i
/// weights[o·in_len + i] · input[i]`, accumulated exactly in i32.
///
/// The traversal is tiled `BLOCK × BLOCK` over (outputs × inputs) so a
/// weight block and the input block stay L1-resident; because integer
/// addition is associative, the blocked result is bit-identical to the
/// naive loop (the proptests compare it against an i64 reference).
///
/// # Panics
///
/// Panics if slice lengths disagree with `out_len × in_len`.
pub fn dense_i8_blocked(weights: &[i8], bias: &[i32], input: &[i8], out_len: usize) -> Vec<i32> {
    assert_eq!(bias.len(), out_len, "bias length mismatch");
    let in_len = input.len();
    assert_eq!(weights.len(), out_len * in_len, "weight shape mismatch");
    let mut acc = bias.to_vec();
    for ib in (0..in_len).step_by(BLOCK) {
        let ie = (ib + BLOCK).min(in_len);
        let xb = &input[ib..ie];
        for ob in (0..out_len).step_by(BLOCK) {
            let oe = (ob + BLOCK).min(out_len);
            for o in ob..oe {
                let row = &weights[o * in_len + ib..o * in_len + ie];
                let mut s = 0i32;
                for (&wv, &xv) in row.iter().zip(xb) {
                    s += wv as i32 * xv as i32;
                }
                acc[o] += s;
            }
        }
    }
    acc
}

/// Quantized valid 2-D convolution (stride 1): i8 input `[ic, ih, iw]`,
/// i8 kernels `[oc, ic, k, k]`, i32 bias per output channel, exact i32
/// accumulators out, shaped `[oc, ih−k+1, iw−k+1]` row-major. The inner
/// dot runs over a gathered receptive-field patch so each kernel row is
/// streamed once per output row — the conv analogue of the blocked
/// dense kernel.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the given geometry.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_i8(
    input: &[i8],
    weights: &[i8],
    bias: &[i32],
    ic: usize,
    ih: usize,
    iw: usize,
    oc: usize,
    k: usize,
) -> Vec<i32> {
    assert_eq!(input.len(), ic * ih * iw, "input shape mismatch");
    assert_eq!(weights.len(), oc * ic * k * k, "kernel shape mismatch");
    assert_eq!(bias.len(), oc, "bias length mismatch");
    let (oh, ow) = (ih - k + 1, iw - k + 1);
    let kernel_len = ic * k * k;
    let mut patch = vec![0i8; kernel_len];
    let mut out = vec![0i32; oc * oh * ow];
    for oy in 0..oh {
        for ox in 0..ow {
            // Gather the receptive field once, reuse it for every
            // output channel.
            let mut off = 0;
            for icn in 0..ic {
                for ky in 0..k {
                    let row = icn * ih * iw + (oy + ky) * iw + ox;
                    patch[off..off + k].copy_from_slice(&input[row..row + k]);
                    off += k;
                }
            }
            for o in 0..oc {
                let kern = &weights[o * kernel_len..(o + 1) * kernel_len];
                out[o * oh * ow + oy * ow + ox] = bias[o] + dot_i8(kern, &patch);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_maps_range_onto_i8() {
        let s = scale_for(12.7);
        assert!((s - 0.1).abs() < 1e-6);
        assert_eq!(quantize_value(12.7, s), 127);
        assert_eq!(quantize_value(-12.7, s), -127);
        assert_eq!(quantize_value(0.0, s), 0);
        // Out-of-range values clamp and the slice variant counts them.
        let (q, sat) = quantize_slice(&[100.0, -100.0, 1.0], s);
        assert_eq!(q, vec![127, -127, 10]);
        assert_eq!(sat, 2);
    }

    #[test]
    fn zero_range_degenerates_to_unit_scale() {
        assert_eq!(scale_for(0.0), 1.0);
        let t = Tensor::zeros(vec![3]);
        let q = QTensor::quantize(&t);
        assert_eq!(q.data(), &[0, 0, 0]);
        assert_eq!(q.dequantize().data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn rounding_is_half_away_from_zero() {
        assert_eq!(quantize_value(0.25, 0.1), 3); // 2.5 → 3
        assert_eq!(quantize_value(-0.25, 0.1), -3); // -2.5 → -3
        assert_eq!(rounding_shift(5, 1), 3); // 2.5 → 3
        assert_eq!(rounding_shift(-5, 1), -3); // -2.5 → -3
        assert_eq!(rounding_shift(4, 2), 1);
        assert_eq!(rounding_shift(6, 2), 2); // 1.5 → 2
    }

    #[test]
    fn round_trip_error_is_within_half_scale() {
        let t = Tensor::from_vec(vec![4], vec![1.0, -0.37, 2.49, -2.5]).unwrap();
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        for (&a, &b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= q.scale() / 2.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn calibration_tracks_max_abs() {
        let mut c = Calibration::new();
        c.observe(&[0.5, -3.0, 1.0]);
        c.observe_value(2.0);
        assert_eq!(c.max_abs(), 3.0);
        assert!((c.scale() - 3.0 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn requant_approximates_the_ratio() {
        for ratio in [0.0003, 0.01, 0.5, 1.0, 3.7] {
            let r = Requant::from_ratio(ratio);
            for acc in [-100_000i32, -127, -1, 0, 1, 99, 32_000] {
                let got = r.apply(acc) as f64;
                let want = acc as f64 * ratio;
                assert!(
                    (got - want).abs() <= want.abs() * 1e-6 + 1.0,
                    "ratio {ratio}, acc {acc}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn requant_saturation_is_counted() {
        let r = Requant::from_ratio(1.0);
        let mut sat = 0u64;
        assert_eq!(r.apply_i8(1_000, &mut sat), 127);
        assert_eq!(r.apply_i8(-1_000, &mut sat), -127);
        assert_eq!(r.apply_i8(5, &mut sat), 5);
        assert_eq!(sat, 2);
    }

    #[test]
    fn blocked_dense_matches_naive() {
        let (out_len, in_len) = (7, 150); // crosses block boundaries
        let weights: Vec<i8> = (0..out_len * in_len)
            .map(|i| ((i * 37 + 11) % 255) as i8)
            .collect();
        let input: Vec<i8> = (0..in_len).map(|i| ((i * 91 + 3) % 255) as i8).collect();
        let bias: Vec<i32> = (0..out_len as i32).map(|o| o * 1000 - 3000).collect();
        let got = dense_i8_blocked(&weights, &bias, &input, out_len);
        for o in 0..out_len {
            let naive = bias[o] + dot_i8(&weights[o * in_len..(o + 1) * in_len], &input);
            assert_eq!(got[o], naive);
        }
    }

    #[test]
    fn conv_matches_direct_accumulation() {
        let (ic, ih, iw, oc, k) = (2, 5, 5, 3, 3);
        let input: Vec<i8> = (0..ic * ih * iw).map(|i| ((i * 53) % 255) as i8).collect();
        let weights: Vec<i8> = (0..oc * ic * k * k)
            .map(|i| ((i * 29 + 7) % 255) as i8)
            .collect();
        let bias = vec![5i32, -5, 0];
        let out = conv2d_i8(&input, &weights, &bias, ic, ih, iw, oc, k);
        let (oh, ow) = (ih - k + 1, iw - k + 1);
        assert_eq!(out.len(), oc * oh * ow);
        // Spot-check one unit against a hand-rolled accumulation.
        let (o, oy, ox) = (1, 2, 1);
        let mut want = bias[o];
        let kernel_len = ic * k * k;
        let mut off = 0;
        for icn in 0..ic {
            for ky in 0..k {
                for kx in 0..k {
                    let w = weights[o * kernel_len + off] as i32;
                    let x = input[icn * ih * iw + (oy + ky) * iw + (ox + kx)] as i32;
                    want += w * x;
                    off += 1;
                }
            }
        }
        assert_eq!(out[o * oh * ow + oy * ow + ox], want);
    }
}
