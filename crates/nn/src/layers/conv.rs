//! 2-D convolution.

use super::Layer;
use crate::tensor::Tensor;
use crate::topology::{conv_output_dims, LayerSpec};
use zeiot_core::rng::SeedRng;

/// A 2-D convolution over `in_channels × height × width` inputs with
/// square kernels, He-uniform initialization, and bias.
///
/// # Example
///
/// ```
/// use zeiot_nn::layers::{Conv2d, Layer};
/// use zeiot_nn::tensor::Tensor;
/// use zeiot_core::rng::SeedRng;
///
/// let mut rng = SeedRng::new(1);
/// let mut conv = Conv2d::new(1, 4, 8, 8, 3, 1, 0, &mut rng);
/// let input = Tensor::zeros(vec![1, 8, 8]);
/// let out = conv.forward(&input);
/// assert_eq!(out.shape(), &[4, 6, 6]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    in_height: usize,
    in_width: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weights: Tensor, // [oc, ic, k, k]
    bias: Tensor,    // [oc]
    grad_weights: Tensor,
    grad_bias: Tensor,
    momentum: f32,
    vel_weights: Tensor,
    vel_bias: Tensor,
    last_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, the stride is zero, or the kernel
    /// exceeds the padded input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_height: usize,
        in_width: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeedRng,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "dimensions must be positive"
        );
        // Validates the geometry (panics on kernel > padded input).
        let _ = conv_output_dims(in_height, in_width, kernel, stride, padding);
        let fan_in = (in_channels * kernel * kernel) as f32;
        let scale = (6.0 / fan_in).sqrt();
        let weights = Tensor::uniform(vec![out_channels, in_channels, kernel, kernel], scale, rng);
        let bias = Tensor::zeros(vec![out_channels]);
        let grad_weights = Tensor::zeros(vec![out_channels, in_channels, kernel, kernel]);
        let grad_bias = Tensor::zeros(vec![out_channels]);
        let vel_weights = grad_weights.clone();
        let vel_bias = grad_bias.clone();
        Self {
            in_channels,
            in_height,
            in_width,
            out_channels,
            kernel,
            stride,
            padding,
            weights,
            bias,
            grad_weights,
            grad_bias,
            momentum: 0.0,
            vel_weights,
            vel_bias,
            last_input: None,
        }
    }

    /// Output shape `[out_channels, out_height, out_width]`.
    pub fn output_shape(&self) -> [usize; 3] {
        let (oh, ow) = conv_output_dims(
            self.in_height,
            self.in_width,
            self.kernel,
            self.stride,
            self.padding,
        );
        [self.out_channels, oh, ow]
    }

    /// Read access to the weights (for inspection/serialization).
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable access to the weights (e.g. distributed weight exchange).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    fn input_at(&self, input: &Tensor, c: usize, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y as usize >= self.in_height || x as usize >= self.in_width {
            0.0
        } else {
            input.data()
                [c * self.in_height * self.in_width + y as usize * self.in_width + x as usize]
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.shape(),
            &[self.in_channels, self.in_height, self.in_width],
            "conv input shape mismatch"
        );
        let [oc, oh, ow] = self.output_shape();
        let mut out = Tensor::zeros(vec![oc, oh, ow]);
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias.data()[o];
                    for ic in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                let w = self.weights.get(&[o, ic, ky, kx]);
                                acc += w * self.input_at(input, ic, iy, ix);
                            }
                        }
                    }
                    out.set(&[o, oy, ox], acc);
                }
            }
        }
        self.last_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .last_input
            .as_ref()
            .expect("backward called before forward")
            .clone();
        let [oc, oh, ow] = self.output_shape();
        assert_eq!(grad_out.shape(), &[oc, oh, ow], "conv grad shape mismatch");
        let mut grad_in = Tensor::zeros(vec![self.in_channels, self.in_height, self.in_width]);
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.get(&[o, oy, ox]);
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_bias.data_mut()[o] += g;
                    for ic in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy as usize >= self.in_height
                                    || ix as usize >= self.in_width
                                {
                                    continue;
                                }
                                let in_off = ic * self.in_height * self.in_width
                                    + iy as usize * self.in_width
                                    + ix as usize;
                                let w_off = self.weights.offset(&[o, ic, ky, kx]);
                                self.grad_weights.data_mut()[w_off] += g * input.data()[in_off];
                                grad_in.data_mut()[in_off] += g * self.weights.data()[w_off];
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn apply_gradients(&mut self, lr: f32) {
        if self.momentum > 0.0 {
            self.vel_weights.scale(self.momentum);
            self.vel_weights.add_scaled(&self.grad_weights, 1.0);
            self.vel_bias.scale(self.momentum);
            self.vel_bias.add_scaled(&self.grad_bias, 1.0);
            self.weights.add_scaled(&self.vel_weights, -lr);
            self.bias.add_scaled(&self.vel_bias, -lr);
        } else {
            self.weights.add_scaled(&self.grad_weights, -lr);
            self.bias.add_scaled(&self.grad_bias, -lr);
        }
        self.grad_weights.fill_zero();
        self.grad_bias.fill_zero();
    }

    fn set_momentum(&mut self, momentum: f32) {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Conv2d {
            in_channels: self.in_channels,
            in_height: self.in_height,
            in_width: self.in_width,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
        }
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck::check_input_gradient;
    use super::*;

    #[test]
    fn forward_shape_and_identity_kernel() {
        let mut rng = SeedRng::new(1);
        let mut conv = Conv2d::new(1, 1, 3, 3, 1, 1, 0, &mut rng);
        // Set the 1×1 kernel to identity.
        conv.weights_mut().data_mut()[0] = 1.0;
        let input = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let out = conv.forward(&input);
        // bias is zero → output equals input.
        for i in 0..9 {
            assert!((out.data()[i] - input.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn forward_known_convolution() {
        let mut rng = SeedRng::new(2);
        let mut conv = Conv2d::new(1, 1, 3, 3, 2, 1, 0, &mut rng);
        // All-ones 2×2 kernel: each output is the sum of a 2×2 patch.
        for w in conv.weights_mut().data_mut() {
            *w = 1.0;
        }
        let input = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let out = conv.forward(&input);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.get(&[0, 0, 0]), 1.0 + 2.0 + 4.0 + 5.0);
        assert_eq!(out.get(&[0, 1, 1]), 5.0 + 6.0 + 8.0 + 9.0);
    }

    #[test]
    fn padding_preserves_size() {
        let mut rng = SeedRng::new(3);
        let mut conv = Conv2d::new(1, 2, 5, 5, 3, 1, 1, &mut rng);
        let out = conv.forward(&Tensor::zeros(vec![1, 5, 5]));
        assert_eq!(out.shape(), &[2, 5, 5]);
    }

    #[test]
    fn stride_downsamples() {
        let mut rng = SeedRng::new(4);
        let mut conv = Conv2d::new(1, 1, 8, 8, 2, 2, 0, &mut rng);
        let out = conv.forward(&Tensor::zeros(vec![1, 8, 8]));
        assert_eq!(out.shape(), &[1, 4, 4]);
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = SeedRng::new(5);
        let mut conv = Conv2d::new(2, 3, 5, 5, 3, 1, 1, &mut rng);
        let input = Tensor::uniform(vec![2, 5, 5], 1.0, &mut rng);
        check_input_gradient(&mut conv, &input, 2e-2);
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = SeedRng::new(6);
        let mut conv = Conv2d::new(1, 2, 4, 4, 3, 1, 0, &mut rng);
        let input = Tensor::uniform(vec![1, 4, 4], 1.0, &mut rng);
        let out = conv.forward(&input);
        let probe = Tensor::uniform(out.shape().to_vec(), 1.0, &mut rng);
        conv.backward(&probe);
        let analytic = conv.grad_weights.clone();

        let eps = 1e-2f32;
        for i in 0..conv.weights.len() {
            let orig = conv.weights.data()[i];
            conv.weights.data_mut()[i] = orig + eps;
            let f_plus: f32 = conv
                .forward(&input)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(o, p)| o * p)
                .sum();
            conv.weights.data_mut()[i] = orig - eps;
            let f_minus: f32 = conv
                .forward(&input)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(o, p)| o * p)
                .sum();
            conv.weights.data_mut()[i] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs()),
                "weight grad mismatch at {i}: {a} vs {numeric}"
            );
        }
    }

    #[test]
    fn apply_gradients_moves_weights_and_clears() {
        let mut rng = SeedRng::new(7);
        let mut conv = Conv2d::new(1, 1, 3, 3, 3, 1, 0, &mut rng);
        let input = Tensor::uniform(vec![1, 3, 3], 1.0, &mut rng);
        let out = conv.forward(&input);
        let ones = Tensor::from_vec(out.shape().to_vec(), vec![1.0; out.len()]).unwrap();
        conv.backward(&ones);
        let before = conv.weights().clone();
        conv.apply_gradients(0.1);
        assert_ne!(before.data(), conv.weights().data());
        assert!(conv.grad_weights.data().iter().all(|&g| g == 0.0));
        assert!(conv.grad_bias.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn spec_round_trips_geometry() {
        let mut rng = SeedRng::new(8);
        let conv = Conv2d::new(2, 4, 6, 7, 3, 1, 1, &mut rng);
        let spec = conv.spec();
        assert_eq!(spec.input_len(), 2 * 6 * 7);
        assert_eq!(spec.output_len(), 4 * 6 * 7);
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
    }

    #[test]
    #[should_panic]
    fn wrong_input_shape_panics() {
        let mut rng = SeedRng::new(9);
        let mut conv = Conv2d::new(1, 1, 4, 4, 3, 1, 0, &mut rng);
        let _ = conv.forward(&Tensor::zeros(vec![1, 5, 5]));
    }
}
