//! Network layers with exact backpropagation.
//!
//! Each layer caches whatever it needs from the forward pass to compute
//! gradients in the backward pass, accumulates parameter gradients across
//! samples, and applies them on [`Layer::apply_gradients`]. Gradient
//! correctness is enforced by numerical gradient checks in each layer's
//! tests.

mod activation;
mod conv;
mod dense;
mod pool;

pub use activation::{Flatten, Relu, Sigmoid};
pub use conv::Conv2d;
pub use dense::Dense;
pub use pool::{AvgPool2d, MaxPool2d};

use crate::tensor::Tensor;
use crate::topology::LayerSpec;

/// A differentiable network layer.
pub trait Layer {
    /// Computes the layer output, caching state for [`Layer::backward`].
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Propagates `grad_out` (∂loss/∂output) backwards, accumulating
    /// parameter gradients and returning ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before any [`Layer::forward`].
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Applies accumulated parameter gradients scaled by `lr` and clears
    /// them. A no-op for parameter-free layers.
    fn apply_gradients(&mut self, lr: f32);

    /// Structural description of this layer for topology extraction.
    fn spec(&self) -> LayerSpec;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Sets the momentum coefficient for subsequent updates (classical
    /// momentum: `v ← µv + g`, `w ← w − lr·v`). A no-op for
    /// parameter-free layers.
    ///
    /// # Panics
    ///
    /// Implementations panic if `momentum` is outside `[0, 1)`.
    fn set_momentum(&mut self, _momentum: f32) {}
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Shared numerical-gradient checking utility.

    use super::*;

    /// Verifies ∂loss/∂input by central finite differences, where the loss
    /// is `sum(output * probe)` for a fixed random probe.
    pub fn check_input_gradient<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let mut rng = zeiot_core::rng::SeedRng::new(0xC0FFEE);
        let out = layer.forward(input);
        let probe: Vec<f32> = (0..out.len())
            .map(|_| rng.uniform_range(-1.0, 1.0) as f32)
            .collect();
        let probe_t = Tensor::from_vec(out.shape().to_vec(), probe.clone()).unwrap();
        let analytic = layer.backward(&probe_t);

        let eps = 1e-2f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f_plus: f32 = layer
                .forward(&plus)
                .data()
                .iter()
                .zip(&probe)
                .map(|(o, p)| o * p)
                .sum();
            let f_minus: f32 = layer
                .forward(&minus)
                .data()
                .iter()
                .zip(&probe)
                .map(|(o, p)| o * p)
                .sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + a.abs().max(numeric.abs())),
                "input grad mismatch at {i}: analytic={a} numeric={numeric}"
            );
        }
    }
}
