//! Element-wise activations and shape adapters.
//!
//! These layers are *fused* in the MicroDeep unit graph: a sensor node
//! applies them locally to a unit's output without any communication, so
//! their [`LayerSpec`]s are non-computational.

use super::Layer;
use crate::tensor::Tensor;
use crate::topology::LayerSpec;

/// Rectified linear unit, `max(0, x)` element-wise.
///
/// # Example
///
/// ```
/// use zeiot_nn::layers::{Layer, Relu};
/// use zeiot_nn::tensor::Tensor;
///
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![3], vec![-1.0, 0.0, 2.0]).unwrap();
/// assert_eq!(relu.forward(&x).data(), &[0.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
    len: usize,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.len = input.len();
        self.mask = input.data().iter().map(|&v| v > 0.0).collect();
        let data = input.data().iter().map(|&v| v.max(0.0)).collect();
        Tensor::from_vec(input.shape().to_vec(), data).expect("same shape")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.mask.is_empty(), "backward called before forward");
        assert_eq!(grad_out.len(), self.mask.len(), "relu grad length mismatch");
        let data = grad_out
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data).expect("same shape")
    }

    fn apply_gradients(&mut self, _lr: f32) {}

    fn spec(&self) -> LayerSpec {
        LayerSpec::Elementwise { len: self.len }
    }
}

/// Logistic sigmoid, `1 / (1 + e^{-x})` element-wise.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    last_output: Vec<f32>,
    len: usize,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.len = input.len();
        let data: Vec<f32> = input
            .data()
            .iter()
            .map(|&v| 1.0 / (1.0 + (-v).exp()))
            .collect();
        self.last_output = data.clone();
        Tensor::from_vec(input.shape().to_vec(), data).expect("same shape")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.last_output.is_empty(),
            "backward called before forward"
        );
        assert_eq!(
            grad_out.len(),
            self.last_output.len(),
            "sigmoid grad length mismatch"
        );
        let data = grad_out
            .data()
            .iter()
            .zip(&self.last_output)
            .map(|(&g, &y)| g * y * (1.0 - y))
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data).expect("same shape")
    }

    fn apply_gradients(&mut self, _lr: f32) {}

    fn spec(&self) -> LayerSpec {
        LayerSpec::Elementwise { len: self.len }
    }
}

/// Flattens any input to rank 1 (and restores the shape on backward).
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flattening adapter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.in_shape = input.shape().to_vec();
        input
            .reshape(vec![input.len()])
            .expect("flatten preserves count")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward called before forward");
        grad_out
            .reshape(self.in_shape.clone())
            .expect("flatten preserves count")
    }

    fn apply_gradients(&mut self, _lr: f32) {}

    fn spec(&self) -> LayerSpec {
        LayerSpec::Flatten {
            len: self.in_shape.iter().product(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck::check_input_gradient;
    use super::*;
    use zeiot_core::rng::SeedRng;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-2.0, -0.1, 0.1, 3.0]).unwrap();
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.1, 3.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![3], vec![-1.0, 1.0, 2.0]).unwrap();
        relu.forward(&x);
        let g = Tensor::from_vec(vec![3], vec![5.0, 5.0, 5.0]).unwrap();
        assert_eq!(relu.backward(&g).data(), &[0.0, 5.0, 5.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![3], vec![-10.0, 0.0, 10.0]).unwrap();
        let y = s.forward(&x);
        assert!(y.data()[0] < 0.001);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 0.999);
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut rng = SeedRng::new(30);
        let mut s = Sigmoid::new();
        let input = Tensor::uniform(vec![8], 2.0, &mut rng);
        check_input_gradient(&mut s, &input, 1e-2);
    }

    #[test]
    fn relu_gradient_check_away_from_kink() {
        let mut relu = Relu::new();
        // Values far from zero so finite differences do not straddle the
        // non-differentiable point.
        let input = Tensor::from_vec(vec![4], vec![-1.0, -0.5, 0.5, 1.0]).unwrap();
        check_input_gradient(&mut relu, &input, 1e-2);
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 4]);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[24]);
        let g = f.backward(&Tensor::zeros(vec![24]));
        assert_eq!(g.shape(), &[2, 3, 4]);
    }

    #[test]
    fn activations_report_fused_specs() {
        let mut relu = Relu::new();
        relu.forward(&Tensor::zeros(vec![5]));
        assert!(!relu.spec().is_computational());
        let mut f = Flatten::new();
        f.forward(&Tensor::zeros(vec![5]));
        assert!(!f.spec().is_computational());
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(Relu::new().param_count(), 0);
        assert_eq!(Sigmoid::new().param_count(), 0);
        assert_eq!(Flatten::new().param_count(), 0);
    }
}
