//! 2-D pooling layers.

use super::Layer;
use crate::tensor::Tensor;
use crate::topology::LayerSpec;

/// Max pooling with a square window equal to the stride (non-overlapping),
/// as in the paper's CNN (one pooling layer after the convolution).
///
/// # Example
///
/// ```
/// use zeiot_nn::layers::{Layer, MaxPool2d};
/// use zeiot_nn::tensor::Tensor;
///
/// let mut pool = MaxPool2d::new(1, 4, 4, 2);
/// let input = Tensor::from_vec(vec![1, 4, 4], (0..16).map(|i| i as f32).collect()).unwrap();
/// let out = pool.forward(&input);
/// assert_eq!(out.shape(), &[1, 2, 2]);
/// assert_eq!(out.get(&[0, 0, 0]), 5.0);  // max of {0,1,4,5}
/// assert_eq!(out.get(&[0, 1, 1]), 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    channels: usize,
    in_height: usize,
    in_width: usize,
    kernel: usize,
    argmax: Vec<usize>,
    seen_forward: bool,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the input is not divisible by
    /// the window.
    pub fn new(channels: usize, in_height: usize, in_width: usize, kernel: usize) -> Self {
        assert!(channels > 0 && kernel > 0, "dimensions must be positive");
        assert!(
            in_height.is_multiple_of(kernel) && in_width.is_multiple_of(kernel),
            "input {in_height}×{in_width} not divisible by window {kernel}"
        );
        Self {
            channels,
            in_height,
            in_width,
            kernel,
            argmax: Vec::new(),
            seen_forward: false,
        }
    }

    fn out_dims(&self) -> (usize, usize) {
        (self.in_height / self.kernel, self.in_width / self.kernel)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.shape(),
            &[self.channels, self.in_height, self.in_width],
            "pool input shape mismatch"
        );
        let (oh, ow) = self.out_dims();
        let mut out = Tensor::zeros(vec![self.channels, oh, ow]);
        self.argmax = vec![0; self.channels * oh * ow];
        for c in 0..self.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = 0;
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            let iy = oy * self.kernel + ky;
                            let ix = ox * self.kernel + kx;
                            let off = c * self.in_height * self.in_width + iy * self.in_width + ix;
                            let v = input.data()[off];
                            if v > best {
                                best = v;
                                best_off = off;
                            }
                        }
                    }
                    out.set(&[c, oy, ox], best);
                    self.argmax[c * oh * ow + oy * ow + ox] = best_off;
                }
            }
        }
        self.seen_forward = true;
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(self.seen_forward, "backward called before forward");
        let (oh, ow) = self.out_dims();
        assert_eq!(
            grad_out.shape(),
            &[self.channels, oh, ow],
            "pool grad shape mismatch"
        );
        let mut grad_in = Tensor::zeros(vec![self.channels, self.in_height, self.in_width]);
        for (i, &src) in self.argmax.iter().enumerate() {
            grad_in.data_mut()[src] += grad_out.data()[i];
        }
        grad_in
    }

    fn apply_gradients(&mut self, _lr: f32) {}

    fn spec(&self) -> LayerSpec {
        LayerSpec::Pool2d {
            channels: self.channels,
            in_height: self.in_height,
            in_width: self.in_width,
            kernel: self.kernel,
        }
    }
}

/// Average pooling with a square non-overlapping window.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    channels: usize,
    in_height: usize,
    in_width: usize,
    kernel: usize,
    seen_forward: bool,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the input is not divisible by
    /// the window.
    pub fn new(channels: usize, in_height: usize, in_width: usize, kernel: usize) -> Self {
        assert!(channels > 0 && kernel > 0, "dimensions must be positive");
        assert!(
            in_height.is_multiple_of(kernel) && in_width.is_multiple_of(kernel),
            "input {in_height}×{in_width} not divisible by window {kernel}"
        );
        Self {
            channels,
            in_height,
            in_width,
            kernel,
            seen_forward: false,
        }
    }

    fn out_dims(&self) -> (usize, usize) {
        (self.in_height / self.kernel, self.in_width / self.kernel)
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.shape(),
            &[self.channels, self.in_height, self.in_width],
            "pool input shape mismatch"
        );
        let (oh, ow) = self.out_dims();
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(vec![self.channels, oh, ow]);
        for c in 0..self.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            let iy = oy * self.kernel + ky;
                            let ix = ox * self.kernel + kx;
                            acc += input.data()
                                [c * self.in_height * self.in_width + iy * self.in_width + ix];
                        }
                    }
                    out.set(&[c, oy, ox], acc * inv);
                }
            }
        }
        self.seen_forward = true;
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(self.seen_forward, "backward called before forward");
        let (oh, ow) = self.out_dims();
        assert_eq!(
            grad_out.shape(),
            &[self.channels, oh, ow],
            "pool grad shape mismatch"
        );
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut grad_in = Tensor::zeros(vec![self.channels, self.in_height, self.in_width]);
        for c in 0..self.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.get(&[c, oy, ox]) * inv;
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            let iy = oy * self.kernel + ky;
                            let ix = ox * self.kernel + kx;
                            grad_in.data_mut()
                                [c * self.in_height * self.in_width + iy * self.in_width + ix] += g;
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn apply_gradients(&mut self, _lr: f32) {}

    fn spec(&self) -> LayerSpec {
        LayerSpec::Pool2d {
            channels: self.channels,
            in_height: self.in_height,
            in_width: self.in_width,
            kernel: self.kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck::check_input_gradient;
    use super::*;
    use zeiot_core::rng::SeedRng;

    #[test]
    fn max_pool_selects_maxima() {
        let mut pool = MaxPool2d::new(2, 4, 4, 2);
        let mut data = vec![0.0f32; 32];
        data[5] = 9.0; // channel 0, (1,1)
        data[16] = 7.0; // channel 1, (0,0)
        let input = Tensor::from_vec(vec![2, 4, 4], data).unwrap();
        let out = pool.forward(&input);
        assert_eq!(out.get(&[0, 0, 0]), 9.0);
        assert_eq!(out.get(&[1, 0, 0]), 7.0);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(1, 2, 2, 2);
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 5.0, 2.0, 3.0]).unwrap();
        pool.forward(&input);
        let grad = Tensor::from_vec(vec![1, 1, 1], vec![10.0]).unwrap();
        let gin = pool.backward(&grad);
        assert_eq!(gin.data(), &[0.0, 10.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let mut pool = AvgPool2d::new(1, 2, 2, 2);
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let out = pool.forward(&input);
        assert_eq!(out.get(&[0, 0, 0]), 3.0);
    }

    #[test]
    fn avg_pool_backward_spreads_evenly() {
        let mut pool = AvgPool2d::new(1, 2, 2, 2);
        pool.forward(&Tensor::zeros(vec![1, 2, 2]));
        let grad = Tensor::from_vec(vec![1, 1, 1], vec![8.0]).unwrap();
        let gin = pool.backward(&grad);
        assert_eq!(gin.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn gradient_check_max_pool() {
        let mut rng = SeedRng::new(20);
        let mut pool = MaxPool2d::new(2, 4, 4, 2);
        // Distinct values avoid argmax ties that break finite differences.
        let data: Vec<f32> = (0..32).map(|i| (i as f32 * 7.3) % 11.0).collect();
        let input = Tensor::from_vec(vec![2, 4, 4], data).unwrap();
        let _ = &mut rng;
        check_input_gradient(&mut pool, &input, 2e-2);
    }

    #[test]
    fn gradient_check_avg_pool() {
        let mut rng = SeedRng::new(21);
        let mut pool = AvgPool2d::new(2, 4, 4, 2);
        let input = Tensor::uniform(vec![2, 4, 4], 1.0, &mut rng);
        check_input_gradient(&mut pool, &input, 2e-2);
    }

    #[test]
    #[should_panic]
    fn indivisible_window_panics() {
        let _ = MaxPool2d::new(1, 5, 4, 2);
    }

    #[test]
    #[should_panic]
    fn backward_before_forward_panics() {
        let mut pool = MaxPool2d::new(1, 2, 2, 2);
        let _ = pool.backward(&Tensor::zeros(vec![1, 1, 1]));
    }

    #[test]
    fn pools_have_no_params() {
        assert_eq!(MaxPool2d::new(1, 2, 2, 2).param_count(), 0);
        assert_eq!(AvgPool2d::new(1, 2, 2, 2).param_count(), 0);
    }
}
