//! Fully-connected layer.

use super::Layer;
use crate::tensor::Tensor;
use crate::topology::LayerSpec;
use zeiot_core::rng::SeedRng;

/// A fully-connected (dense) layer `y = Wx + b` with He-uniform
/// initialization.
///
/// Accepts input of any shape with the right element count (flattening is
/// implicit), mirroring how the paper's CNN feeds pooled feature maps into
/// its two fully-connected layers.
///
/// # Example
///
/// ```
/// use zeiot_nn::layers::{Dense, Layer};
/// use zeiot_nn::tensor::Tensor;
/// use zeiot_core::rng::SeedRng;
///
/// let mut rng = SeedRng::new(1);
/// let mut fc = Dense::new(4, 2, &mut rng);
/// let out = fc.forward(&Tensor::zeros(vec![4]));
/// assert_eq!(out.shape(), &[2]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_len: usize,
    out_len: usize,
    weights: Tensor, // [out, in]
    bias: Tensor,    // [out]
    grad_weights: Tensor,
    grad_bias: Tensor,
    momentum: f32,
    vel_weights: Tensor,
    vel_bias: Tensor,
    last_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer of `in_len → out_len`.
    ///
    /// # Panics
    ///
    /// Panics if either length is zero.
    pub fn new(in_len: usize, out_len: usize, rng: &mut SeedRng) -> Self {
        assert!(in_len > 0 && out_len > 0, "lengths must be positive");
        let scale = (6.0 / in_len as f32).sqrt();
        Self {
            in_len,
            out_len,
            weights: Tensor::uniform(vec![out_len, in_len], scale, rng),
            bias: Tensor::zeros(vec![out_len]),
            grad_weights: Tensor::zeros(vec![out_len, in_len]),
            grad_bias: Tensor::zeros(vec![out_len]),
            momentum: 0.0,
            vel_weights: Tensor::zeros(vec![out_len, in_len]),
            vel_bias: Tensor::zeros(vec![out_len]),
            last_input: None,
        }
    }

    /// Read access to the weight matrix.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable access to the weight matrix.
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// Read access to the bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.len(), self.in_len, "dense input length mismatch");
        let mut out = Tensor::zeros(vec![self.out_len]);
        for o in 0..self.out_len {
            let row = &self.weights.data()[o * self.in_len..(o + 1) * self.in_len];
            let mut acc = self.bias.data()[o];
            for (w, x) in row.iter().zip(input.data()) {
                acc += w * x;
            }
            out.data_mut()[o] = acc;
        }
        self.last_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .last_input
            .as_ref()
            .expect("backward called before forward")
            .clone();
        assert_eq!(grad_out.len(), self.out_len, "dense grad length mismatch");
        let mut grad_in = Tensor::zeros(vec![self.in_len]);
        for o in 0..self.out_len {
            let g = grad_out.data()[o];
            if g == 0.0 {
                continue;
            }
            self.grad_bias.data_mut()[o] += g;
            let row_start = o * self.in_len;
            for i in 0..self.in_len {
                self.grad_weights.data_mut()[row_start + i] += g * input.data()[i];
                grad_in.data_mut()[i] += g * self.weights.data()[row_start + i];
            }
        }
        // Return the gradient in the input's original shape.
        grad_in
            .reshape(input.shape().to_vec())
            .expect("same element count")
    }

    fn apply_gradients(&mut self, lr: f32) {
        if self.momentum > 0.0 {
            self.vel_weights.scale(self.momentum);
            self.vel_weights.add_scaled(&self.grad_weights, 1.0);
            self.vel_bias.scale(self.momentum);
            self.vel_bias.add_scaled(&self.grad_bias, 1.0);
            self.weights.add_scaled(&self.vel_weights, -lr);
            self.bias.add_scaled(&self.vel_bias, -lr);
        } else {
            self.weights.add_scaled(&self.grad_weights, -lr);
            self.bias.add_scaled(&self.grad_bias, -lr);
        }
        self.grad_weights.fill_zero();
        self.grad_bias.fill_zero();
    }

    fn set_momentum(&mut self, momentum: f32) {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dense {
            in_len: self.in_len,
            out_len: self.out_len,
        }
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck::check_input_gradient;
    use super::*;

    #[test]
    fn forward_computes_wx_plus_b() {
        let mut rng = SeedRng::new(1);
        let mut fc = Dense::new(2, 2, &mut rng);
        fc.weights_mut()
            .data_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        fc.bias = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap();
        let y = fc.forward(&x);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn accepts_multidim_input_with_matching_count() {
        let mut rng = SeedRng::new(2);
        let mut fc = Dense::new(12, 3, &mut rng);
        let x = Tensor::zeros(vec![3, 2, 2]);
        let y = fc.forward(&x);
        assert_eq!(y.shape(), &[3]);
        // Backward returns the original shape.
        let g = fc.backward(&Tensor::zeros(vec![3]));
        assert_eq!(g.shape(), &[3, 2, 2]);
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = SeedRng::new(3);
        let mut fc = Dense::new(6, 4, &mut rng);
        let input = Tensor::uniform(vec![6], 1.0, &mut rng);
        check_input_gradient(&mut fc, &input, 1e-2);
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = SeedRng::new(4);
        let mut fc = Dense::new(3, 2, &mut rng);
        let input = Tensor::uniform(vec![3], 1.0, &mut rng);
        let out = fc.forward(&input);
        let probe = Tensor::uniform(out.shape().to_vec(), 1.0, &mut rng);
        fc.backward(&probe);
        let analytic = fc.grad_weights.clone();

        let eps = 1e-2f32;
        for i in 0..fc.weights.len() {
            let orig = fc.weights.data()[i];
            fc.weights.data_mut()[i] = orig + eps;
            let fp: f32 = fc
                .forward(&input)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(o, p)| o * p)
                .sum();
            fc.weights.data_mut()[i] = orig - eps;
            let fm: f32 = fc
                .forward(&input)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(o, p)| o * p)
                .sum();
            fc.weights.data_mut()[i] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic.data()[i] - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "weight grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn gradients_accumulate_across_samples() {
        let mut rng = SeedRng::new(5);
        let mut fc = Dense::new(2, 1, &mut rng);
        let x = Tensor::from_vec(vec![2], vec![1.0, 0.0]).unwrap();
        let g = Tensor::from_vec(vec![1], vec![1.0]).unwrap();
        fc.forward(&x);
        fc.backward(&g);
        fc.forward(&x);
        fc.backward(&g);
        // Two identical backward passes double the gradient.
        assert_eq!(fc.grad_weights.data()[0], 2.0);
        assert_eq!(fc.grad_bias.data()[0], 2.0);
    }

    #[test]
    fn apply_gradients_descends() {
        let mut rng = SeedRng::new(6);
        let mut fc = Dense::new(1, 1, &mut rng);
        fc.weights_mut().data_mut()[0] = 1.0;
        let x = Tensor::from_vec(vec![1], vec![2.0]).unwrap();
        fc.forward(&x);
        fc.backward(&Tensor::from_vec(vec![1], vec![1.0]).unwrap());
        fc.apply_gradients(0.5);
        // w -= 0.5 * (1.0 * 2.0) = 1.0 - 1.0 = 0.
        assert!((fc.weights().data()[0]).abs() < 1e-6);
    }

    #[test]
    fn param_count() {
        let mut rng = SeedRng::new(7);
        let fc = Dense::new(10, 4, &mut rng);
        assert_eq!(fc.param_count(), 44);
    }
}
