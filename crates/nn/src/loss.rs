//! Loss functions.
//!
//! Classification across the workspace (discomfort detection, fall
//! detection, CSI localization) uses softmax cross-entropy; its combined
//! gradient `softmax(x) − onehot(t)` is numerically stable and cheap.

use crate::tensor::Tensor;

/// Numerically stable softmax over a rank-1 tensor.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert!(!logits.is_empty(), "softmax of empty tensor");
    let max = logits
        .data()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.data().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(
        logits.shape().to_vec(),
        exps.into_iter().map(|e| e / sum).collect(),
    )
    .expect("same shape")
}

/// Softmax cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, grad)` where `grad = softmax(logits) − onehot(target)`.
///
/// # Panics
///
/// Panics if `target` is out of range.
///
/// # Example
///
/// ```
/// use zeiot_nn::loss::cross_entropy;
/// use zeiot_nn::tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![3], vec![2.0, 0.5, -1.0]).unwrap();
/// let (loss, grad) = cross_entropy(&logits, 0);
/// assert!(loss > 0.0 && loss < 1.0);     // confident & correct: small loss
/// assert!(grad.data()[0] < 0.0);         // pushes class-0 logit up
/// ```
pub fn cross_entropy(logits: &Tensor, target: usize) -> (f32, Tensor) {
    assert!(target < logits.len(), "target {target} out of range");
    let probs = softmax(logits);
    let p_target = probs.data()[target].max(1e-12);
    let loss = -p_target.ln();
    let mut grad = probs;
    grad.data_mut()[target] -= 1.0;
    (loss, grad)
}

/// Mean squared error and its gradient: `L = Σ(y−t)²/n`,
/// `∂L/∂y = 2(y−t)/n`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(output: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(output.shape(), target.shape(), "mse shape mismatch");
    let n = output.len() as f32;
    let mut grad = Tensor::zeros(output.shape().to_vec());
    let mut loss = 0.0;
    for i in 0..output.len() {
        let d = output.data()[i] - target.data()[i];
        loss += d * d;
        grad.data_mut()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let t = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let p = softmax(&t);
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.data().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![1001.0, 1002.0, 1003.0]).unwrap();
        let pa = softmax(&a);
        let pb = softmax(&b);
        for i in 0..3 {
            assert!((pa.data()[i] - pb.data()[i]).abs() < 1e-6);
            assert!(pb.data()[i].is_finite());
        }
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let t = Tensor::from_vec(vec![4], vec![0.0; 4]).unwrap();
        let (loss, _) = cross_entropy(&t, 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let t = Tensor::from_vec(vec![3], vec![0.3, -1.0, 2.0]).unwrap();
        let (_, grad) = cross_entropy(&t, 1);
        assert!(grad.sum().abs() < 1e-6);
        assert!(grad.data()[1] < 0.0);
        assert!(grad.data()[0] > 0.0 && grad.data()[2] > 0.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let t = Tensor::from_vec(vec![3], vec![0.5, -0.2, 1.3]).unwrap();
        let (_, grad) = cross_entropy(&t, 0);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut plus = t.clone();
            plus.data_mut()[i] += eps;
            let mut minus = t.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = cross_entropy(&plus, 0);
            let (lm, _) = cross_entropy(&minus, 0);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - numeric).abs() < 1e-3,
                "grad mismatch at {i}: {} vs {numeric}",
                grad.data()[i]
            );
        }
    }

    #[test]
    #[should_panic]
    fn cross_entropy_rejects_bad_target() {
        let t = Tensor::from_vec(vec![2], vec![0.0, 0.0]).unwrap();
        let _ = cross_entropy(&t, 2);
    }

    #[test]
    fn mse_zero_at_match() {
        let y = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let (loss, grad) = mse(&y, &y);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let y = Tensor::from_vec(vec![2], vec![1.0, -1.0]).unwrap();
        let t = Tensor::from_vec(vec![2], vec![0.0, 0.5]).unwrap();
        let (_, grad) = mse(&y, &t);
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut plus = y.clone();
            plus.data_mut()[i] += eps;
            let mut minus = y.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = mse(&plus, &t);
            let (lm, _) = mse(&minus, &t);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((grad.data()[i] - numeric).abs() < 1e-3);
        }
    }
}
