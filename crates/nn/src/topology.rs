//! Structural introspection of a network: units and their data
//! dependencies.
//!
//! MicroDeep's assignment algorithms (paper Fig. 8) do not care about
//! weights — they care about *which unit reads which unit*, because every
//! cross-node dependency becomes a radio message. This module describes a
//! network as a list of [`LayerSpec`]s and expands it into a [`UnitGraph`]:
//! one vertex per neuron/unit, one edge per data dependency between
//! consecutive computational layers.
//!
//! Element-wise layers (activations) and flattening do not appear as units:
//! they are fused into the producing unit, exactly as a sensor node would
//! apply ReLU locally without any communication.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Structural description of one layer, sufficient to enumerate unit
/// dependencies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// 2-D convolution over a `channels × height × width` input.
    Conv2d {
        /// Input channels.
        in_channels: usize,
        /// Input height.
        in_height: usize,
        /// Input width.
        in_width: usize,
        /// Output channels (number of filters).
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each border.
        padding: usize,
    },
    /// 2-D pooling (max or average — structurally identical).
    Pool2d {
        /// Channels (unchanged by pooling).
        channels: usize,
        /// Input height.
        in_height: usize,
        /// Input width.
        in_width: usize,
        /// Square pooling window, which is also the stride.
        kernel: usize,
    },
    /// Fully-connected layer.
    Dense {
        /// Flattened input length.
        in_len: usize,
        /// Output length.
        out_len: usize,
    },
    /// Element-wise transformation (activation); fused, never a unit.
    Elementwise {
        /// Number of elements passed through.
        len: usize,
    },
    /// Shape change only; fused, never a unit.
    Flatten {
        /// Number of elements passed through.
        len: usize,
    },
}

impl LayerSpec {
    /// Number of output elements this layer produces.
    pub fn output_len(&self) -> usize {
        match *self {
            LayerSpec::Conv2d {
                out_channels,
                in_height,
                in_width,
                kernel,
                stride,
                padding,
                ..
            } => {
                let (oh, ow) = conv_output_dims(in_height, in_width, kernel, stride, padding);
                out_channels * oh * ow
            }
            LayerSpec::Pool2d {
                channels,
                in_height,
                in_width,
                kernel,
            } => channels * (in_height / kernel) * (in_width / kernel),
            LayerSpec::Dense { out_len, .. } => out_len,
            LayerSpec::Elementwise { len } | LayerSpec::Flatten { len } => len,
        }
    }

    /// Number of input elements this layer consumes.
    pub fn input_len(&self) -> usize {
        match *self {
            LayerSpec::Conv2d {
                in_channels,
                in_height,
                in_width,
                ..
            } => in_channels * in_height * in_width,
            LayerSpec::Pool2d {
                channels,
                in_height,
                in_width,
                ..
            } => channels * in_height * in_width,
            LayerSpec::Dense { in_len, .. } => in_len,
            LayerSpec::Elementwise { len } | LayerSpec::Flatten { len } => len,
        }
    }

    /// Whether this layer creates computational units (false for fused
    /// element-wise/flatten layers).
    pub fn is_computational(&self) -> bool {
        !matches!(
            self,
            LayerSpec::Elementwise { .. } | LayerSpec::Flatten { .. }
        )
    }

    /// The flat indices of the *input* elements that output element
    /// `out_index` reads.
    ///
    /// # Panics
    ///
    /// Panics if `out_index >= output_len()`.
    pub fn inputs_of(&self, out_index: usize) -> Vec<usize> {
        assert!(out_index < self.output_len(), "out_index out of range");
        match *self {
            LayerSpec::Conv2d {
                in_channels,
                in_height,
                in_width,
                kernel,
                stride,
                padding,
                ..
            } => {
                let (oh, ow) = conv_output_dims(in_height, in_width, kernel, stride, padding);
                let per_ch = oh * ow;
                let spatial = out_index % per_ch;
                let oy = spatial / ow;
                let ox = spatial % ow;
                let mut inputs = Vec::with_capacity(in_channels * kernel * kernel);
                for ic in 0..in_channels {
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < in_height
                                && (ix as usize) < in_width
                            {
                                inputs.push(
                                    ic * in_height * in_width
                                        + iy as usize * in_width
                                        + ix as usize,
                                );
                            }
                        }
                    }
                }
                inputs
            }
            LayerSpec::Pool2d {
                in_height,
                in_width,
                kernel,
                ..
            } => {
                let oh = in_height / kernel;
                let ow = in_width / kernel;
                let per_ch = oh * ow;
                let c = out_index / per_ch;
                let spatial = out_index % per_ch;
                let oy = spatial / ow;
                let ox = spatial % ow;
                let mut inputs = Vec::with_capacity(kernel * kernel);
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let iy = oy * kernel + ky;
                        let ix = ox * kernel + kx;
                        inputs.push(c * in_height * in_width + iy * in_width + ix);
                    }
                }
                inputs
            }
            LayerSpec::Dense { in_len, .. } => (0..in_len).collect(),
            LayerSpec::Elementwise { .. } | LayerSpec::Flatten { .. } => vec![out_index],
        }
    }

    /// Normalized `(x, y)` position in `[0, 1]²` of output element
    /// `out_index`, when the layer is spatial (conv/pool); `None` for
    /// dense and fused layers. MicroDeep's grid-projection assignment
    /// places spatial units on the sensor whose coordinates are nearest.
    pub fn unit_position(&self, out_index: usize) -> Option<(f64, f64)> {
        match *self {
            LayerSpec::Conv2d {
                in_height,
                in_width,
                kernel,
                stride,
                padding,
                ..
            } => {
                let (oh, ow) = conv_output_dims(in_height, in_width, kernel, stride, padding);
                let per_ch = oh * ow;
                let spatial = out_index % per_ch;
                let oy = spatial / ow;
                let ox = spatial % ow;
                let cx = (ox * stride) as f64 + kernel as f64 / 2.0 - padding as f64;
                let cy = (oy * stride) as f64 + kernel as f64 / 2.0 - padding as f64;
                Some((
                    (cx / in_width as f64).clamp(0.0, 1.0),
                    (cy / in_height as f64).clamp(0.0, 1.0),
                ))
            }
            LayerSpec::Pool2d {
                in_height,
                in_width,
                kernel,
                ..
            } => {
                let oh = in_height / kernel;
                let ow = in_width / kernel;
                let per_ch = oh * ow;
                let spatial = out_index % per_ch;
                let oy = spatial / ow;
                let ox = spatial % ow;
                let cx = (ox * kernel) as f64 + kernel as f64 / 2.0;
                let cy = (oy * kernel) as f64 + kernel as f64 / 2.0;
                Some((
                    (cx / in_width as f64).clamp(0.0, 1.0),
                    (cy / in_height as f64).clamp(0.0, 1.0),
                ))
            }
            _ => None,
        }
    }
}

/// Output spatial dimensions of a convolution.
pub fn conv_output_dims(
    in_height: usize,
    in_width: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> (usize, usize) {
    assert!(stride > 0, "stride must be positive");
    assert!(
        in_height + 2 * padding >= kernel && in_width + 2 * padding >= kernel,
        "kernel larger than padded input"
    );
    (
        (in_height + 2 * padding - kernel) / stride + 1,
        (in_width + 2 * padding - kernel) / stride + 1,
    )
}

/// Identifier of one computational unit: `(computational layer index,
/// unit index within the layer)`. Layer 0 is the sensing/input layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UnitId {
    /// Computational layer (0 = input).
    pub layer: usize,
    /// Unit index within the layer.
    pub index: usize,
}

impl UnitId {
    /// Creates a unit identifier.
    pub const fn new(layer: usize, index: usize) -> Self {
        Self { layer, index }
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}:{}", self.layer, self.index)
    }
}

/// The expanded dependency graph of a network: one vertex per unit, edges
/// from each unit to the previous-layer units it reads.
///
/// # Example
///
/// ```
/// use zeiot_nn::topology::{LayerSpec, UnitGraph};
///
/// let specs = vec![
///     LayerSpec::Conv2d {
///         in_channels: 1, in_height: 4, in_width: 4,
///         out_channels: 2, kernel: 3, stride: 1, padding: 0,
///     },
///     LayerSpec::Elementwise { len: 8 }, // fused ReLU
///     LayerSpec::Dense { in_len: 8, out_len: 2 },
/// ];
/// let graph = UnitGraph::from_specs(&specs).unwrap();
/// // Layers: input (16 units) + conv (8) + dense (2).
/// assert_eq!(graph.layer_count(), 3);
/// assert_eq!(graph.units_in_layer(0), 16);
/// assert_eq!(graph.units_in_layer(1), 8);
/// assert_eq!(graph.units_in_layer(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitGraph {
    /// `layer_sizes\[0\]` is the input layer; the rest are computational
    /// layers in order.
    layer_sizes: Vec<usize>,
    /// `deps[l][u]` = indices in layer `l` that unit `u` of layer `l+1`
    /// reads.
    deps: Vec<Vec<Vec<usize>>>,
    /// Normalized spatial position per computational layer unit (parallel
    /// to layers 1..): `None` for non-spatial layers.
    positions: Vec<Vec<Option<(f64, f64)>>>,
    /// Spatial dims of the input layer, if 2-D sensing data.
    input_dims: Option<(usize, usize)>,
}

impl UnitGraph {
    /// Expands layer specs into a unit graph.
    ///
    /// Fused (element-wise / flatten) layers must preserve element count
    /// and are skipped; consecutive computational layers must agree on
    /// element counts.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec list is empty, starts with a fused
    /// layer, or adjacent layers disagree on element counts.
    pub fn from_specs(specs: &[LayerSpec]) -> zeiot_core::Result<Self> {
        use zeiot_core::error::ConfigError;
        let computational: Vec<&LayerSpec> =
            specs.iter().filter(|s| s.is_computational()).collect();
        if computational.is_empty() {
            return Err(ConfigError::new("specs", "no computational layers"));
        }
        // Validate fused layers preserve counts along the chain.
        let mut current_len = computational[0].input_len();
        let mut comp_iter = computational.iter();
        let mut expected_next = comp_iter.next().map(|s| s.input_len());
        for spec in specs {
            if spec.is_computational() {
                if spec.input_len() != current_len {
                    return Err(ConfigError::new(
                        "specs",
                        format!(
                            "layer expects {} inputs but receives {current_len}",
                            spec.input_len()
                        ),
                    ));
                }
                current_len = spec.output_len();
            } else {
                if spec.input_len() != current_len {
                    return Err(ConfigError::new(
                        "specs",
                        format!(
                            "fused layer expects {} elements but receives {current_len}",
                            spec.input_len()
                        ),
                    ));
                }
                current_len = spec.output_len();
            }
        }
        let _ = expected_next.take();
        let _ = comp_iter;

        let mut layer_sizes = vec![computational[0].input_len()];
        let mut deps = Vec::new();
        let mut positions = Vec::new();
        for spec in &computational {
            let out_len = spec.output_len();
            let mut layer_deps = Vec::with_capacity(out_len);
            let mut layer_pos = Vec::with_capacity(out_len);
            for u in 0..out_len {
                layer_deps.push(spec.inputs_of(u));
                layer_pos.push(spec.unit_position(u));
            }
            deps.push(layer_deps);
            positions.push(layer_pos);
            layer_sizes.push(out_len);
        }
        let input_dims = match computational[0] {
            LayerSpec::Conv2d {
                in_height,
                in_width,
                ..
            } => Some((*in_height, *in_width)),
            LayerSpec::Pool2d {
                in_height,
                in_width,
                ..
            } => Some((*in_height, *in_width)),
            _ => None,
        };
        Ok(Self {
            layer_sizes,
            deps,
            positions,
            input_dims,
        })
    }

    /// Number of layers including the input layer.
    pub fn layer_count(&self) -> usize {
        self.layer_sizes.len()
    }

    /// Number of units in layer `layer` (0 = input).
    ///
    /// # Panics
    ///
    /// Panics if `layer >= layer_count()`.
    pub fn units_in_layer(&self, layer: usize) -> usize {
        self.layer_sizes[layer]
    }

    /// Total number of computational units (excluding the input layer).
    pub fn total_units(&self) -> usize {
        self.layer_sizes[1..].iter().sum()
    }

    /// The previous-layer unit indices read by unit `index` of layer
    /// `layer` (`layer >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is 0 or out of range, or `index` is out of range.
    pub fn dependencies(&self, layer: usize, index: usize) -> &[usize] {
        assert!(layer >= 1 && layer < self.layer_sizes.len(), "bad layer");
        &self.deps[layer - 1][index]
    }

    /// Normalized spatial position of a computational unit, when defined.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is 0 or out of range, or `index` is out of range.
    pub fn position(&self, layer: usize, index: usize) -> Option<(f64, f64)> {
        assert!(layer >= 1 && layer < self.layer_sizes.len(), "bad layer");
        self.positions[layer - 1][index]
    }

    /// Spatial dimensions `(height, width)` of the input layer, when the
    /// first computational layer is spatial.
    pub fn input_dims(&self) -> Option<(usize, usize)> {
        self.input_dims
    }

    /// Normalized position of an *input* unit when input dims are known.
    pub fn input_position(&self, index: usize) -> Option<(f64, f64)> {
        let (h, w) = self.input_dims?;
        let spatial = index % (h * w);
        let y = spatial / w;
        let x = spatial % w;
        Some(((x as f64 + 0.5) / w as f64, (y as f64 + 0.5) / h as f64))
    }

    /// Iterates over every computational unit id.
    pub fn unit_ids(&self) -> impl Iterator<Item = UnitId> + '_ {
        (1..self.layer_sizes.len())
            .flat_map(move |l| (0..self.layer_sizes[l]).map(move |u| UnitId::new(l, u)))
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.deps
            .iter()
            .map(|layer| layer.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_cnn() -> Vec<LayerSpec> {
        // The paper's motion-experiment CNN shape: conv + pool + 2 dense.
        vec![
            LayerSpec::Conv2d {
                in_channels: 1,
                in_height: 8,
                in_width: 8,
                out_channels: 4,
                kernel: 3,
                stride: 1,
                padding: 0,
            },
            LayerSpec::Elementwise { len: 4 * 6 * 6 },
            LayerSpec::Pool2d {
                channels: 4,
                in_height: 6,
                in_width: 6,
                kernel: 2,
            },
            LayerSpec::Flatten { len: 4 * 3 * 3 },
            LayerSpec::Dense {
                in_len: 36,
                out_len: 16,
            },
            LayerSpec::Elementwise { len: 16 },
            LayerSpec::Dense {
                in_len: 16,
                out_len: 2,
            },
        ]
    }

    #[test]
    fn conv_output_dims_formula() {
        assert_eq!(conv_output_dims(8, 8, 3, 1, 0), (6, 6));
        assert_eq!(conv_output_dims(8, 8, 3, 1, 1), (8, 8));
        assert_eq!(conv_output_dims(9, 9, 3, 2, 0), (4, 4));
    }

    #[test]
    fn conv_spec_lengths() {
        let spec = LayerSpec::Conv2d {
            in_channels: 2,
            in_height: 5,
            in_width: 5,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        assert_eq!(spec.input_len(), 50);
        assert_eq!(spec.output_len(), 3 * 3 * 3);
    }

    #[test]
    fn conv_inputs_cover_receptive_field() {
        let spec = LayerSpec::Conv2d {
            in_channels: 1,
            in_height: 4,
            in_width: 4,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        // Output (0,0) reads input rows 0-2, cols 0-2.
        let inputs = spec.inputs_of(0);
        assert_eq!(inputs, vec![0, 1, 2, 4, 5, 6, 8, 9, 10]);
        // Output (1,1) reads rows 1-3, cols 1-3.
        let inputs = spec.inputs_of(3); // ow=2 → index 3 = (1,1)
        assert_eq!(inputs, vec![5, 6, 7, 9, 10, 11, 13, 14, 15]);
    }

    #[test]
    fn conv_with_padding_drops_out_of_bounds_inputs() {
        let spec = LayerSpec::Conv2d {
            in_channels: 1,
            in_height: 4,
            in_width: 4,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        // Corner output (0,0) only sees the 2×2 in-bounds part.
        let inputs = spec.inputs_of(0);
        assert_eq!(inputs, vec![0, 1, 4, 5]);
        // A middle output sees all 9.
        let mid = spec.inputs_of(5); // (1,1) in a 4×4 output
        assert_eq!(mid.len(), 9);
    }

    #[test]
    fn pool_inputs_partition_the_image() {
        let spec = LayerSpec::Pool2d {
            channels: 1,
            in_height: 4,
            in_width: 4,
            kernel: 2,
        };
        let mut all: Vec<usize> = (0..spec.output_len())
            .flat_map(|u| spec.inputs_of(u))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn dense_reads_everything() {
        let spec = LayerSpec::Dense {
            in_len: 7,
            out_len: 3,
        };
        for u in 0..3 {
            assert_eq!(spec.inputs_of(u), (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn unit_graph_from_micro_cnn() {
        let graph = UnitGraph::from_specs(&micro_cnn()).unwrap();
        // input 64, conv 144, pool 36, dense 16, dense 2.
        assert_eq!(graph.layer_count(), 5);
        assert_eq!(graph.units_in_layer(0), 64);
        assert_eq!(graph.units_in_layer(1), 144);
        assert_eq!(graph.units_in_layer(2), 36);
        assert_eq!(graph.units_in_layer(3), 16);
        assert_eq!(graph.units_in_layer(4), 2);
        assert_eq!(graph.total_units(), 144 + 36 + 16 + 2);
        assert_eq!(graph.unit_ids().count(), graph.total_units());
    }

    #[test]
    fn unit_graph_rejects_mismatched_chain() {
        let bad = vec![
            LayerSpec::Dense {
                in_len: 4,
                out_len: 3,
            },
            LayerSpec::Dense {
                in_len: 5, // should be 3
                out_len: 2,
            },
        ];
        assert!(UnitGraph::from_specs(&bad).is_err());
        assert!(UnitGraph::from_specs(&[]).is_err());
    }

    #[test]
    fn unit_graph_edges_match_specs() {
        let specs = vec![LayerSpec::Dense {
            in_len: 4,
            out_len: 3,
        }];
        let graph = UnitGraph::from_specs(&specs).unwrap();
        assert_eq!(graph.edge_count(), 12);
        assert_eq!(graph.dependencies(1, 0), &[0, 1, 2, 3]);
    }

    #[test]
    fn spatial_positions_are_normalized_and_ordered() {
        let graph = UnitGraph::from_specs(&micro_cnn()).unwrap();
        // Conv layer positions lie in [0,1]².
        for u in 0..graph.units_in_layer(1) {
            let (x, y) = graph.position(1, u).unwrap();
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
        // First conv unit is near the top-left, last near bottom-right.
        let first = graph.position(1, 0).unwrap();
        let last = graph.position(1, 35).unwrap(); // last spatial of channel 0
        assert!(first.0 < last.0 && first.1 < last.1);
        // Dense units have no position.
        assert!(graph.position(3, 0).is_none());
    }

    #[test]
    fn input_positions_cover_grid() {
        let graph = UnitGraph::from_specs(&micro_cnn()).unwrap();
        assert_eq!(graph.input_dims(), Some((8, 8)));
        let p0 = graph.input_position(0).unwrap();
        let p63 = graph.input_position(63).unwrap();
        assert!(p0.0 < 0.1 && p0.1 < 0.1);
        assert!(p63.0 > 0.9 && p63.1 > 0.9);
    }

    #[test]
    fn dense_only_network_has_no_input_dims() {
        let graph = UnitGraph::from_specs(&[LayerSpec::Dense {
            in_len: 4,
            out_len: 2,
        }])
        .unwrap();
        assert_eq!(graph.input_dims(), None);
        assert_eq!(graph.input_position(0), None);
    }
}
