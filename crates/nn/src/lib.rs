//! # zeiot-nn
//!
//! A from-scratch neural-network library sized for the paper's workloads.
//!
//! MicroDeep (paper §IV.C) distributes a small CNN — one convolutional
//! layer, one pooling layer, two fully-connected layers — over a wireless
//! sensor network. This crate provides that CNN (and the centralized
//! baseline it is compared against): [`Tensor`]s, layers with exact
//! backpropagation, an SGD training loop, and — crucially for MicroDeep —
//! [`topology`]: structural introspection that enumerates every *unit*
//! (neuron) of every layer and the input units it reads, which is what the
//! distributed assignment algorithms consume.
//!
//! No external ML dependency is used; gradient correctness is enforced by
//! numerical gradient checking in the test suite.
//!
//! # Example: train a tiny classifier
//!
//! ```
//! use zeiot_nn::network::Sequential;
//! use zeiot_nn::layers::{Dense, Relu};
//! use zeiot_nn::tensor::Tensor;
//! use zeiot_core::rng::SeedRng;
//!
//! let mut rng = SeedRng::new(7);
//! let mut net = Sequential::new();
//! net.push(Dense::new(2, 8, &mut rng));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 2, &mut rng));
//!
//! // Learn XOR-ish separation.
//! let data: Vec<(Tensor, usize)> = vec![
//!     (Tensor::from_vec(vec![2], vec![0.0, 0.0]).unwrap(), 0),
//!     (Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap(), 0),
//!     (Tensor::from_vec(vec![2], vec![0.0, 1.0]).unwrap(), 1),
//!     (Tensor::from_vec(vec![2], vec![1.0, 0.0]).unwrap(), 1),
//! ];
//! for _ in 0..400 {
//!     net.train_epoch(&data, 0.3, 4, &mut rng);
//! }
//! let acc = net.accuracy(&data);
//! assert!(acc >= 0.75);
//! ```

pub mod eval;
pub mod layers;
pub mod loss;
pub mod network;
pub mod quant;
pub mod tensor;
pub mod topology;

pub use eval::ConfusionMatrix;
pub use network::Sequential;
pub use quant::{Calibration, QTensor, Requant};
pub use tensor::Tensor;
pub use topology::{LayerSpec, UnitGraph, UnitId};
