//! A minimal dense tensor.
//!
//! Row-major `f32` storage with an explicit shape. Only the operations the
//! workspace's networks need are provided; everything is bounds-checked in
//! debug builds and shape-checked always.

use serde::{Deserialize, Serialize};
use std::fmt;
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::rng::SeedRng;

/// A dense, row-major tensor of `f32` values.
///
/// # Example
///
/// ```
/// use zeiot_nn::tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(
            !shape.is_empty() && shape.iter().all(|&d| d > 0),
            "invalid shape {shape:?}"
        );
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` does not match the shape's element
    /// count, or the shape is degenerate.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        if shape.is_empty() || shape.contains(&0) {
            return Err(ConfigError::new(
                "shape",
                format!("invalid shape {shape:?}"),
            ));
        }
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ConfigError::new(
                "data",
                format!(
                    "expected {expected} elements for {shape:?}, got {}",
                    data.len()
                ),
            ));
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor with values drawn uniformly from `[-scale, scale]`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate shape or negative scale.
    pub fn uniform(shape: Vec<usize>, scale: f32, rng: &mut SeedRng) -> Self {
        assert!(scale >= 0.0, "scale must be non-negative");
        let mut t = Self::zeros(shape);
        for v in &mut t.data {
            *v = rng.uniform_range(-scale as f64, scale as f64 + f64::MIN_POSITIVE) as f32;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true for a valid tensor).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "rank mismatch");
        let mut off = 0;
        for (i, (&idx, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(
                idx < dim,
                "index {idx} out of range for axis {i} (dim {dim})"
            );
            off = off * dim + idx;
        }
        off
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the element counts differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Result<Self> {
        Self::from_vec(shape, self.data.clone())
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Element-wise in-place addition of `other` scaled by `k`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, k: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Multiplies every element by `k`, in place.
    pub fn scale(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// The index of the largest element (ties broken by first occurrence).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// L2 norm of the data.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elems)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_size() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(vec![2, 0], vec![]).is_err());
        assert!(Tensor::from_vec(vec![], vec![]).is_err());
        assert!(Tensor::from_vec(vec![4], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[0, 2]), 2.0);
        assert_eq!(t.get(&[1, 0]), 3.0);
        assert_eq!(t.get(&[1, 2]), 5.0);
    }

    #[test]
    fn set_then_get() {
        let mut t = Tensor::zeros(vec![3, 3]);
        t.set(&[1, 1], 42.0);
        assert_eq!(t.get(&[1, 1]), 42.0);
        assert_eq!(t.sum(), 42.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let t = Tensor::zeros(vec![2, 2]);
        let _ = t.get(&[2, 0]);
    }

    #[test]
    #[should_panic]
    fn rank_mismatch_panics() {
        let t = Tensor::zeros(vec![2, 2]);
        let _ = t.get(&[1]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.get(&[2, 1]), 5.0);
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![10.0, 20.0, 30.0]).unwrap();
        let c = a.add(&b);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0]);
        let mut d = a.clone();
        d.add_scaled(&b, 0.5);
        assert_eq!(d.data(), &[6.0, 12.0, 18.0]);
        let mut e = a.clone();
        e.scale(2.0);
        assert_eq!(e.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn argmax_first_tie_wins() {
        let t = Tensor::from_vec(vec![4], vec![1.0, 5.0, 5.0, 0.0]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = SeedRng::new(3);
        let t = Tensor::uniform(vec![1000], 0.5, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..=0.5).contains(&v)));
        // Values are not all identical.
        assert!(t.data().iter().any(|&v| v != t.data()[0]));
    }

    #[test]
    fn norm_is_euclidean() {
        let t = Tensor::from_vec(vec![2], vec![3.0, 4.0]).unwrap();
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }
}
