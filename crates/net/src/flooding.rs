//! Choco-style synchronized flooding (ref \[66\]).
//!
//! The "Choco" platform used by the paper's counting work disseminates and
//! collects data with Glossy-like synchronized transmissions: in slot `k`,
//! every node that decoded the packet in slot `k−1` retransmits
//! simultaneously; constructive interference lets receivers decode, and
//! the whole network is covered in roughly its hop diameter. Crucially
//! for sensing, every node ends the round with tightly synchronized
//! timestamps — the property that makes the inter-node/surrounding RSSI
//! matrices comparable across nodes.

use crate::topology::Topology;
use zeiot_core::error::{require_in_range, Result};
use zeiot_core::id::NodeId;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;

/// Outcome of one synchronized flood round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodOutcome {
    /// Slot at which each node first decoded the packet (`None` = never).
    pub first_rx_slot: Vec<Option<usize>>,
    /// Number of slots the round ran.
    pub slots_used: usize,
}

impl FloodOutcome {
    /// Fraction of nodes that received the packet.
    pub fn coverage(&self) -> f64 {
        let got = self.first_rx_slot.iter().filter(|s| s.is_some()).count();
        got as f64 / self.first_rx_slot.len() as f64
    }

    /// Whether every node received the packet.
    pub fn complete(&self) -> bool {
        self.first_rx_slot.iter().all(|s| s.is_some())
    }
}

/// A synchronized flooding protocol instance.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_net::flooding::SyncFlood;
/// use zeiot_net::topology::Topology;
/// use zeiot_core::id::NodeId;
/// use zeiot_core::rng::SeedRng;
///
/// let topo = Topology::grid(4, 4, 1.0, 1.1)?;
/// let flood = SyncFlood::new(1.0, 8)?; // lossless links, 8 slots max
/// let mut rng = SeedRng::new(5);
/// let out = flood.run(&topo, NodeId::new(0), &mut rng);
/// assert!(out.complete());
/// // Hop distance bounds the first-reception slot.
/// assert_eq!(out.first_rx_slot[15], Some(6)); // corner-to-corner = 6 hops
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncFlood {
    link_success: f64,
    max_slots: usize,
}

impl SyncFlood {
    /// Creates a flood with per-link, per-slot delivery probability
    /// `link_success` and a slot budget `max_slots`.
    ///
    /// # Errors
    ///
    /// Returns an error if `link_success` is outside `[0, 1]` or
    /// `max_slots` is zero.
    pub fn new(link_success: f64, max_slots: usize) -> Result<Self> {
        let link_success = require_in_range("link_success", link_success, 0.0, 1.0)?;
        zeiot_core::error::require_nonzero_usize("max_slots", max_slots)?;
        Ok(Self {
            link_success,
            max_slots,
        })
    }

    /// Runs one flood round from `initiator`.
    ///
    /// # Panics
    ///
    /// Panics if `initiator` is out of range for `topology`.
    pub fn run(&self, topology: &Topology, initiator: NodeId, rng: &mut SeedRng) -> FloodOutcome {
        let n = topology.len();
        assert!(initiator.index() < n, "initiator out of range");
        let mut first_rx = vec![None; n];
        first_rx[initiator.index()] = Some(0);
        // Nodes that will transmit in the upcoming slot.
        let mut frontier = vec![initiator];
        let mut slots_used = 0;
        for slot in 1..=self.max_slots {
            if frontier.is_empty() {
                break;
            }
            slots_used = slot;
            let mut newly = Vec::new();
            for &tx in &frontier {
                for &rx in topology.neighbors(tx) {
                    if first_rx[rx.index()].is_none() && rng.chance(self.link_success) {
                        first_rx[rx.index()] = Some(slot);
                        newly.push(rx);
                    }
                }
            }
            frontier = newly;
        }
        FloodOutcome {
            first_rx_slot: first_rx,
            slots_used,
        }
    }

    /// Expected duration of a collection round that floods once and then
    /// gathers one report per node: `(diameter_slots + n) × slot`.
    /// Supports the paper's §III.B question of whether a required
    /// collection cycle (k rounds/second) is feasible.
    pub fn round_duration(
        &self,
        node_count: usize,
        diameter_slots: usize,
        slot: SimDuration,
    ) -> SimDuration {
        slot * (diameter_slots + node_count) as u64
    }

    /// Whether `rounds_per_second` collection rounds fit in real time.
    pub fn cycle_feasible(
        &self,
        node_count: usize,
        diameter_slots: usize,
        slot: SimDuration,
        rounds_per_second: f64,
    ) -> bool {
        assert!(rounds_per_second > 0.0, "rate must be positive");
        let round = self
            .round_duration(node_count, diameter_slots, slot)
            .as_secs_f64();
        round * rounds_per_second <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_flood_covers_in_hop_distance() {
        let topo = Topology::grid(5, 5, 1.0, 1.1).unwrap();
        let flood = SyncFlood::new(1.0, 20).unwrap();
        let mut rng = SeedRng::new(1);
        let out = flood.run(&topo, NodeId::new(0), &mut rng);
        assert!(out.complete());
        // First reception slot equals hop distance in a lossless flood.
        let routes = crate::routing::RoutingTable::shortest_paths(&topo);
        for i in 0..25u32 {
            assert_eq!(
                out.first_rx_slot[i as usize],
                routes.hop_distance(NodeId::new(0), NodeId::new(i))
            );
        }
    }

    #[test]
    fn zero_success_reaches_nobody_else() {
        let topo = Topology::grid(3, 3, 1.0, 1.1).unwrap();
        let flood = SyncFlood::new(0.0, 10).unwrap();
        let mut rng = SeedRng::new(2);
        let out = flood.run(&topo, NodeId::new(4), &mut rng);
        assert_eq!(out.coverage(), 1.0 / 9.0);
        assert!(!out.complete());
    }

    #[test]
    fn lossy_flood_coverage_increases_with_success() {
        let topo = Topology::grid(6, 6, 1.0, 1.1).unwrap();
        let mut cov = Vec::new();
        for p in [0.3, 0.6, 0.95] {
            let flood = SyncFlood::new(p, 30).unwrap();
            let mut total = 0.0;
            for seed in 0..40 {
                let mut rng = SeedRng::new(seed);
                total += flood.run(&topo, NodeId::new(0), &mut rng).coverage();
            }
            cov.push(total / 40.0);
        }
        assert!(cov[0] < cov[1] && cov[1] < cov[2], "{cov:?}");
    }

    #[test]
    fn slot_budget_truncates() {
        let positions = (0..10)
            .map(|i| zeiot_core::geometry::Point2::new(i as f64, 0.0))
            .collect();
        let topo = Topology::from_positions(positions, 1.1).unwrap();
        let flood = SyncFlood::new(1.0, 3).unwrap();
        let mut rng = SeedRng::new(3);
        let out = flood.run(&topo, NodeId::new(0), &mut rng);
        // Only nodes within 3 hops got it.
        assert_eq!(out.first_rx_slot.iter().filter(|s| s.is_some()).count(), 4);
    }

    #[test]
    fn round_duration_and_feasibility() {
        let flood = SyncFlood::new(1.0, 10).unwrap();
        let slot = SimDuration::from_millis(10);
        let round = flood.round_duration(50, 8, slot);
        assert_eq!(round.as_millis(), 580);
        assert!(flood.cycle_feasible(50, 8, slot, 1.0));
        assert!(!flood.cycle_feasible(50, 8, slot, 2.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SyncFlood::new(-0.1, 5).is_err());
        assert!(SyncFlood::new(1.1, 5).is_err());
        assert!(SyncFlood::new(0.5, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Topology::grid(5, 5, 1.0, 1.5).unwrap();
        let flood = SyncFlood::new(0.7, 20).unwrap();
        let run = |seed| {
            let mut rng = SeedRng::new(seed);
            flood.run(&topo, NodeId::new(12), &mut rng)
        };
        assert_eq!(run(77), run(77));
    }
}
